#ifndef PEP_PROFILE_NUMBERING_HH
#define PEP_PROFILE_NUMBERING_HH

/**
 * @file
 * Path numbering over the P-DAG. Implements:
 *
 *  - Ball-Larus numbering (paper Figure 2): outgoing edges processed in
 *    successor order; assigns each Entry->Exit path a unique number in
 *    [0, N).
 *
 *  - Smart path numbering (paper Figure 4, borrowed from PPP): outgoing
 *    edges processed in decreasing order of execution frequency, so the
 *    hottest outgoing edge of every node gets value 0 and needs no
 *    instrumentation.
 *
 *  - Inverted smart numbering (increasing frequency): used by the
 *    Section 3.4 ablation, which shows that placing instrumentation on
 *    hot edges instead costs about 1.4% more runtime overhead.
 *
 * All three schemes assign each outgoing edge the prefix sum of the
 * successors' path counts in the chosen order, so greedy reconstruction
 * (reconstruct.hh) works identically for all of them.
 */

#include <cstdint>
#include <vector>

#include "profile/pdag.hh"

namespace pep::profile {

/** Edge-ordering scheme for numbering. */
enum class NumberingScheme : std::uint8_t
{
    BallLarus,    ///< successor order (Figure 2)
    Smart,        ///< decreasing edge frequency (Figure 4)
    SmartInverted ///< increasing edge frequency (Section 3.4 ablation)
};

/**
 * Edge frequency estimates for Smart numbering, parallel to the *DAG*
 * successor lists. Use estimateDagEdgeFrequencies() to derive them from
 * a CFG edge profile.
 */
using DagEdgeFreqs = std::vector<std::vector<double>>;

/** Result of numbering a P-DAG. */
struct Numbering
{
    /** NumPaths per DAG node (paths from the node to Exit). */
    std::vector<std::uint64_t> numPaths;

    /** Value per DAG edge, parallel to DAG successor lists. */
    std::vector<std::vector<std::uint64_t>> val;

    /** Total number of Entry->Exit paths (numPaths[entry]). */
    std::uint64_t totalPaths = 0;

    /**
     * True if the path count exceeded kMaxPaths; val/numPaths are then
     * unusable and the method cannot be path-profiled.
     */
    bool overflow = false;

    /** Value of a DAG edge. */
    std::uint64_t
    edgeValue(cfg::EdgeRef e) const
    {
        return val[e.src][e.index];
    }
};

/** Path-count ceiling; beyond this, numbering reports overflow. */
constexpr std::uint64_t kMaxPaths = std::uint64_t{1} << 50;

/**
 * Number the P-DAG. `freqs` is required for Smart/SmartInverted and
 * ignored for BallLarus. Ties in frequency break toward successor order,
 * keeping results deterministic.
 */
Numbering numberPaths(const PDag &pdag, NumberingScheme scheme,
                      const DagEdgeFreqs *freqs = nullptr);

/**
 * Derive DAG edge frequencies from CFG edge counts (parallel to the CFG
 * successor lists, e.g. from a baseline one-time edge profile):
 * real DAG edges take their CFG edge's count; a header's DummyEntry and
 * DummyExit take the total flow into the header (every entry to the
 * header starts/ends a path in HeaderSplit mode) or the back-edge flow
 * (BackEdgeTruncate mode).
 */
DagEdgeFreqs
estimateDagEdgeFrequencies(
    const bytecode::MethodCfg &method_cfg, const PDag &pdag,
    const std::vector<std::vector<std::uint64_t>> &cfg_edge_counts);

} // namespace pep::profile

#endif // PEP_PROFILE_NUMBERING_HH
