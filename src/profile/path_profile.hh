#ifndef PEP_PROFILE_PATH_PROFILE_HH
#define PEP_PROFILE_PATH_PROFILE_HH

/**
 * @file
 * Path profiles: frequency per Ball-Larus path number, kept in a hash
 * table as the paper's yieldpoint handler does (Section 4.3). Each
 * record caches the path's CFG-edge expansion after the first time it
 * is needed, so repeated samples of the same path (the common case)
 * skip reconstruction.
 */

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "profile/kpath.hh"
#include "profile/reconstruct.hh"

namespace pep::profile {

/** One path's frequency and (lazily filled) expansion. */
struct PathRecord
{
    std::uint64_t count = 0;

    /** True once cfgEdges / numBranches are valid. */
    bool expanded = false;

    /** Branch blocks on the path (branch-flow weight b_p). */
    std::uint32_t numBranches = 0;

    /** The CFG edges the path executes. */
    std::vector<cfg::EdgeRef> cfgEdges;
};

/** Path frequencies of one method. */
class MethodPathProfile
{
  public:
    /**
     * Record one (or n) executions of a path; returns the record so the
     * caller can expand it if this is the first sample.
     */
    PathRecord &
    addSample(std::uint64_t path_number, std::uint64_t n = 1)
    {
        PathRecord &record = paths_[path_number];
        record.count += n;
        return record;
    }

    /** Look up a path record; nullptr if the path was never recorded. */
    const PathRecord *find(std::uint64_t path_number) const;

    /** All recorded paths (unordered). */
    const std::unordered_map<std::uint64_t, PathRecord> &
    paths() const
    {
        return paths_;
    }

    /** Number of distinct paths recorded. */
    std::size_t numDistinctPaths() const { return paths_.size(); }

    /** Sum of all path counts. */
    std::uint64_t totalCount() const;

    /**
     * Expand every record that is not yet expanded (used by the metrics
     * code, which needs numBranches for every path). Pass the version's
     * KPathScheme when composite k-path ids may be present; null keeps
     * the single-iteration behavior.
     */
    void ensureExpanded(const PathReconstructor &reconstructor,
                        const KPathScheme *kpath = nullptr);

    /** Drop all records. */
    void clear() { paths_.clear(); }

  private:
    std::unordered_map<std::uint64_t, PathRecord> paths_;
};

/** Path profiles for every method of a program. */
struct PathProfileSet
{
    std::vector<MethodPathProfile> perMethod;

    explicit PathProfileSet(std::size_t num_methods = 0)
        : perMethod(num_methods)
    {
    }

    void clear();
};

/**
 * Fill `record` from a reconstruction (first-sample slow path of the
 * paper's handler). With a KPathScheme, composite ids (>= base) expand
 * through reconstructKPath; raw Ball-Larus numbers and the null-scheme
 * case take the legacy single-segment reconstruction.
 */
void expandRecord(PathRecord &record,
                  const PathReconstructor &reconstructor,
                  std::uint64_t path_number,
                  const KPathScheme *kpath = nullptr);

/**
 * Accumulate a path profile into an edge profile: each path contributes
 * its CFG edges, weighted by the path's count. This is how the paper
 * derives both PEP's edge profile and the "perfect" edge profile used
 * as the accuracy baseline (Section 5.1).
 */
void accumulateEdgeProfile(class MethodEdgeProfile &edge_profile,
                           MethodPathProfile &path_profile,
                           const PathReconstructor &reconstructor,
                           const KPathScheme *kpath = nullptr);

} // namespace pep::profile

#endif // PEP_PROFILE_PATH_PROFILE_HH
