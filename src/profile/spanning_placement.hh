#ifndef PEP_PROFILE_SPANNING_PLACEMENT_HH
#define PEP_PROFILE_SPANNING_PLACEMENT_HH

/**
 * @file
 * Ball-Larus event-counting instrumentation placement. The basic
 * placement (instr_plan.hh) puts `r += Val(e)` on every DAG edge with
 * a nonzero value. Ball and Larus's optimization instead chooses a
 * *maximal-cost spanning tree* of the (undirected) P-DAG — weighted by
 * expected edge frequency, plus a virtual EXIT->ENTRY edge forced into
 * the tree — and places increments only on the *chords* (non-tree
 * edges):
 *
 *   Inc(chord u->v) = phi(u) + Val(u->v) - phi(v)
 *
 * where phi is the signed sum of Val along the tree path from the
 * root. Tree edges carry no instrumentation at all, and for every
 * Entry->Exit path the chord increments telescope to the path's
 * Ball-Larus number (the virtual tree edge pins phi(Entry) ==
 * phi(Exit)). Increments may be negative; the register wraps modulo
 * 2^64 and the final sum is exact because true numbers fit in 64 bits.
 *
 * Hot spanning trees push the remaining increments onto cold chords —
 * the same goal as smart numbering, achieved structurally. Both can be
 * combined.
 */

#include <cstdint>
#include <vector>

#include "profile/instr_plan.hh"
#include "profile/numbering.hh"
#include "profile/pdag.hh"

namespace pep::profile {

/** Result of spanning-tree placement. */
struct SpanningPlacement
{
    /** Signed increment per DAG edge (wrapping u64), parallel to DAG
     *  successor lists; 0 for tree edges. */
    std::vector<std::vector<std::uint64_t>> increment;

    /** True if the DAG edge is in the spanning tree. */
    std::vector<std::vector<bool>> inTree;

    /** Number of chords with a nonzero increment. */
    std::size_t numInstrumentedEdges = 0;

    /** Number of chords total (instrumentation sites even when the
     *  increment happens to be zero — a zero-increment chord needs no
     *  code). */
    std::size_t numChords = 0;
};

/**
 * Compute chord increments for a numbered P-DAG. `freqs` weights the
 * spanning tree (hot edges preferred in-tree); pass nullptr for
 * uniform weights. Requires a non-overflowed numbering.
 */
SpanningPlacement
computeSpanningPlacement(const PDag &pdag, const Numbering &numbering,
                         const DagEdgeFreqs *freqs = nullptr);

/**
 * Rewrite an instrumentation plan's edge/header increments to use
 * spanning-tree placement. Path-end bookkeeping (endAdd/restart) is
 * re-derived from the chord increments of the dummy edges, so the
 * runtime semantics (path register equals the Ball-Larus number at
 * every path end) are preserved exactly.
 */
void applySpanningPlacement(const bytecode::MethodCfg &method_cfg,
                            const PDag &pdag,
                            const SpanningPlacement &placement,
                            InstrumentationPlan &plan);

} // namespace pep::profile

#endif // PEP_PROFILE_SPANNING_PLACEMENT_HH
