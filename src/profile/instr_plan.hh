#ifndef PEP_PROFILE_INSTR_PLAN_HH
#define PEP_PROFILE_INSTR_PLAN_HH

/**
 * @file
 * The runtime instrumentation plan a compiled method carries: what the
 * path-register instrumentation does on each CFG edge and at each loop
 * header. This is the executable form of "insert instrumentation"
 * (paper Section 3.2 step 3):
 *
 *  - method entry:            r = 0
 *  - CFG edge with value v:   r += v        (omitted when v == 0)
 *  - loop header (HeaderSplit mode): the path ends; its number is
 *    r + endAdd (endAdd is the value of the header's DummyExit edge),
 *    then r = restart (the value of the header's DummyEntry edge)
 *  - back edge (BackEdgeTruncate mode): same end/restart pair attached
 *    to the edge itself
 *  - method exit:             the path's number is r
 *
 * Whether the completed path is *stored* is up to the profiler: full
 * BLPP stores every path (count[r]++), PEP stores only at samples.
 */

#include <cstdint>
#include <vector>

#include "profile/numbering.hh"
#include "profile/pdag.hh"

namespace pep::profile {

/** How edge increments are placed. */
enum class PlacementKind : std::uint8_t
{
    /** r += Val(e) directly on every nonzero-valued edge. */
    Direct,

    /** Ball-Larus event counting: increments only on the chords of a
     *  maximal-frequency spanning tree (spanning_placement.hh). */
    SpanningTree,
};

/** What happens to the path register when a CFG edge is taken. */
struct EdgeAction
{
    /** Value added to r (0 means no instrumentation on this edge). */
    std::uint64_t increment = 0;

    /** True for truncated back edges (BackEdgeTruncate mode only). */
    bool endsPath = false;

    /** Added to r to form the completed path's number. */
    std::uint64_t endAdd = 0;

    /** New r value after the path ends. */
    std::uint64_t restart = 0;
};

/** Path end/restart at a split loop header (HeaderSplit mode). */
struct HeaderAction
{
    bool endsPath = false;
    std::uint64_t endAdd = 0;
    std::uint64_t restart = 0;
};

/** Per-method instrumentation plan. */
struct InstrumentationPlan
{
    DagMode mode = DagMode::HeaderSplit;

    /** False when numbering overflowed: no path instrumentation. */
    bool enabled = true;

    /** Total acyclic paths in the method's P-DAG. */
    std::uint64_t totalPaths = 0;

    /** Per CFG edge, parallel to CFG successor lists. This is the
     *  build/analysis representation; the interpreter hot path reads
     *  the flattened mirror below. */
    std::vector<std::vector<EdgeAction>> edgeActions;

    /** Per CFG block; endsPath only for headers in HeaderSplit mode. */
    std::vector<HeaderAction> headerActions;

    /** Number of edges carrying a nonzero increment (static cost). */
    std::size_t numInstrumentedEdges = 0;

    /**
     * Flattened mirror of edgeActions: one contiguous array indexed by
     * the dense edge id edgeBase[src] + index, where edgeBase holds
     * prefix sums of per-block successor counts (numBlocks + 1 entries,
     * so edgeBase.back() == total edge count). Derived purely from
     * edgeActions by rebuildFlat(); anything that mutates edgeActions
     * must call rebuildFlat() before the plan is executed.
     */
    std::vector<EdgeAction> flatEdgeActions;
    std::vector<std::uint32_t> edgeBase;

    /** Dense id of a CFG edge in flatEdgeActions. */
    std::uint32_t
    flatEdgeId(cfg::EdgeRef edge) const
    {
        return edgeBase[edge.src] + edge.index;
    }

    /** Action for a CFG edge, via the flattened table. */
    const EdgeAction &
    flatAction(cfg::EdgeRef edge) const
    {
        return flatEdgeActions[flatEdgeId(edge)];
    }

    /** Recompute edgeBase/flatEdgeActions from edgeActions. */
    void rebuildFlat();
};

/** Build the runtime plan from a numbered P-DAG. */
InstrumentationPlan buildInstrumentationPlan(
    const bytecode::MethodCfg &method_cfg, const PDag &pdag,
    const Numbering &numbering);

} // namespace pep::profile

#endif // PEP_PROFILE_INSTR_PLAN_HH
