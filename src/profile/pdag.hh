#ifndef PEP_PROFILE_PDAG_HH
#define PEP_PROFILE_PDAG_HH

/**
 * @file
 * The P-DAG: the acyclic graph over which Ball-Larus path numbering runs
 * (Section 3.2 of the paper). Two constructions are supported:
 *
 *  - HeaderSplit (PEP): paths end at loop headers, where Jikes RVM's
 *    yieldpoints live. Each loop header h is split into hTop (the
 *    yieldpoint) and hRest; every CFG edge into h enters hTop; the
 *    hTop->hRest transition is truncated and replaced by dummy edges
 *    Entry->hRest and hTop->Exit. All cycles pass through a header, so
 *    the result is acyclic (conservatively true even for irreducible
 *    CFGs, since we treat every retreating-edge target as a header).
 *
 *  - BackEdgeTruncate (classic BLPP): each back edge u->h is removed and
 *    replaced by dummy edges Entry->h (shared per header) and u->Exit
 *    (one per back edge).
 *
 * Every DAG node remembers which CFG block it represents, and every DAG
 * edge remembers whether it is real (maps to a CFG edge) or a dummy.
 */

#include <cstdint>
#include <vector>

#include "bytecode/cfg_builder.hh"
#include "cfg/graph.hh"

namespace pep::profile {

/** Which truncation scheme built the P-DAG. */
enum class DagMode : std::uint8_t
{
    HeaderSplit,      ///< PEP: paths end at loop headers
    BackEdgeTruncate, ///< classic BLPP: paths end at back edges
};

/** Role of a DAG node. */
enum class NodeRole : std::uint8_t
{
    Entry,
    Exit,
    Plain,      ///< whole CFG block
    HeaderTop,  ///< yieldpoint part of a split loop header
    HeaderRest, ///< remainder of a split loop header
};

/** Kind of a DAG edge. */
enum class DagEdgeKind : std::uint8_t
{
    Real,       ///< corresponds to a CFG edge
    DummyEntry, ///< Entry -> header(Rest): a path starting at the header
    DummyExit,  ///< headerTop/backEdgeSrc -> Exit: a path ending there
};

/** Metadata for one DAG edge. */
struct DagEdgeMeta
{
    DagEdgeKind kind = DagEdgeKind::Real;

    /** The CFG edge this DAG edge represents (Real edges only). */
    cfg::EdgeRef cfgEdge;
};

/** The P-DAG plus its CFG correspondence. */
struct PDag
{
    DagMode mode = DagMode::HeaderSplit;

    /** The acyclic graph (entry = node 0, exit = node 1). */
    cfg::Graph dag;

    /** Role of each DAG node. */
    std::vector<NodeRole> role;

    /** CFG block represented by each DAG node (kInvalidBlock for
     *  entry/exit). */
    std::vector<cfg::BlockId> cfgBlock;

    /** Metadata per DAG edge, parallel to dag successor lists. */
    std::vector<std::vector<DagEdgeMeta>> edgeMeta;

    /** DAG node a CFG edge *enters* (hTop for edges into headers). */
    std::vector<cfg::BlockId> nodeForBlockEntry;

    /** DAG node CFG edges *leave from* (hRest for split headers). */
    std::vector<cfg::BlockId> nodeForBlockExit;

    /**
     * For each CFG edge (block, succIndex), the DAG edge carrying it, or
     * an invalid EdgeRef if the CFG edge was truncated (back edges in
     * BackEdgeTruncate mode).
     */
    std::vector<std::vector<cfg::EdgeRef>> dagEdgeForCfgEdge;

    /** Per CFG block: the DummyExit edge of its hTop (HeaderSplit mode,
     *  headers only); invalid otherwise. */
    std::vector<cfg::EdgeRef> headerDummyExit;

    /** Per CFG block: the DummyEntry edge into its hRest / itself;
     *  invalid for non-headers. */
    std::vector<cfg::EdgeRef> headerDummyEntry;

    /** Per CFG back edge (indexed as in MethodCfg::backEdges): the
     *  DummyExit edge replacing it (BackEdgeTruncate mode). */
    std::vector<cfg::EdgeRef> backEdgeDummyExit;

    /** Look up metadata for a DAG edge. */
    const DagEdgeMeta &
    meta(cfg::EdgeRef e) const
    {
        return edgeMeta[e.src][e.index];
    }
};

/** Build the P-DAG for a method CFG. */
PDag buildPDag(const bytecode::MethodCfg &method_cfg, DagMode mode);

} // namespace pep::profile

#endif // PEP_PROFILE_PDAG_HH
