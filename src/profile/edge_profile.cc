#include "profile/edge_profile.hh"

#include "support/panic.hh"

namespace pep::profile {

MethodEdgeProfile::MethodEdgeProfile(const bytecode::MethodCfg &method_cfg)
{
    const cfg::Graph &graph = method_cfg.graph;
    counts_.resize(graph.numBlocks());
    for (cfg::BlockId b = 0; b < graph.numBlocks(); ++b)
        counts_[b].assign(graph.succs(b).size(), 0);
}

BranchCounts
MethodEdgeProfile::branch(cfg::BlockId b) const
{
    PEP_ASSERT_MSG(counts_[b].size() >= 2,
                   "block " << b << " is not a conditional branch");
    return BranchCounts{counts_[b][0], counts_[b][1]};
}

std::uint64_t
MethodEdgeProfile::totalCount() const
{
    std::uint64_t total = 0;
    for (const auto &per_block : counts_) {
        for (std::uint64_t c : per_block)
            total += c;
    }
    return total;
}

void
MethodEdgeProfile::clear()
{
    for (auto &per_block : counts_)
        per_block.assign(per_block.size(), 0);
}

void
MethodEdgeProfile::merge(const MethodEdgeProfile &other)
{
    PEP_ASSERT(counts_.size() == other.counts_.size());
    for (std::size_t b = 0; b < counts_.size(); ++b) {
        PEP_ASSERT(counts_[b].size() == other.counts_[b].size());
        for (std::size_t i = 0; i < counts_[b].size(); ++i)
            counts_[b][i] += other.counts_[b][i];
    }
}

MethodEdgeProfile
MethodEdgeProfile::flipped(const bytecode::MethodCfg &method_cfg) const
{
    MethodEdgeProfile result = *this;
    for (cfg::BlockId b = 0; b < counts_.size(); ++b) {
        if (method_cfg.terminator[b] == bytecode::TerminatorKind::Cond)
            std::swap(result.counts_[b][0], result.counts_[b][1]);
    }
    return result;
}

EdgeProfileSet::EdgeProfileSet(const std::vector<bytecode::MethodCfg> &cfgs)
{
    perMethod.reserve(cfgs.size());
    for (const auto &method_cfg : cfgs)
        perMethod.emplace_back(method_cfg);
}

EdgeProfileSet::EdgeProfileSet(
    const std::vector<const bytecode::MethodCfg *> &cfgs)
{
    perMethod.reserve(cfgs.size());
    for (const bytecode::MethodCfg *method_cfg : cfgs)
        perMethod.emplace_back(*method_cfg);
}

void
EdgeProfileSet::clear()
{
    for (auto &profile : perMethod)
        profile.clear();
}

void
EdgeProfileSet::merge(const EdgeProfileSet &other)
{
    PEP_ASSERT_MSG(perMethod.size() == other.perMethod.size(),
                   "merging edge profiles of different programs ("
                       << perMethod.size() << " vs "
                       << other.perMethod.size() << " methods)");
    for (std::size_t m = 0; m < perMethod.size(); ++m)
        perMethod[m].merge(other.perMethod[m]);
}

std::uint64_t
EdgeProfileSet::totalCount() const
{
    std::uint64_t total = 0;
    for (const auto &profile : perMethod)
        total += profile.totalCount();
    return total;
}

} // namespace pep::profile
