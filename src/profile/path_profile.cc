#include "profile/path_profile.hh"

#include "profile/edge_profile.hh"

namespace pep::profile {

const PathRecord *
MethodPathProfile::find(std::uint64_t path_number) const
{
    const auto it = paths_.find(path_number);
    return it == paths_.end() ? nullptr : &it->second;
}

std::uint64_t
MethodPathProfile::totalCount() const
{
    std::uint64_t total = 0;
    for (const auto &[number, record] : paths_)
        total += record.count;
    return total;
}

void
MethodPathProfile::ensureExpanded(const PathReconstructor &reconstructor,
                                  const KPathScheme *kpath)
{
    for (auto &[number, record] : paths_) {
        if (!record.expanded)
            expandRecord(record, reconstructor, number, kpath);
    }
}

void
PathProfileSet::clear()
{
    for (auto &profile : perMethod)
        profile.clear();
}

void
expandRecord(PathRecord &record, const PathReconstructor &reconstructor,
             std::uint64_t path_number, const KPathScheme *kpath)
{
    ReconstructedPath path =
        kpath != nullptr && path_number >= kpath->base()
            ? reconstructKPath(*kpath, reconstructor, path_number)
            : reconstructor.reconstruct(path_number);
    record.cfgEdges = std::move(path.cfgEdges);
    record.numBranches = path.numBranches;
    record.expanded = true;
}

void
accumulateEdgeProfile(MethodEdgeProfile &edge_profile,
                      MethodPathProfile &path_profile,
                      const PathReconstructor &reconstructor,
                      const KPathScheme *kpath)
{
    path_profile.ensureExpanded(reconstructor, kpath);
    for (const auto &[number, record] : path_profile.paths()) {
        for (const cfg::EdgeRef &edge : record.cfgEdges)
            edge_profile.addEdge(edge, record.count);
    }
}

} // namespace pep::profile
