#include "support/rng.hh"

#include <cmath>

#include "support/panic.hh"

namespace pep::support {

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

namespace {

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &lane : s_)
        lane = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    PEP_ASSERT(bound != 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    PEP_ASSERT(lo <= hi);
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBounded(span));
}

std::uint64_t
Rng::nextTripCount(double mean, std::uint64_t min_trips)
{
    if (mean <= static_cast<double>(min_trips))
        return min_trips;
    // Draw geometric with mean (mean - min_trips) and shift by min_trips.
    const double extra_mean = mean - static_cast<double>(min_trips);
    const double u = nextDouble();
    const double p = 1.0 / (extra_mean + 1.0);
    const double extra = std::floor(std::log1p(-u) / std::log1p(-p));
    return min_trips + static_cast<std::uint64_t>(extra);
}

void
Rng::jump()
{
    // Jump polynomial for xoshiro256** (Blackman & Vigna): advances the
    // state by exactly 2^128 steps of the sequence.
    static constexpr std::uint64_t kJump[4] = {
        0x180ec6d33cfd0abaull, 0xd5a61266f0c9392cull,
        0xa9582618e03fc9aaull, 0x39abdc4529b1661cull};

    std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (const std::uint64_t word : kJump) {
        for (int b = 0; b < 64; ++b) {
            if (word & (1ull << b)) {
                s0 ^= s_[0];
                s1 ^= s_[1];
                s2 ^= s_[2];
                s3 ^= s_[3];
            }
            next();
        }
    }
    s_[0] = s0;
    s_[1] = s1;
    s_[2] = s2;
    s_[3] = s3;
}

Rng
Rng::fork()
{
    // The child keeps the current position; the parent jumps 2^128
    // steps ahead, so their future outputs come from disjoint blocks of
    // the cycle (see the scheme documented in rng.hh).
    Rng child = *this;
    jump();
    return child;
}

} // namespace pep::support
