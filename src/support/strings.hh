#ifndef PEP_SUPPORT_STRINGS_HH
#define PEP_SUPPORT_STRINGS_HH

/**
 * @file
 * String utilities used by the bytecode assembler and table printer.
 */

#include <string>
#include <string_view>
#include <vector>

namespace pep::support {

/** Split on whitespace, dropping empty tokens. */
std::vector<std::string> splitWhitespace(std::string_view text);

/** Split on a single character delimiter, keeping empty fields. */
std::vector<std::string> splitChar(std::string_view text, char delim);

/** Strip leading/trailing whitespace. */
std::string trim(std::string_view text);

/** True if `text` begins with `prefix`. */
bool startsWith(std::string_view text, std::string_view prefix);

/** Parse a signed 64-bit integer; returns false on malformed input. */
bool parseInt(std::string_view text, std::int64_t &out);

} // namespace pep::support

#endif // PEP_SUPPORT_STRINGS_HH
