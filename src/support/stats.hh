#ifndef PEP_SUPPORT_STATS_HH
#define PEP_SUPPORT_STATS_HH

/**
 * @file
 * Small statistics helpers used by the benchmark harnesses to aggregate
 * per-benchmark results the way the paper does (arithmetic mean across
 * benchmarks, min/max, median of trials).
 */

#include <string>
#include <vector>

namespace pep::support {

/** Arithmetic mean; returns 0 for an empty input. */
double mean(const std::vector<double> &values);

/**
 * Geometric mean of the positive values in the input. Zero and
 * negative entries are skipped (std::log would turn one bad ratio into
 * a NaN/-inf poisoning the whole aggregate); returns 0 when no
 * positive value remains, including for an empty input.
 */
double geomean(const std::vector<double> &values);

/** Median (average of middle two for even counts); 0 for empty input. */
double median(std::vector<double> values);

/** Minimum; 0 for empty input. */
double minOf(const std::vector<double> &values);

/** Maximum; 0 for empty input. */
double maxOf(const std::vector<double> &values);

/** Format a ratio (e.g., 1.012) as a percentage overhead ("+1.2%"). */
std::string formatOverhead(double ratio);

/** Format a fraction in [0,1] as a percentage ("94.3%"). */
std::string formatPercent(double fraction, int decimals = 1);

/** Format a double with fixed decimals. */
std::string formatFixed(double value, int decimals = 3);

} // namespace pep::support

#endif // PEP_SUPPORT_STATS_HH
