#ifndef PEP_SUPPORT_RNG_HH
#define PEP_SUPPORT_RNG_HH

/**
 * @file
 * Deterministic pseudo-random number generation. Everything in this
 * repository that needs randomness (workload branch decisions, random CFG
 * corpora for tests) goes through Rng so runs are reproducible from a seed.
 */

#include <cstdint>

namespace pep::support {

/** SplitMix64 step, used for seeding and as a cheap standalone mixer. */
std::uint64_t splitmix64(std::uint64_t &state);

/**
 * xoshiro256** generator: fast, high quality, deterministic across
 * platforms. Not cryptographic (and does not need to be).
 */
class Rng
{
  public:
    /** Construct from a seed; any seed (including 0) is valid. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform in [0, bound); bound must be nonzero. Unbiased (rejection). */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw: true with probability p (clamped to [0,1]). */
    bool nextBool(double p);

    /** Uniform integer in [lo, hi] inclusive; requires lo <= hi. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /**
     * Geometric-ish loop trip count: mean approximately `mean`, minimum
     * `min_trips`. Used by workloads to draw loop iteration counts.
     */
    std::uint64_t nextTripCount(double mean, std::uint64_t min_trips = 1);

    /** Fork an independent stream (seeded from this stream's output). */
    Rng fork();

  private:
    std::uint64_t s_[4];
};

} // namespace pep::support

#endif // PEP_SUPPORT_RNG_HH
