#ifndef PEP_SUPPORT_RNG_HH
#define PEP_SUPPORT_RNG_HH

/**
 * @file
 * Deterministic pseudo-random number generation. Everything in this
 * repository that needs randomness (workload branch decisions, random CFG
 * corpora for tests) goes through Rng so runs are reproducible from a seed.
 */

#include <cstdint>

namespace pep::support {

/** SplitMix64 step, used for seeding and as a cheap standalone mixer. */
std::uint64_t splitmix64(std::uint64_t &state);

/**
 * xoshiro256** generator: fast, high quality, deterministic across
 * platforms. Not cryptographic (and does not need to be).
 */
class Rng
{
  public:
    /** Construct from a seed; any seed (including 0) is valid. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform in [0, bound); bound must be nonzero. Unbiased (rejection). */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw: true with probability p (clamped to [0,1]). */
    bool nextBool(double p);

    /** Uniform integer in [lo, hi] inclusive; requires lo <= hi. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /**
     * Geometric-ish loop trip count: mean approximately `mean`, minimum
     * `min_trips`. Used by workloads to draw loop iteration counts.
     */
    std::uint64_t nextTripCount(double mean, std::uint64_t min_trips = 1);

    /**
     * Advance this generator by 2^128 steps of its underlying sequence
     * (the standard xoshiro256** jump polynomial). Equivalent to
     * calling next() 2^128 times.
     */
    void jump();

    /**
     * Fork a *provably non-overlapping* stream.
     *
     * Scheme: xoshiro256** has a single cycle of length 2^256 - 1, and
     * jump() moves a generator exactly 2^128 steps along it. fork()
     * returns a child that continues from this generator's current
     * position and simultaneously jumps the parent 2^128 steps ahead.
     * The k-th fork therefore owns the half-open block of the sequence
     * [p + k*2^128, p + (k+1)*2^128) (p = the position at construction),
     * and the parent always generates from beyond the last block it
     * handed out. As long as every stream draws fewer than 2^128 values
     * — always true in practice — no two forks, and no fork and the
     * parent, can ever produce overlapping subsequences. This is a
     * structural guarantee from the jump polynomial, not a statistical
     * one; the fuzzer relies on it for its per-method streams.
     */
    Rng fork();

  private:
    std::uint64_t s_[4];
};

} // namespace pep::support

#endif // PEP_SUPPORT_RNG_HH
