#ifndef PEP_SUPPORT_PANIC_HH
#define PEP_SUPPORT_PANIC_HH

/**
 * @file
 * Error reporting helpers, following the gem5 fatal/panic distinction:
 * panic() is for internal invariant violations (a bug in this library),
 * fatal() is for unusable user input (bad bytecode, bad configuration).
 */

#include <cstdint>
#include <sstream>
#include <string>

namespace pep::support {

/** Thrown by fatal(): the caller supplied input the library cannot use. */
class FatalError : public std::exception
{
  public:
    explicit FatalError(std::string message);

    const char *what() const noexcept override { return message_.c_str(); }

  private:
    std::string message_;
};

/** Thrown by panic(): an internal invariant was violated. */
class PanicError : public std::exception
{
  public:
    explicit PanicError(std::string message);

    const char *what() const noexcept override { return message_.c_str(); }

  private:
    std::string message_;
};

/** Report an unusable-input condition; throws FatalError. */
[[noreturn]] void fatal(const std::string &message);

/** Report an internal invariant violation; throws PanicError. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &message);

/** Print a warning to stderr and continue. */
void warn(const std::string &message);

} // namespace pep::support

/** Panic with file/line context. Usage: PEP_PANIC("bad state: " << x); */
#define PEP_PANIC(stream_expr)                                          \
    do {                                                                \
        std::ostringstream pep_panic_os_;                               \
        pep_panic_os_ << stream_expr;                                   \
        ::pep::support::panicImpl(__FILE__, __LINE__,                   \
                                  pep_panic_os_.str());                 \
    } while (0)

/** Assert an internal invariant; panics with the condition text. */
#define PEP_ASSERT(cond)                                                \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::pep::support::panicImpl(__FILE__, __LINE__,               \
                                      "assertion failed: " #cond);      \
        }                                                               \
    } while (0)

/** Assert with an explanatory message appended. */
#define PEP_ASSERT_MSG(cond, stream_expr)                               \
    do {                                                                \
        if (!(cond)) {                                                  \
            std::ostringstream pep_assert_os_;                          \
            pep_assert_os_ << "assertion failed: " #cond << ": "        \
                           << stream_expr;                              \
            ::pep::support::panicImpl(__FILE__, __LINE__,               \
                                      pep_assert_os_.str());            \
        }                                                               \
    } while (0)

#endif // PEP_SUPPORT_PANIC_HH
