#ifndef PEP_SUPPORT_TABLE_HH
#define PEP_SUPPORT_TABLE_HH

/**
 * @file
 * ASCII table printer. The benchmark harnesses print the paper's tables
 * and figure series as aligned text tables on stdout.
 */

#include <iosfwd>
#include <string>
#include <vector>

namespace pep::support {

/**
 * A simple column-aligned table. Add a header row, then data rows; column
 * widths are computed at print time. The first column is left-aligned,
 * the rest right-aligned (numeric convention).
 */
class Table
{
  public:
    /** Set the header row (also fixes the column count). */
    void header(std::vector<std::string> cells);

    /** Append a data row; must match the header's column count. */
    void row(std::vector<std::string> cells);

    /** Append a horizontal separator line. */
    void separator();

    /** Render the table to a stream. */
    void print(std::ostream &os) const;

    /** Render the table to a string. */
    std::string str() const;

  private:
    std::vector<std::string> header_;
    // A row with no cells encodes a separator.
    std::vector<std::vector<std::string>> rows_;
};

} // namespace pep::support

#endif // PEP_SUPPORT_TABLE_HH
