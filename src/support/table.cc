#include "support/table.hh"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "support/panic.hh"

namespace pep::support {

void
Table::header(std::vector<std::string> cells)
{
    PEP_ASSERT(!cells.empty());
    header_ = std::move(cells);
}

void
Table::row(std::vector<std::string> cells)
{
    PEP_ASSERT_MSG(cells.size() == header_.size(),
                   "row has " << cells.size() << " cells, header has "
                              << header_.size());
    rows_.push_back(std::move(cells));
}

void
Table::separator()
{
    rows_.emplace_back();
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &r : rows_) {
        for (std::size_t c = 0; c < r.size(); ++c)
            widths[c] = std::max(widths[c], r[c].size());
    }

    auto print_line = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c > 0)
                os << "  ";
            const std::string &cell = cells[c];
            if (c == 0) {
                os << cell
                   << std::string(widths[c] - cell.size(), ' ');
            } else {
                os << std::string(widths[c] - cell.size(), ' ')
                   << cell;
            }
        }
        os << '\n';
    };

    auto print_separator = [&]() {
        std::size_t total = 0;
        for (std::size_t c = 0; c < widths.size(); ++c)
            total += widths[c] + (c > 0 ? 2 : 0);
        os << std::string(total, '-') << '\n';
    };

    print_line(header_);
    print_separator();
    for (const auto &r : rows_) {
        if (r.empty())
            print_separator();
        else
            print_line(r);
    }
}

std::string
Table::str() const
{
    std::ostringstream os;
    print(os);
    return os.str();
}

} // namespace pep::support
