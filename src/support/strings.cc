#include "support/strings.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace pep::support {

std::vector<std::string>
splitWhitespace(std::string_view text)
{
    std::vector<std::string> tokens;
    std::size_t i = 0;
    while (i < text.size()) {
        while (i < text.size() &&
               std::isspace(static_cast<unsigned char>(text[i]))) {
            ++i;
        }
        std::size_t start = i;
        while (i < text.size() &&
               !std::isspace(static_cast<unsigned char>(text[i]))) {
            ++i;
        }
        if (i > start)
            tokens.emplace_back(text.substr(start, i - start));
    }
    return tokens;
}

std::vector<std::string>
splitChar(std::string_view text, char delim)
{
    std::vector<std::string> fields;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= text.size(); ++i) {
        if (i == text.size() || text[i] == delim) {
            fields.emplace_back(text.substr(start, i - start));
            start = i + 1;
        }
    }
    return fields;
}

std::string
trim(std::string_view text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin]))) {
        ++begin;
    }
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1]))) {
        --end;
    }
    return std::string(text.substr(begin, end - begin));
}

bool
startsWith(std::string_view text, std::string_view prefix)
{
    return text.size() >= prefix.size() &&
           text.substr(0, prefix.size()) == prefix;
}

bool
parseInt(std::string_view text, std::int64_t &out)
{
    std::string buf(text);
    if (buf.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    const long long value = std::strtoll(buf.c_str(), &end, 0);
    if (errno != 0 || end != buf.c_str() + buf.size())
        return false;
    out = value;
    return true;
}

} // namespace pep::support
