#include "support/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace pep::support {

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
geomean(const std::vector<double> &values)
{
    // Zero/negative entries have no logarithm; average over the
    // positive subset only (see stats.hh for the contract).
    double log_sum = 0.0;
    std::size_t positive = 0;
    for (double v : values) {
        if (v > 0.0) {
            log_sum += std::log(v);
            ++positive;
        }
    }
    if (positive == 0)
        return 0.0;
    return std::exp(log_sum / static_cast<double>(positive));
}

double
median(std::vector<double> values)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    const std::size_t n = values.size();
    if (n % 2 == 1)
        return values[n / 2];
    return 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

double
minOf(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    return *std::min_element(values.begin(), values.end());
}

double
maxOf(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    return *std::max_element(values.begin(), values.end());
}

std::string
formatOverhead(double ratio)
{
    char buf[32];
    const double pct = (ratio - 1.0) * 100.0;
    std::snprintf(buf, sizeof(buf), "%+.1f%%", pct);
    return buf;
}

std::string
formatPercent(double fraction, int decimals)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
    return buf;
}

std::string
formatFixed(double value, int decimals)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

} // namespace pep::support
