#include "support/panic.hh"

#include <cstdio>
#include <utility>

namespace pep::support {

FatalError::FatalError(std::string message)
    : message_(std::move(message))
{
}

PanicError::PanicError(std::string message)
    : message_(std::move(message))
{
}

void
fatal(const std::string &message)
{
    throw FatalError("fatal: " + message);
}

void
panicImpl(const char *file, int line, const std::string &message)
{
    std::ostringstream os;
    os << "panic: " << message << " (" << file << ":" << line << ")";
    throw PanicError(os.str());
}

void
warn(const std::string &message)
{
    std::fprintf(stderr, "warn: %s\n", message.c_str());
}

} // namespace pep::support
