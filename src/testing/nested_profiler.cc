#include "testing/nested_profiler.hh"

#include "support/panic.hh"
#include "vm/compiled_method.hh"
#include "vm/inliner.hh"

namespace pep::testing {

NestedDispatchProfiler::NestedDispatchProfiler(
    vm::Machine &machine, profile::DagMode mode,
    profile::NumberingScheme scheme, profile::PlacementKind placement,
    std::uint32_t k_iterations)
    : vm_(machine), mode_(mode), scheme_(scheme), placement_(placement),
      kIterations_(k_iterations == 0 ? 1 : k_iterations)
{
}

void
NestedDispatchProfiler::onCompile(bytecode::MethodId method,
                                  const vm::CompiledMethod &version)
{
    // Mirror PathEngine::onCompile (minus cost charging): same CFG
    // choice, same frequency snapshot, so the built plan is identical.
    const bytecode::MethodCfg &version_cfg =
        version.inlinedBody ? version.inlinedBody->info.cfg
                            : vm_.info(method).cfg;
    const profile::MethodEdgeProfile *freq = nullptr;
    if (!version.inlinedBody) {
        const profile::MethodEdgeProfile &one_time =
            vm_.oneTimeEdges().perMethod[method];
        if (one_time.totalCount() > 0)
            freq = &one_time;
    }
    VersionCounts &vc =
        versions_[core::VersionKey{method, version.version}];
    vc.state = core::buildProfilingState(version_cfg, method,
                                         version.version, mode_,
                                         scheme_, freq, placement_,
                                         kIterations_);
    vc.state->compiled = &version;
    if (!vc.state->plan.enabled)
        ++overflow_;
}

NestedDispatchProfiler::VersionCounts *
NestedDispatchProfiler::find(bytecode::MethodId method,
                             std::uint32_t version)
{
    const auto it = versions_.find(core::VersionKey{method, version});
    return it == versions_.end() ? nullptr : &it->second;
}

void
NestedDispatchProfiler::pathCompleted(VersionCounts &vc,
                                      std::uint64_t number)
{
    ++vc.counts[number];
    ++completed_;
}

void
NestedDispatchProfiler::segmentCompleted(FrameRec &rec,
                                         std::uint64_t number)
{
    const profile::KPathScheme &kpath = rec.vc->state->kpath;
    if (kpath.kEffective() == 1) {
        pathCompleted(*rec.vc, number);
        return;
    }
    rec.win.push_back(number);
    if (rec.win.size() == kpath.kEffective()) {
        pathCompleted(*rec.vc, kpath.encode(rec.win));
        rec.win.clear();
    }
}

void
NestedDispatchProfiler::flushWindow(FrameRec &rec)
{
    if (rec.win.empty())
        return;
    pathCompleted(*rec.vc, rec.vc->state->kpath.encode(rec.win));
    rec.win.clear();
}

void
NestedDispatchProfiler::onMethodEntry(const vm::FrameView &frame)
{
    FrameRec rec;
    VersionCounts *vc = find(frame.method, frame.version->version);
    if (vc && vc->state->plan.enabled)
        rec.vc = vc;
    stack_.push_back(rec);
    PEP_ASSERT(stack_.size() == frame.depth + 1);
}

void
NestedDispatchProfiler::onMethodExit(const vm::FrameView &frame)
{
    PEP_ASSERT(stack_.size() == frame.depth + 1);
    FrameRec &rec = stack_.back();
    if (rec.vc) {
        segmentCompleted(rec, rec.reg);
        flushWindow(rec);
    }
    stack_.pop_back();
}

void
NestedDispatchProfiler::onEdge(const vm::FrameView &frame,
                               cfg::EdgeRef edge)
{
    (void)frame;
    FrameRec &rec = stack_.back();
    if (!rec.vc)
        return;
    // The point of this profiler: read the build/analysis
    // representation, not the flattened mirror.
    const profile::EdgeAction &action =
        rec.vc->state->plan.edgeActions[edge.src][edge.index];
    if (action.endsPath) {
        segmentCompleted(rec, rec.reg + action.endAdd);
        rec.reg = action.restart;
    } else if (action.increment != 0) {
        rec.reg += action.increment;
    }
}

void
NestedDispatchProfiler::onLoopHeader(const vm::FrameView &frame,
                                     cfg::BlockId block)
{
    (void)frame;
    FrameRec &rec = stack_.back();
    if (!rec.vc)
        return;
    const profile::HeaderAction &action =
        rec.vc->state->plan.headerActions[block];
    if (!action.endsPath)
        return;
    segmentCompleted(rec, rec.reg + action.endAdd);
    rec.reg = action.restart;
}

void
NestedDispatchProfiler::onOsr(const vm::FrameView &frame,
                              cfg::BlockId header)
{
    FrameRec &rec = stack_.back();
    if (mode_ != profile::DagMode::HeaderSplit) {
        if (rec.vc)
            flushWindow(rec);
        rec.vc = nullptr;
        return;
    }
    // Flush the partial window against the old version before any
    // rebind/drop (mirrors PathEngine::onOsr).
    if (rec.vc)
        flushWindow(rec);
    VersionCounts *vc = find(frame.method, frame.version->version);
    if (!vc || !vc->state->plan.enabled ||
        !vc->state->plan.headerActions[header].endsPath) {
        rec.vc = nullptr;
        return;
    }
    rec.vc = vc;
    rec.reg = vc->state->plan.headerActions[header].restart;
}

const NestedDispatchProfiler::VersionCounts *
NestedDispatchProfiler::countsFor(core::VersionKey key) const
{
    const auto it = versions_.find(key);
    return it == versions_.end() ? nullptr : &it->second;
}

std::vector<std::pair<core::VersionKey,
                      const NestedDispatchProfiler::VersionCounts *>>
NestedDispatchProfiler::all() const
{
    std::vector<
        std::pair<core::VersionKey, const VersionCounts *>>
        result;
    result.reserve(versions_.size());
    for (const auto &[key, vc] : versions_)
        result.emplace_back(key, &vc);
    return result;
}

} // namespace pep::testing
