#ifndef PEP_TESTING_GENERATOR_HH
#define PEP_TESTING_GENERATOR_HH

/**
 * @file
 * Seed-driven program generator for the differential fuzzing harness.
 * Emits verifier-clean random programs deliberately biased toward the
 * control-flow shapes where path numbering historically goes wrong:
 * nested loops, loop headers shared by several back edges, switch fans
 * with parallel edges (distinct cases targeting one block), early
 * returns out of loops, and call chains hot enough to drive the
 * adaptive compiler through inlining and OSR.
 *
 * Generation is structured (statements compose recursively, the operand
 * stack is empty at every statement boundary), so every program passes
 * the verifier by construction, every loop is bounded by a constant
 * trip count, and the whole program is a deterministic function of the
 * seed. Branch conditions consume Irnd, so dynamic behaviour follows
 * the VM's own deterministic random stream.
 */

#include <cstdint>

#include "bytecode/method.hh"

namespace pep::testing {

/** Knobs for one generated program; everything else comes from seed. */
struct FuzzSpec
{
    std::uint64_t seed = 1;

    /** Hot methods (invoked from main's driver loop): 1..max. */
    std::uint32_t maxHotMethods = 3;

    /** Leaf methods (no calls; inline-eligible): 0..max. */
    std::uint32_t maxLeafMethods = 3;

    /** Statement budget per method body. */
    std::uint32_t maxElements = 10;

    /** Maximum structural nesting (loops / switches / diamonds). */
    std::uint32_t maxDepth = 3;

    /** Iterations of main's driver loop (controls hotness: enough
     *  timer ticks must land to promote methods to optimizing tiers). */
    std::uint32_t mainTrips = 48;

    /**
     * Loop-heaviness bias in [0, 1]: the extra probability that any
     * statement slot becomes a loop before the regular shape roll, with
     * wider (irregular) trip counts and a raised shared-header rate.
     * 0.0 draws nothing extra from the RNG, so programs are
     * byte-identical to the legacy generator — k-BLPP tests raise it to
     * get deep nesting and many cross-iteration windows per run.
     */
    double loopBias = 0.0;
};

/** Generate a verified program from the spec (deterministic). */
bytecode::Program generateProgram(const FuzzSpec &spec);

/**
 * Iteration count for fuzz-style tests: the PEP_FUZZ_ITERS environment
 * variable when set to a positive integer, else `fallback`. Tier-1 CI
 * uses the small default; nightly runs export a large override.
 */
std::uint64_t fuzzItersFromEnv(std::uint64_t fallback);

/**
 * k-BLPP window length for fuzz-style tests: the PEP_KITER environment
 * variable when set to a positive integer, else `fallback`. Consumed
 * only by tools/tests that opt in (pep_fuzz --kiter default, dedicated
 * k-iteration tests) — never by golden tests or corpus replay.
 */
std::uint32_t kIterationsFromEnv(std::uint32_t fallback);

} // namespace pep::testing

#endif // PEP_TESTING_GENERATOR_HH
