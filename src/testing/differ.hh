#ifndef PEP_TESTING_DIFFER_HH
#define PEP_TESTING_DIFFER_HH

/**
 * @file
 * The differential checker: run one program through the exact oracle,
 * full BLPP (flat dispatch), the nested-dispatch mirror, and several
 * PEP sampling configurations — all on the same Machine, hence the same
 * deterministic event stream — then cross-check every pair against the
 * oracle invariants:
 *
 *  1. the oracle's bytecode edge mirror equals the Machine's own
 *     ground-truth edge counts (pins the oracle to the interpreter);
 *  2. full BLPP's number->count table, mapped through the
 *     reconstructor, equals the oracle's segment counts *exactly*;
 *  3. flat and nested dispatch produce identical number->count tables
 *     (the dynamic extension of plan-checker check 8);
 *  4. every engine agrees on the total number of completed paths;
 *  5. PEP-sampled counts never exceed the oracle's, sum to
 *     samplesRecorded, and the derived edge profile is bounded by
 *     ground truth and flow-conserved at non-header blocks;
 *  6. the edge profile derived from full BLPP is bounded by ground
 *     truth and flow-conserved (at loop headers too while no frame was
 *     dropped mid-path);
 *  7. the switch-dispatch and threaded (pre-decoded template)
 *     execution engines are byte-identical: the same program run on
 *     two otherwise-identical machines, one per engine, produces the
 *     same cycles, stats, ground truth, one-time profile, BLPP path
 *     tables and PEP samples (docs/ENGINE.md determinism contract);
 *  8. (kIterations > 1, docs/KBLPP.md) every comparison above runs
 *     over k-path window ids instead of raw Ball-Larus numbers — the
 *     oracle records literal k-iteration segment concatenations and
 *     the engines' composite ids must reconstruct to *exactly* those
 *     sequences with exactly those counts — and the k=1 degeneracy
 *     check proves the instrumentation layer is untouched: plans
 *     built at k = kIterations are byte-identical to plans built at
 *     k = 1 (k-BLPP is pure post-processing of segment numbers);
 *  9. (optLayout/optClone, docs/OPT.md) for every version the cloning
 *     pass synthesized, the full profiler's cloned-CFG path counts
 *     folded through the version's live BlockOrigin map onto the
 *     original CFG's branches agree *count for count* with the
 *     oracle's literal segments folded through the origin snapshot it
 *     took at compile time — a cloned branch whose counters fold to
 *     the wrong (or no) bytecode-level branch cannot hide.
 *
 * Fault injection (for harness self-tests and CI) deliberately breaks
 * the flat/nested mirror invariant after a warm-up iteration, modelling
 * the "forgot rebuildFlat() after applySpanningPlacement" bug class —
 * or, for `stale-template`, mutates installed branch layouts without
 * Machine::invalidateDecoded(), which check 7 must catch, or, for
 * `bad-clone-fold`, invalidates a cloned branch block's BlockOrigin in
 * place, which check 9 and the static clone audits must catch.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "bytecode/method.hh"
#include "profile/instr_plan.hh"
#include "profile/numbering.hh"
#include "profile/pdag.hh"
#include "vm/engine.hh"

namespace pep::testing {

/** One PEP sampling configuration to run alongside the oracle. */
struct PepConfig
{
    std::uint32_t samples = 1;
    std::uint32_t stride = 1;
};

/** Deliberate bug classes the harness can inject into the full
 *  profiler's plan between iterations. */
enum class InjectKind : std::uint8_t
{
    None,

    /** Overwrite the flat mirror with the pre-spanning (direct) plan's,
     *  as if applySpanningPlacement had skipped rebuildFlat(). Only
     *  effective with PlacementKind::SpanningTree. */
    StaleFlatAfterSpanning,

    /** Bump the first nonzero flat increment by one. */
    CorruptFlatIncrement,

    /** Flip every installed version's branch layout in place without
     *  calling Machine::invalidateDecoded(), as if a relayout forgot
     *  the template-invalidation invariant. Switch dispatch reads the
     *  new layout immediately while the threaded engine keeps
     *  executing stale templates, so the engine cross-check (check 7)
     *  must report a divergence. */
    StaleTemplate,

    /** Corrupt one count of the first PEP profiler's recorded
     *  continuous edge profile after the run: an edge gains a crossing
     *  no execution could have produced. The dynamic bound/conservation
     *  checks (check 5) and the static realizability pass
     *  (analysis/verify/realizability.hh) must both reject it. */
    ImpossibleProfile,

    /** Flip every installed version's branch layout *after* the final
     *  iteration, without invalidateDecoded(). Nothing further
     *  executes, so no dynamic check can see it — only the static
     *  invariant audits (analysis/verify/invariants.hh: the mutation
     *  journal and the cached-stream retranslation) catch it. On the
     *  engine cross-check machines the flip happens mid-run like
     *  stale-template, so check 7 diverges there too. */
    SkippedInvalidate,

    /** Threaded differ only (runThreadedDiff): the ring transport
     *  silently discards one of shard 0's samples without bumping the
     *  drop counter — the corrupt-drop-accounting bug class. The
     *  conservation law produced == consumed + dropped (check 5) and
     *  the drop-free ring-vs-mutex identity (check 6) must both
     *  report it. */
    RingLostSample,

    /** k-BLPP only (kIterations > 1): after a warm-up iteration the
     *  full profiler silently drops partial windows at method exit and
     *  OSR instead of emitting them — the truncated-window bug class
     *  (a frame dies and its accumulated segments vanish). The oracle
     *  still counts every window, so the totals check (check 4), the
     *  missed-path check (check 2) and the flat/nested mirror
     *  (check 3, the nested profiler flushes correctly) must all
     *  report it. */
    TruncatedWindow,

    /** Requires a config with optClone and a program hot enough to
     *  clone: invalidate one cloned branch block's BlockOrigin in
     *  place (through versionForUpdate + invalidateDecoded, so the
     *  mutation journal stays discharged) after a warm-up iteration —
     *  the block's counters no longer fold onto the original CFG.
     *  The clone-fold exactness check (check 9, which folds against
     *  the oracle's compile-time origin snapshot), the oracle's
     *  bytecode mirror (check 1, while the corrupt version keeps
     *  executing) and the static clone-body audit (plan-checker
     *  check 11) must all reject it. */
    BadCloneFold,

    /** Requires a config with fuse.traces: flip every installed
     *  version's branch layout in place without invalidateDecoded(),
     *  modelling a retranslation skipped after a profile-direction
     *  phase shift — the threaded engine keeps executing hot-trace
     *  segments straightened for the *old* directions (stale guard
     *  refunds and prepaid chains included) while switch dispatch
     *  follows the new layout, so the engine cross-check (check 7)
     *  must diverge and the static cached-stream audit
     *  (analysis/verify/invariants.hh) must flag the stale stream. */
    StaleFusion,
};

/** Name for reports / CLI flags ("none", "stale-flat", ...). */
std::string injectKindName(InjectKind kind);

/** Parse an injection name; returns false on unknown names. */
bool parseInjectKind(const std::string &name, InjectKind &out);

/** One differential configuration (profiling modes + VM features). */
struct DiffOptions
{
    std::string name = "headersplit-direct";

    profile::DagMode mode = profile::DagMode::HeaderSplit;
    profile::NumberingScheme scheme = profile::NumberingScheme::BallLarus;
    profile::PlacementKind placement = profile::PlacementKind::Direct;

    bool yieldpointsOnBackEdges = false;
    bool enableOsr = false;
    bool enableInlining = false;

    /**
     * k-BLPP window length (docs/KBLPP.md): every profiler groups up
     * to kIterations consecutive Ball-Larus segments per frame into
     * one composite k-path id, and the oracle records the literal
     * concatenated segment sequences. 1 (the default) is bit-for-bit
     * classic BLPP.
     */
    std::uint32_t kIterations = 1;

    /** Short tick period so sampling/OSR fire on small programs. */
    std::uint64_t tickCycles = 9'000;

    /** Runaway guard: shrink candidates can be verifier-clean infinite
     *  loops; fail them fast instead of spinning for minutes. */
    std::uint64_t maxCyclesPerIteration = 50'000'000;

    std::uint32_t iterations = 3;

    std::vector<PepConfig> pepConfigs = {{1, 1}, {64, 17}};

    /**
     * Install the profile-guided reoptimization pipeline (src/opt/)
     * as a compile pass on every machine of the run — the main one
     * and both engine cross-check machines — feeding on the first PEP
     * configuration's profiler. optLayout enables the Pettis-Hansen
     * chain-layout pass, optClone hot-path cloning (which makes
     * check 9 meaningful). Standard configs default these from the
     * PEP_OPT environment variable when it is set; the clone-*
     * configs pin both on so the optimizer legs run in every sweep.
     */
    bool optLayout = false;
    bool optClone = false;

    /**
     * Fusion selection (docs/ENGINE.md) installed on every machine of
     * the run via Machine::setFuseOptions — superinstruction pairs
     * and/or straightened hot-trace segments in the threaded engine's
     * template streams. Switch dispatch ignores it entirely, so the
     * engine cross-check (check 7) proves fusion is observation-
     * equivalent. The fuse-* standard configs pin these on.
     */
    vm::FuseOptions fuse = {};

    InjectKind inject = InjectKind::None;

    /** Check 7: run the program once per execution engine (switch and
     *  threaded) on otherwise-identical machines and byte-compare
     *  every observable. On for every standard config. */
    bool crossCheckEngines = true;

    /** Run the static verify passes (analysis/verify/) over the
     *  machine, the profilers' plans and every recorded profile at the
     *  end of the run; their error diagnostics become violations. This
     *  is the static mirror of checks 5-7 — on for every standard
     *  config, so the fuzzer continuously proves the static layer
     *  raises no false alarms. */
    bool runStaticVerify = true;
};

/** Result of one differential run. */
struct DiffReport
{
    /** Invariant violations (empty == the run was clean). */
    std::vector<std::string> violations;

    /** Versions that carried an enabled instrumentation plan. */
    std::size_t instrumentedVersions = 0;

    std::uint64_t oracleSegments = 0;
    std::uint64_t blppPaths = 0;
    std::uint64_t pepSamplesRecorded = 0;

    /** Non-fatal observations (skipped checks and why). */
    std::vector<std::string> notes;

    bool ok() const { return violations.empty(); }
};

/** The standard configuration matrix the fuzzer sweeps. */
const std::vector<DiffOptions> &standardConfigs();

/** Look up a standard configuration; nullptr if unknown. */
const DiffOptions *findConfig(const std::string &name);

/** Run one program through one configuration. */
DiffReport runDiff(const bytecode::Program &program,
                   const DiffOptions &opts);

/**
 * One multi-threaded scheduler configuration: a request stream run
 * through the concurrent runtime (runtime/coop_scheduler.hh). Inlining
 * and OSR stay off here — truth-edge recording for inlined frames keeps
 * only branch edges, and scheduling-dependent promotion changes
 * inlining decisions between the interleaved run and the per-thread
 * solo runs, so the oracle sums would not be comparable.
 */
struct ThreadedDiffOptions
{
    std::string name = "coop-k4";

    /** Virtual mutator threads in the cooperative run. */
    std::uint32_t threads = 4;

    /** Seeds the request stream, the Irnd streams, and the scheduler. */
    std::uint64_t seed = 1;

    /** Requests in the generated stream. */
    std::uint32_t requests = 96;

    /** Short tick period so context switches fire on small streams. */
    std::uint64_t tickCycles = 9'000;

    PepConfig pep = {8, 3};

    /** k-BLPP window length for the PEP profiler and the solo oracles
     *  (docs/KBLPP.md); 1 = classic single-segment paths. */
    std::uint32_t kIterations = 1;

    /** Also cross-check sharded vs mutex aggregation (OS threads). */
    bool checkAggregation = true;
    std::uint32_t workers = 3;
    std::uint32_t epochRequests = 16;

    /**
     * Checks 5-6: the SPSC ring transport. An ample-capacity ring run
     * must satisfy sample conservation (produced == consumed +
     * dropped) and, when its drop count is zero, match the mutex
     * baseline count for count; a deliberately tiny ring must still
     * satisfy conservation and stay bounded by the mutex totals
     * (drops remove whole records, they never invent counts).
     * Requires checkAggregation (the mutex run is the reference).
     */
    bool checkRing = true;
    std::uint32_t ringCapacity = 1u << 16;
    std::uint32_t tightRingCapacity = 128;

    /** Only InjectKind::None and RingLostSample are meaningful here. */
    InjectKind inject = InjectKind::None;
};

/** The standard multi-threaded configuration matrix. */
const std::vector<ThreadedDiffOptions> &standardThreadedConfigs();

/** Look up a standard threaded configuration; nullptr if unknown. */
const ThreadedDiffOptions *findThreadedConfig(const std::string &name);

/**
 * Run the concurrent-runtime differential checks:
 *
 *  1. a K-thread cooperative run completes every request, and its PEP
 *     edge profile is bounded by the machine's ground truth;
 *  2. the same run repeated is *byte-identical* (every profile and
 *     scheduler counter serialized and compared);
 *  3. the interleaved run's merged ground-truth edge profile equals
 *     the sum of K per-thread exact-oracle solo runs (thread t replays
 *     its request subsequence alone, same thread id, fresh machine);
 *  4. (optional) sharded and mutex-global aggregation over OS worker
 *     threads produce count-for-count identical edge and path totals;
 *  5. (optional) the ring transport conserves samples — produced ==
 *     consumed + dropped at quiescence, for both ample and tiny rings
 *     (drops must be *counted*, never silent);
 *  6. (optional) a drop-free ring run is count-for-count identical to
 *     mutex aggregation, and a drop-heavy run stays bounded by it.
 */
DiffReport runThreadedDiff(const ThreadedDiffOptions &opts);

/** Render a corpus reproducer: a commented header (config, seed,
 *  injection) followed by the program's assembler text. */
std::string formatCorpusFile(const bytecode::Program &program,
                             const std::string &config,
                             std::uint64_t seed, InjectKind inject,
                             const std::string &violation);

/** Metadata parsed back out of a corpus file. */
struct CorpusHeader
{
    std::string config = "headersplit-direct";
    std::string inject = "none";
    std::uint64_t seed = 0;
};

/** Parse the "; pep-fuzz: ..." header (defaults if absent). */
CorpusHeader parseCorpusHeader(const std::string &source);

} // namespace pep::testing

#endif // PEP_TESTING_DIFFER_HH
