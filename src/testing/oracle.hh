#ifndef PEP_TESTING_ORACLE_HH
#define PEP_TESTING_ORACLE_HH

/**
 * @file
 * The exact profiling oracle of the differential fuzzing harness. It
 * attaches to a Machine like any profiler, but instead of running the
 * path-register semantics it records, per instrumented compiled
 * version, the *literal CFG edge sequence* of every completed path
 * segment (from one path boundary to the next: loop headers and method
 * exits in HeaderSplit mode, back edges and exits in BackEdgeTruncate
 * mode), plus an independent bytecode-level edge-count mirror.
 *
 * This is ground truth by construction — no numbering, no plan, no
 * reconstruction — so the checker can demand that full BLPP's
 * number->count table, mapped through the reconstructor, matches these
 * segment counts *exactly*, and that sampled PEP counts never exceed
 * them. The edge mirror must equal the Machine's own truthEdges(),
 * which pins the oracle's reading of the event stream to the
 * interpreter's.
 *
 * With k_iterations > 1 the oracle records literal *k-windows*: the
 * concatenated edge sequences of up to kEffective consecutive segments
 * of one frame (tumbling, flushed short at method exit and OSR —
 * docs/KBLPP.md). It derives each version's kEffective independently
 * from the structural path count of the version's CFG, never from the
 * engines' plans, so it stays an oracle for the engines' composite-id
 * windowing too. Window keys are unambiguous: segment boundaries are
 * recoverable from the concatenated walk itself (a single segment
 * cannot pass through a split header or contain an interior back
 * edge), so two distinct windows never share a key.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/path_engine.hh"
#include "profile/edge_profile.hh"
#include "profile/pdag.hh"
#include "vm/hooks.hh"
#include "vm/inliner.hh"
#include "vm/machine.hh"

namespace pep::testing {

/** One CFG edge packed into 64 bits (src << 32 | successor index). */
inline std::uint64_t
encodeEdge(cfg::EdgeRef edge)
{
    return (static_cast<std::uint64_t>(edge.src) << 32) | edge.index;
}

/** A path segment as its encoded edge sequence. */
using EdgeSeq = std::vector<std::uint64_t>;

/** Encode a reconstructed path's CFG edges for comparison. */
EdgeSeq encodeEdges(const std::vector<cfg::EdgeRef> &edges);

/** "src:index src:index ..." for diagnostics. */
std::string formatEdgeSeq(const EdgeSeq &seq);

/** Exact per-segment frequencies (ordered for deterministic walks). */
using SegmentCounts = std::map<EdgeSeq, std::uint64_t>;

/** Ground truth for one instrumented compiled version. */
struct VersionTruth
{
    const vm::CompiledMethod *compiled = nullptr;

    /** Tables of the code the version executes (the inlined body's
     *  when inlining produced one). */
    const vm::MethodInfo *info = nullptr;

    /** With k == 1 these are per-segment counts; with k > 1 each key
     *  is one k-window's concatenated edge sequence. */
    SegmentCounts segments;

    /** Total windows completed (== segments for k == 1). */
    std::uint64_t completed = 0;

    /** Effective k-BLPP window length for this version, derived from
     *  the structural path count (independent of the engines). */
    std::uint32_t kEff = 1;

    /** Snapshot of a synthesized (inlined or cloned) body's
     *  block-origin fold map, taken at compile time. The oracle's
     *  bytecode mirror folds through this snapshot — never the live
     *  map — so an in-place BlockOrigin corruption after the compile
     *  (the bad-clone-fold injection) diverges the interpreter's
     *  ground truth from the oracle's mirror (check 1) and the
     *  profile fold from the oracle fold (differ check 9). Empty for
     *  versions running the method's own code. */
    std::vector<vm::BlockOrigin> originSnapshot;
};

/** The oracle; attach with both addHooks() and addCompileObserver(). */
class ExactOracle final : public vm::ExecutionHooks,
                          public vm::CompileObserver
{
  public:
    ExactOracle(vm::Machine &machine, profile::DagMode mode,
                std::uint32_t k_iterations = 1);

    // CompileObserver
    void onCompile(bytecode::MethodId method,
                   const vm::CompiledMethod &version) override;

    // ExecutionHooks
    void onMethodEntry(const vm::FrameView &frame) override;
    void onMethodExit(const vm::FrameView &frame) override;
    void onEdge(const vm::FrameView &frame, cfg::EdgeRef edge) override;
    void onLoopHeader(const vm::FrameView &frame,
                      cfg::BlockId block) override;
    void onOsr(const vm::FrameView &frame, cfg::BlockId header) override;

    /** Truth for a compiled version; nullptr if never registered. */
    const VersionTruth *truthFor(core::VersionKey key) const;

    /** All registered versions, ordered by (method, version). */
    std::vector<std::pair<core::VersionKey, const VersionTruth *>>
    all() const;

    /** Bytecode-level edge mirror (must equal Machine::truthEdges()). */
    const profile::EdgeProfileSet &edges() const { return edges_; }

    /** Total completed windows across all versions (== completed
     *  segments when k == 1). */
    std::uint64_t totalSegments() const { return totalSegments_; }

    /**
     * Frames whose segment stream was cut mid-path (OSR into a version
     * or block the engine cannot rebind at).
     */
    std::uint64_t droppedFrames() const { return dropped_; }

    /**
     * Frames picked up mid-execution: OSR promoted a frame that was
     * running uninstrumented (baseline) code into an instrumented
     * version, starting a profiled walk at the header with no matching
     * walk ending there. While both this and droppedFrames() are zero,
     * profiled flow is conserved at loop headers too.
     */
    std::uint64_t adoptedFrames() const { return adopted_; }

  private:
    struct FrameRec
    {
        VersionTruth *vt = nullptr;
        EdgeSeq seg;

        /** Concatenated edges of the window's completed segments. */
        EdgeSeq win;
        std::uint32_t winLen = 0;
    };

    VersionTruth *find(bytecode::MethodId method, std::uint32_t version);
    void complete(FrameRec &frame);

    /** Count the frame's (possibly short) window; no-op when empty. */
    void commitWindow(FrameRec &frame);

    vm::Machine &vm_;
    const profile::DagMode mode_;
    const std::uint32_t k_;
    std::map<core::VersionKey, VersionTruth> versions_;
    std::vector<FrameRec> stack_;
    profile::EdgeProfileSet edges_;
    std::uint64_t totalSegments_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t adopted_ = 0;
};

} // namespace pep::testing

#endif // PEP_TESTING_ORACLE_HH
