#include "testing/shrink.hh"

#include <algorithm>

#include "bytecode/instr.hh"
#include "bytecode/verifier.hh"

namespace pep::testing {

namespace {

using bytecode::Instr;
using bytecode::Opcode;
using bytecode::Program;

/** Opcodes whose `a` operand is a branch target pc. */
bool
branchTargetInA(Opcode op)
{
    return op >= Opcode::Goto && op <= Opcode::IfIcmple;
}

/** Single-operand conditionals (pop one value). */
bool
isUnaryCond(Opcode op)
{
    return op >= Opcode::Ifeq && op <= Opcode::Ifle;
}

/** Delete code[lo, hi) of one method, remapping every pc target:
 *  targets past the region shift down, targets inside collapse to the
 *  region start (the first surviving instruction after it). */
Program
deleteRange(const Program &base, std::size_t m, std::size_t lo,
            std::size_t hi)
{
    Program candidate = base;
    std::vector<Instr> &code = candidate.methods[m].code;
    const std::int32_t removed = static_cast<std::int32_t>(hi - lo);
    const auto map_pc = [&](std::int32_t pc) {
        if (pc < static_cast<std::int32_t>(lo))
            return pc;
        if (pc >= static_cast<std::int32_t>(hi))
            return pc - removed;
        return static_cast<std::int32_t>(lo);
    };
    code.erase(code.begin() + static_cast<std::ptrdiff_t>(lo),
               code.begin() + static_cast<std::ptrdiff_t>(hi));
    for (Instr &instr : code) {
        if (branchTargetInA(instr.op)) {
            instr.a = map_pc(instr.a);
        } else if (instr.op == Opcode::Tableswitch) {
            instr.b = map_pc(instr.b);
            for (std::int32_t &target : instr.table)
                target = map_pc(target);
        }
    }
    return candidate;
}

class Shrinker
{
  public:
    Shrinker(const Program &failing, const FailPredicate &fails,
             std::size_t max_attempts)
        : current_(failing), fails_(fails), maxAttempts_(max_attempts)
    {
    }

    ShrinkResult
    run()
    {
        bool progressed = true;
        while (progressed && attempts_ < maxAttempts_) {
            progressed = false;
            progressed |= dropMethods();
            progressed |= stubBodies();
            progressed |= deleteRanges();
            progressed |= neutralize();
        }
        return {current_, attempts_, changed_};
    }

  private:
    /** Verify the candidate and re-test; adopt it if it still fails. */
    bool
    accept(Program candidate)
    {
        if (attempts_ >= maxAttempts_)
            return false;
        ++attempts_;
        if (!bytecode::verifyProgram(candidate).ok)
            return false;
        if (!fails_(candidate))
            return false;
        current_ = std::move(candidate);
        changed_ = true;
        return true;
    }

    /** Remove methods nothing invokes (never main), remapping ids. */
    bool
    dropMethods()
    {
        bool progressed = false;
        for (std::size_t victim = current_.methods.size(); victim-- > 0;) {
            if (static_cast<bytecode::MethodId>(victim) ==
                current_.mainMethod) {
                continue;
            }
            bool called = false;
            for (std::size_t m = 0;
                 m < current_.methods.size() && !called; ++m) {
                if (m == victim)
                    continue;
                for (const Instr &instr : current_.methods[m].code) {
                    if (instr.op == Opcode::Invoke &&
                        instr.a == static_cast<std::int32_t>(victim)) {
                        called = true;
                        break;
                    }
                }
            }
            if (called)
                continue;
            Program candidate = current_;
            candidate.methods.erase(
                candidate.methods.begin() +
                static_cast<std::ptrdiff_t>(victim));
            for (bytecode::Method &method : candidate.methods) {
                for (Instr &instr : method.code) {
                    if (instr.op == Opcode::Invoke &&
                        instr.a > static_cast<std::int32_t>(victim)) {
                        --instr.a;
                    }
                }
            }
            if (candidate.mainMethod >
                static_cast<bytecode::MethodId>(victim)) {
                --candidate.mainMethod;
            }
            progressed |= accept(std::move(candidate));
        }
        return progressed;
    }

    /** Replace whole bodies (never main's) with a bare return. */
    bool
    stubBodies()
    {
        bool progressed = false;
        for (std::size_t m = 0; m < current_.methods.size(); ++m) {
            if (static_cast<bytecode::MethodId>(m) ==
                current_.mainMethod) {
                continue;
            }
            const bytecode::Method &method = current_.methods[m];
            const std::size_t stub_size = method.returnsValue ? 2 : 1;
            if (method.code.size() <= stub_size)
                continue;
            Program candidate = current_;
            std::vector<Instr> stub;
            if (method.returnsValue) {
                Instr zero;
                zero.op = Opcode::Iconst;
                stub.push_back(zero);
                Instr ret;
                ret.op = Opcode::Ireturn;
                stub.push_back(ret);
            } else {
                Instr ret;
                ret.op = Opcode::Return;
                stub.push_back(ret);
            }
            candidate.methods[m].code = std::move(stub);
            progressed |= accept(std::move(candidate));
        }
        return progressed;
    }

    /** ddmin over instruction ranges, largest chunks first. */
    bool
    deleteRanges()
    {
        bool progressed = false;
        for (std::size_t m = 0; m < current_.methods.size(); ++m) {
            std::size_t chunk = current_.methods[m].code.size() / 2;
            for (; chunk >= 1; chunk /= 2) {
                bool removed_any = true;
                while (removed_any && attempts_ < maxAttempts_) {
                    removed_any = false;
                    const std::size_t n =
                        current_.methods[m].code.size();
                    for (std::size_t lo = 0; lo + 1 <= n;
                         lo += chunk) {
                        const std::size_t hi =
                            std::min(lo + chunk, n);
                        if (hi <= lo)
                            break;
                        if (accept(deleteRange(current_, m, lo, hi))) {
                            progressed = true;
                            removed_any = true;
                            break;
                        }
                    }
                }
            }
        }
        return progressed;
    }

    /** 1-for-1 rewrites that keep pcs and stack depth intact. */
    bool
    neutralize()
    {
        bool progressed = false;
        for (std::size_t m = 0; m < current_.methods.size(); ++m) {
            for (std::size_t pc = 0;
                 pc < current_.methods[m].code.size(); ++pc) {
                const Instr instr = current_.methods[m].code[pc];
                Instr replacement;
                bool have = false;
                if (isUnaryCond(instr.op) ||
                    instr.op == Opcode::Tableswitch) {
                    replacement.op = Opcode::Pop;
                    have = true;
                } else if (instr.op == Opcode::Irnd) {
                    replacement.op = Opcode::Iconst;
                    have = true;
                } else if (instr.op == Opcode::Invoke) {
                    const bytecode::Method &callee =
                        current_.methods[static_cast<std::size_t>(
                            instr.a)];
                    const std::uint32_t args = callee.numArgs;
                    const bool ret = callee.returnsValue;
                    if (args == 0 && ret) {
                        replacement.op = Opcode::Iconst;
                        have = true;
                    } else if (args == 1 && !ret) {
                        replacement.op = Opcode::Pop;
                        have = true;
                    } else if (args == 1 && ret) {
                        replacement.op = Opcode::Ineg;
                        have = true;
                    } else if (args == 2 && ret) {
                        replacement.op = Opcode::Iadd;
                        have = true;
                    } else if (args == 0 && !ret &&
                               pc + 1 <
                                   current_.methods[m].code.size()) {
                        replacement.op = Opcode::Goto;
                        replacement.a =
                            static_cast<std::int32_t>(pc + 1);
                        have = true;
                    }
                }
                if (!have || replacement.op == instr.op)
                    continue;
                Program candidate = current_;
                candidate.methods[m].code[pc] = replacement;
                progressed |= accept(std::move(candidate));
            }
        }
        return progressed;
    }

    Program current_;
    const FailPredicate &fails_;
    std::size_t attempts_ = 0;
    const std::size_t maxAttempts_;
    bool changed_ = false;
};

} // namespace

ShrinkResult
shrinkProgram(const bytecode::Program &failing,
              const FailPredicate &still_fails,
              std::size_t max_attempts)
{
    return Shrinker(failing, still_fails, max_attempts).run();
}

} // namespace pep::testing
