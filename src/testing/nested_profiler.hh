#ifndef PEP_TESTING_NESTED_PROFILER_HH
#define PEP_TESTING_NESTED_PROFILER_HH

/**
 * @file
 * A full path profiler that dispatches on the *nested*
 * edgeActions[block][succ] table instead of the flattened mirror the
 * production PathEngine reads. Running it beside FullPathProfiler on
 * the same execution extends the plan checker's static check 8 (nested
 * == flat, memberwise) into an end-to-end dynamic proof: both engines
 * must produce identical path-number frequency tables for every
 * compiled version — a forgotten rebuildFlat() after a plan mutation
 * diverges them on the first profiled run.
 */

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "core/path_engine.hh"
#include "vm/hooks.hh"
#include "vm/machine.hh"

namespace pep::testing {

class NestedDispatchProfiler final : public vm::ExecutionHooks,
                                     public vm::CompileObserver
{
  public:
    NestedDispatchProfiler(vm::Machine &machine, profile::DagMode mode,
                           profile::NumberingScheme scheme,
                           profile::PlacementKind placement,
                           std::uint32_t k_iterations = 1);

    /** Per-version state plus the path-number frequencies counted. */
    struct VersionCounts
    {
        std::unique_ptr<core::MethodProfilingState> state;
        std::map<std::uint64_t, std::uint64_t> counts;
    };

    // CompileObserver
    void onCompile(bytecode::MethodId method,
                   const vm::CompiledMethod &version) override;

    // ExecutionHooks
    void onMethodEntry(const vm::FrameView &frame) override;
    void onMethodExit(const vm::FrameView &frame) override;
    void onEdge(const vm::FrameView &frame, cfg::EdgeRef edge) override;
    void onLoopHeader(const vm::FrameView &frame,
                      cfg::BlockId block) override;
    void onOsr(const vm::FrameView &frame, cfg::BlockId header) override;

    const VersionCounts *countsFor(core::VersionKey key) const;

    std::vector<std::pair<core::VersionKey, const VersionCounts *>>
    all() const;

    /** Total paths completed across all versions. */
    std::uint64_t totalCompleted() const { return completed_; }

    /** Versions whose numbering overflowed (plan disabled). */
    std::size_t overflowCount() const { return overflow_; }

  private:
    struct FrameRec
    {
        VersionCounts *vc = nullptr;
        std::uint64_t reg = 0;

        /** k-BLPP iteration window (mirrors PathEngine::FrameState). */
        std::vector<std::uint64_t> win;
    };

    VersionCounts *find(bytecode::MethodId method,
                        std::uint32_t version);
    void pathCompleted(VersionCounts &vc, std::uint64_t number);

    /** Mirror of PathEngine::segmentCompleted / flushWindow: fold the
     *  segment into the frame's window under the version's kpath. */
    void segmentCompleted(FrameRec &rec, std::uint64_t number);
    void flushWindow(FrameRec &rec);

    vm::Machine &vm_;
    const profile::DagMode mode_;
    const profile::NumberingScheme scheme_;
    const profile::PlacementKind placement_;
    const std::uint32_t kIterations_;

    std::map<core::VersionKey, VersionCounts> versions_;
    std::vector<FrameRec> stack_;
    std::uint64_t completed_ = 0;
    std::size_t overflow_ = 0;
};

} // namespace pep::testing

#endif // PEP_TESTING_NESTED_PROFILER_HH
