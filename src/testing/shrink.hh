#ifndef PEP_TESTING_SHRINK_HH
#define PEP_TESTING_SHRINK_HH

/**
 * @file
 * Test-case reduction for fuzzer findings. Given a program that makes
 * the differential checker report violations, greedily shrink it while
 * the predicate keeps failing: drop uncalled methods, stub whole
 * bodies, delta-debug instruction ranges (with pc-target remapping),
 * and neutralize single instructions (branch -> Pop, Irnd -> Iconst,
 * call -> arithmetic of the same stack shape). Every candidate is
 * re-verified before the predicate runs, so the result is always a
 * loadable program — the minimal reproducer checked into the corpus.
 */

#include <cstddef>
#include <functional>

#include "bytecode/method.hh"

namespace pep::testing {

/** Returns true if the (verified) candidate still reproduces. */
using FailPredicate = std::function<bool(const bytecode::Program &)>;

/** Outcome of a shrink run. */
struct ShrinkResult
{
    bytecode::Program program;

    /** Candidate evaluations spent (verify + predicate). */
    std::size_t attempts = 0;

    /** True if anything was removed or simplified. */
    bool changed = false;
};

/**
 * Shrink `failing` as far as the predicate allows, spending at most
 * `max_attempts` candidate evaluations. `failing` itself must already
 * fail the predicate; it is returned unchanged if nothing smaller does.
 */
ShrinkResult shrinkProgram(const bytecode::Program &failing,
                           const FailPredicate &still_fails,
                           std::size_t max_attempts = 600);

} // namespace pep::testing

#endif // PEP_TESTING_SHRINK_HH
