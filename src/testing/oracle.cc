#include "testing/oracle.hh"

#include <sstream>

#include "profile/kpath.hh"
#include "profile/numbering.hh"
#include "support/panic.hh"
#include "vm/compiled_method.hh"
#include "vm/inliner.hh"

namespace pep::testing {

EdgeSeq
encodeEdges(const std::vector<cfg::EdgeRef> &edges)
{
    EdgeSeq seq;
    seq.reserve(edges.size());
    for (const cfg::EdgeRef &edge : edges)
        seq.push_back(encodeEdge(edge));
    return seq;
}

std::string
formatEdgeSeq(const EdgeSeq &seq)
{
    std::ostringstream os;
    for (std::size_t i = 0; i < seq.size(); ++i) {
        if (i)
            os << ' ';
        os << (seq[i] >> 32) << ':'
           << (seq[i] & 0xffffffffull);
    }
    return os.str();
}

ExactOracle::ExactOracle(vm::Machine &machine, profile::DagMode mode,
                         std::uint32_t k_iterations)
    : vm_(machine), mode_(mode),
      k_(k_iterations == 0 ? 1 : k_iterations)
{
    std::vector<const bytecode::MethodCfg *> cfgs;
    cfgs.reserve(machine.numMethods());
    for (std::size_t m = 0; m < machine.numMethods(); ++m) {
        cfgs.push_back(
            &machine.info(static_cast<bytecode::MethodId>(m)).cfg);
    }
    edges_ = profile::EdgeProfileSet(cfgs);
}

void
ExactOracle::onCompile(bytecode::MethodId method,
                       const vm::CompiledMethod &version)
{
    VersionTruth &vt =
        versions_[core::VersionKey{method, version.version}];
    vt.compiled = &version;
    vt.info = version.inlinedBody ? &version.inlinedBody->info
                                  : &vm_.info(method);
    vt.originSnapshot = version.inlinedBody
                            ? version.inlinedBody->blockOrigin
                            : std::vector<vm::BlockOrigin>{};
    vt.kEff = 1;
    if (k_ > 1) {
        // Derive kEffective from the version's *structural* path count
        // (scheme-independent), not from any engine's plan: the oracle
        // must predict the engines' window length without trusting
        // their numbering machinery.
        const profile::PDag pdag =
            profile::buildPDag(vt.info->cfg, mode_);
        const profile::Numbering numbering = profile::numberPaths(
            pdag, profile::NumberingScheme::BallLarus);
        if (!numbering.overflow)
            vt.kEff = profile::kEffectiveFor(numbering.totalPaths, k_);
    }
}

VersionTruth *
ExactOracle::find(bytecode::MethodId method, std::uint32_t version)
{
    const auto it = versions_.find(core::VersionKey{method, version});
    return it == versions_.end() ? nullptr : &it->second;
}

void
ExactOracle::complete(FrameRec &frame)
{
    // The segment joins the frame's tumbling window; the window is
    // counted once it holds kEff segments (immediately for kEff == 1).
    frame.win.insert(frame.win.end(), frame.seg.begin(),
                     frame.seg.end());
    ++frame.winLen;
    frame.seg.clear();
    if (frame.winLen == frame.vt->kEff)
        commitWindow(frame);
}

void
ExactOracle::commitWindow(FrameRec &frame)
{
    if (frame.winLen == 0)
        return;
    ++frame.vt->segments[frame.win];
    ++frame.vt->completed;
    ++totalSegments_;
    frame.win.clear();
    frame.winLen = 0;
}

void
ExactOracle::onMethodEntry(const vm::FrameView &frame)
{
    FrameRec rec;
    rec.vt = find(frame.method, frame.version->version);
    stack_.push_back(std::move(rec));
    PEP_ASSERT(stack_.size() == frame.depth + 1);
}

void
ExactOracle::onMethodExit(const vm::FrameView &frame)
{
    PEP_ASSERT(stack_.size() == frame.depth + 1);
    FrameRec &rec = stack_.back();
    if (rec.vt) {
        // The return-block -> exit edge was already appended by its
        // onEdge; the segment is the full path to method exit. A
        // partial k-window is counted short (the engines flush it).
        complete(rec);
        commitWindow(rec);
    }
    stack_.pop_back();
}

void
ExactOracle::onEdge(const vm::FrameView &frame, cfg::EdgeRef edge)
{
    // Bytecode-level mirror, following the interpreter's own rule:
    // non-inlined frames record every edge against the method's CFG;
    // synthesized frames record branch edges through their block
    // origin — but through the *compile-time snapshot*, so a live map
    // mutated after the compile diverges from the interpreter's fold
    // and check 1 reports it.
    const vm::InlinedBody *inlined = frame.version->inlinedBody.get();
    if (!inlined) {
        edges_.perMethod[frame.method].addEdge(edge);
    } else {
        const auto kind = inlined->info.cfg.terminator[edge.src];
        if (kind == bytecode::TerminatorKind::Cond ||
            kind == bytecode::TerminatorKind::Switch) {
            const VersionTruth *vt =
                find(frame.method, frame.version->version);
            const vm::BlockOrigin origin =
                vt && edge.src < vt->originSnapshot.size()
                    ? vt->originSnapshot[edge.src]
                    : inlined->blockOrigin[edge.src];
            if (origin.valid()) {
                edges_.perMethod[origin.method].addEdge(
                    cfg::EdgeRef{origin.block, edge.index});
            }
        }
    }

    FrameRec &rec = stack_.back();
    if (!rec.vt)
        return;
    rec.seg.push_back(encodeEdge(edge));
    if (mode_ == profile::DagMode::BackEdgeTruncate &&
        rec.vt->info->isBackEdge[edge.src][edge.index]) {
        // Truncated paths include their ending back edge (matching
        // ReconstructedPath::cfgEdges); the next segment starts at the
        // header without it.
        complete(rec);
    }
}

void
ExactOracle::onLoopHeader(const vm::FrameView &frame, cfg::BlockId block)
{
    (void)frame;
    (void)block;
    if (mode_ != profile::DagMode::HeaderSplit)
        return;
    FrameRec &rec = stack_.back();
    if (rec.vt)
        complete(rec);
}

void
ExactOracle::onOsr(const vm::FrameView &frame, cfg::BlockId header)
{
    FrameRec &rec = stack_.back();
    if (mode_ != profile::DagMode::HeaderSplit) {
        // Mid-path frame under a new plan: mirror the engines, which
        // stop profiling the frame — but first count the partial
        // window's already-completed segments, as the engines flush
        // them before dropping the frame.
        if (rec.vt) {
            commitWindow(rec);
            ++dropped_;
            rec.vt = nullptr;
            rec.seg.clear();
        }
        return;
    }
    // Header splitting: the old version's segment just completed at
    // this header (onLoopHeader fired before the switch); rebind to the
    // new version if a fresh segment can start at the header.
    // A window cannot straddle the version switch (segment streams are
    // per version); flush the partial window against the old version
    // first, mirroring the engines.
    if (rec.vt)
        commitWindow(rec);
    VersionTruth *vt = find(frame.method, frame.version->version);
    if (!vt || !vt->info->cfg.isLoopHeader[header]) {
        if (rec.vt)
            ++dropped_;
        rec.vt = nullptr;
        rec.seg.clear();
        return;
    }
    if (!rec.vt) {
        // A baseline (unprofiled) frame promoted into instrumented
        // code: its first walk starts here with no walk ending here.
        ++adopted_;
    }
    rec.vt = vt;
    rec.seg.clear();
}

const VersionTruth *
ExactOracle::truthFor(core::VersionKey key) const
{
    const auto it = versions_.find(key);
    return it == versions_.end() ? nullptr : &it->second;
}

std::vector<std::pair<core::VersionKey, const VersionTruth *>>
ExactOracle::all() const
{
    std::vector<std::pair<core::VersionKey, const VersionTruth *>>
        result;
    result.reserve(versions_.size());
    for (const auto &[key, vt] : versions_)
        result.emplace_back(key, &vt);
    return result;
}

} // namespace pep::testing
