#include "testing/differ.hh"

#include <map>
#include <memory>
#include <set>
#include <sstream>

#include "analysis/diagnostics.hh"
#include "analysis/plan_check.hh"
#include "analysis/verify/invariants.hh"
#include "analysis/verify/realizability.hh"
#include "analysis/verify/verify.hh"
#include "bytecode/disassembler.hh"
#include "core/baseline_profilers.hh"
#include "core/pep_profiler.hh"
#include "core/sampling.hh"
#include "opt/pipeline.hh"
#include "opt/profile_consumer.hh"
#include "profile/kpath.hh"
#include "runtime/coop_scheduler.hh"
#include "runtime/request_stream.hh"
#include "runtime/throughput.hh"
#include "support/panic.hh"
#include "testing/nested_profiler.hh"
#include "testing/oracle.hh"
#include "vm/inliner.hh"
#include "vm/machine.hh"

namespace pep::testing {

namespace {

/** Cap recorded violations so a badly broken run stays readable. */
constexpr std::size_t kMaxViolations = 20;

void
addViolation(DiffReport &report, const std::string &text)
{
    if (report.violations.size() < kMaxViolations) {
        report.violations.push_back(text);
    } else if (report.violations.size() == kMaxViolations) {
        report.violations.push_back("... further violations suppressed");
    }
}

std::string
keyName(core::VersionKey key)
{
    std::ostringstream os;
    os << "method " << key.first << " v" << key.second;
    return os.str();
}

/** Apply the configured fault to every not-yet-injected enabled plan
 *  of the full profiler. Idempotent per version. */
void
applyInjection(vm::Machine &machine, core::FullPathProfiler &full,
               const DiffOptions &opts,
               std::set<core::VersionKey> &done)
{
    for (auto &[key, vp] : full.versionProfiles()) {
        if (!vp->state || !vp->state->plan.enabled)
            continue;
        if (!done.insert(key).second)
            continue;
        core::MethodProfilingState &st = *vp->state;
        switch (opts.inject) {
          case InjectKind::None:
            break;
          case InjectKind::StaleFlatAfterSpanning: {
            if (opts.placement != profile::PlacementKind::SpanningTree)
                break;
            // Rebuild the plan the direct pass produced and keep *its*
            // flat mirror, exactly what execution would read if
            // applySpanningPlacement forgot rebuildFlat().
            const vm::InlinedBody *inlined =
                st.compiled ? st.compiled->inlinedBody.get() : nullptr;
            const bytecode::MethodCfg &version_cfg =
                inlined ? inlined->info.cfg
                        : machine.info(key.first).cfg;
            profile::InstrumentationPlan direct =
                profile::buildInstrumentationPlan(version_cfg, st.pdag,
                                                  st.numbering);
            st.plan.flatEdgeActions =
                std::move(direct.flatEdgeActions);
            break;
          }
          case InjectKind::CorruptFlatIncrement: {
            for (profile::EdgeAction &action :
                 st.plan.flatEdgeActions) {
                if (action.increment != 0 && !action.endsPath) {
                    ++action.increment;
                    break;
                }
            }
            break;
          }
          case InjectKind::StaleTemplate:
            // Applied inside the engine cross-check (check 7), where
            // two machines exist to diverge; the main run's profilers
            // all observe one consistent event stream and stay clean.
            break;
          case InjectKind::ImpossibleProfile:
          case InjectKind::SkippedInvalidate:
            // Applied after the final iteration (see runDiff): these
            // model corruption that happens when nothing further
            // executes, which is exactly what the static verify
            // passes exist to catch.
            break;
          case InjectKind::RingLostSample:
            // Threaded differ only: applied inside runThreadedDiff's
            // ring-transport check, never to single-machine plans.
            break;
          case InjectKind::TruncatedWindow:
            // Applied in runDiff via setTruncateWindowInjection: the
            // fault lives in the engine's window flush, not in any
            // per-version plan.
            break;
          case InjectKind::BadCloneFold:
            // Applied in runDiff via corruptCloneFold: the fault lives
            // in an installed version's BlockOrigin map, not in any
            // profiler's plan.
            break;
          case InjectKind::StaleFusion:
            // Applied like stale-template (mid-run on the engine
            // cross-check machines) plus post-run on the main machine
            // (see runDiff), so both check 7 and the static
            // cached-stream audit reject the skipped retranslation.
            break;
        }
    }
}

/**
 * The stale-template fault: flip the branch layout of every installed
 * version in place and deliberately skip Machine::invalidateDecoded().
 * The switch engine reads branchLayout live and sees the flip at the
 * next branch; the threaded engine keeps dispatching templates with
 * the old layout baked in, so miss counts — and therefore cycles —
 * diverge. The correct protocol (flip + invalidate, byte-identical
 * again) is unit-tested in tests/vm/engine_test.cc.
 */
void
flipInstalledLayouts(vm::Machine &machine,
                     std::set<core::VersionKey> &done)
{
    for (std::size_t m = 0; m < machine.numMethods(); ++m) {
        const bytecode::MethodId method =
            static_cast<bytecode::MethodId>(m);
        const vm::CompiledMethod *current =
            machine.currentVersion(method);
        if (!current)
            continue;
        if (!done.insert({method, current->version}).second)
            continue;
        vm::CompiledMethod *cm =
            machine.versionForUpdate(method, current->version);
        for (std::int16_t &layout : cm->branchLayout)
            layout = layout == 1 ? 0 : 1;
    }
}

/**
 * The bad-clone-fold fault: invalidate the BlockOrigin of one
 * clone-region branch block of the first clone-applied version, as if
 * the cloning pass lost track of where a duplicated branch's counters
 * belong. The escape is discharged with invalidateDecoded so the
 * mutation journal and template audits stay clean — only the fold
 * checks (check 1 while the version keeps executing, check 9 always,
 * and the static check-11 origin audit) may catch it. Returns false
 * when no cloned version exists yet.
 */
bool
corruptCloneFold(vm::Machine &machine)
{
    for (std::size_t m = 0; m < machine.numMethods(); ++m) {
        const bytecode::MethodId method =
            static_cast<bytecode::MethodId>(m);
        const std::size_t original_size =
            machine.program().methods[m].code.size();
        for (std::uint32_t v = 0; v < machine.numVersions(method); ++v) {
            const vm::CompiledMethod *cm = machine.versionAt(method, v);
            if (!cm->cloneApplied || !cm->inlinedBody)
                continue;
            const bytecode::MethodCfg &cfg = cm->inlinedBody->info.cfg;
            for (cfg::BlockId b = 0; b < cfg.graph.numBlocks(); ++b) {
                if (!cfg.isCodeBlock(b) ||
                    cfg.firstPc[b] < original_size)
                    continue;
                const auto kind = cfg.terminator[b];
                if (kind != bytecode::TerminatorKind::Cond &&
                    kind != bytecode::TerminatorKind::Switch)
                    continue;
                if (!cm->inlinedBody->blockOrigin[b].valid())
                    continue;
                vm::CompiledMethod *mut =
                    machine.versionForUpdate(method, v);
                mut->inlinedBody->blockOrigin[b] = vm::BlockOrigin{};
                machine.invalidateDecoded(method, v);
                return true;
            }
        }
    }
    return false;
}

/** Branch counts of one original CFG, keyed by (block, successor
 *  index) — the coordinate space both clone folds land in. */
using FoldedBranchCounts =
    std::map<std::pair<cfg::BlockId, std::uint32_t>, std::uint64_t>;

/**
 * Fold a cloned version's segment counts onto its root method's CFG:
 * every Cond/Switch edge of the synthesized CFG contributes its count
 * to the origin block's same-index edge, exactly the interpreter's
 * ground-truth convention for synthesized frames. Edges whose origin
 * is invalid or foreign fold nowhere — which is precisely what
 * check 9's count-for-count comparison exposes.
 */
FoldedBranchCounts
foldBranchCounts(const SegmentCounts &segments,
                 const bytecode::MethodCfg &version_cfg,
                 const std::vector<vm::BlockOrigin> &origin,
                 bytecode::MethodId root)
{
    FoldedBranchCounts folded;
    for (const auto &[seq, count] : segments) {
        for (const std::uint64_t encoded : seq) {
            const cfg::BlockId src =
                static_cast<cfg::BlockId>(encoded >> 32);
            const auto index =
                static_cast<std::uint32_t>(encoded & 0xffffffffull);
            if (src >= version_cfg.graph.numBlocks())
                continue;
            const auto kind = version_cfg.terminator[src];
            if (kind != bytecode::TerminatorKind::Cond &&
                kind != bytecode::TerminatorKind::Switch)
                continue;
            if (src >= origin.size())
                continue;
            const vm::BlockOrigin &o = origin[src];
            if (!o.valid() || o.method != root)
                continue;
            folded[{o.block, index}] += count;
        }
    }
    return folded;
}

/**
 * The impossible-profile fault: bump one count of a PEP profiler's
 * recorded continuous edge profile. The extra crossing appears out of
 * nowhere — inflow and outflow no longer balance at the edge's source
 * block — so no execution could have recorded the resulting profile.
 * Both the dynamic conservation check (check 5) and the static
 * realizability pass must reject it.
 */
void
corruptPepEdgeProfile(const vm::Machine &machine,
                      core::PepProfiler &pep)
{
    profile::EdgeProfileSet &edges = pep.edgeProfileForInjection();
    for (std::size_t m = 0; m < edges.perMethod.size(); ++m) {
        const bytecode::MethodCfg &cfg =
            machine.info(static_cast<bytecode::MethodId>(m)).cfg;
        for (cfg::BlockId b = 0; b < cfg.graph.numBlocks(); ++b) {
            if (!cfg.isCodeBlock(b) || cfg.isLoopHeader[b])
                continue;
            if (cfg.graph.succs(b).empty())
                continue;
            edges.perMethod[m].addEdge({b, 0}, 1);
            return;
        }
    }
}

/** Compare two per-method count tables (parallel to successor lists). */
void
checkEdgeTablesEqual(const profile::EdgeProfileSet &got,
                     const profile::EdgeProfileSet &want,
                     const std::string &what, DiffReport &report)
{
    for (std::size_t m = 0; m < want.perMethod.size(); ++m) {
        if (got.perMethod[m].counts() != want.perMethod[m].counts()) {
            std::ostringstream os;
            os << what << ": method " << m
               << " edge counts diverge from ground truth";
            addViolation(report, os.str());
        }
    }
}

/** got[e] <= bound[e] for every edge. */
void
checkEdgeTablesBounded(const profile::EdgeProfileSet &got,
                       const profile::EdgeProfileSet &bound,
                       const std::string &what, DiffReport &report)
{
    for (std::size_t m = 0; m < bound.perMethod.size(); ++m) {
        const auto &g = got.perMethod[m].counts();
        const auto &b = bound.perMethod[m].counts();
        for (std::size_t block = 0; block < b.size(); ++block) {
            for (std::size_t i = 0; i < b[block].size(); ++i) {
                if (g[block][i] > b[block][i]) {
                    std::ostringstream os;
                    os << what << ": method " << m << " edge " << block
                       << ':' << i << " count " << g[block][i]
                       << " exceeds ground truth " << b[block][i];
                    addViolation(report, os.str());
                }
            }
        }
    }
}

/**
 * Flow conservation: profiled walks are contiguous edge sequences whose
 * boundaries lie at loop headers, method entry and method exit, so at
 * every other code block inflow must equal outflow. When no frame was
 * dropped mid-path, every walk ending at a header is paired with one
 * starting there, and headers conserve too.
 */
void
checkConservation(const profile::EdgeProfileSet &edges,
                  const vm::Machine &machine, bool include_headers,
                  const std::string &what, DiffReport &report)
{
    for (std::size_t m = 0; m < edges.perMethod.size(); ++m) {
        const bytecode::MethodCfg &cfg =
            machine.info(static_cast<bytecode::MethodId>(m)).cfg;
        const auto &counts = edges.perMethod[m].counts();
        std::vector<std::uint64_t> in(cfg.graph.numBlocks(), 0);
        std::vector<std::uint64_t> out(cfg.graph.numBlocks(), 0);
        for (cfg::BlockId src = 0; src < cfg.graph.numBlocks(); ++src) {
            const auto &succs = cfg.graph.succs(src);
            for (std::size_t i = 0; i < succs.size(); ++i) {
                out[src] += counts[src][i];
                in[succs[i]] += counts[src][i];
            }
        }
        for (cfg::BlockId b = 0; b < cfg.graph.numBlocks(); ++b) {
            if (!cfg.isCodeBlock(b))
                continue;
            if (cfg.isLoopHeader[b] && !include_headers)
                continue;
            if (in[b] != out[b]) {
                std::ostringstream os;
                os << what << ": method " << m << " block " << b
                   << " violates flow conservation (in " << in[b]
                   << ", out " << out[b] << ')';
                addViolation(report, os.str());
            }
        }
    }
}

/**
 * Map an engine's number->count table for one version to exact segment
 * counts via its reconstructor. Out-of-range numbers and reconstruction
 * panics are violations (a corrupt register produces them). Composite
 * k-path ids expand to the concatenated CFG-edge sequence of their
 * window, which is exactly the oracle's key for that window; when
 * kEffective is 1, maxId() equals totalPaths and this degenerates to
 * the classic single-segment mapping.
 */
SegmentCounts
segmentsFromProfile(const core::MethodProfilingState &state,
                    const profile::MethodPathProfile &paths,
                    const std::string &what, DiffReport &report)
{
    SegmentCounts result;
    for (const auto &[number, record] : paths.paths()) {
        if (number >= state.kpath.maxId()) {
            std::ostringstream os;
            os << what << ": " << keyName({state.method, state.version})
               << " recorded path number " << number
               << " >= id space " << state.kpath.maxId()
               << " (totalPaths " << state.plan.totalPaths
               << ", kEffective " << state.kpath.kEffective() << ')';
            addViolation(report, os.str());
            continue;
        }
        try {
            const profile::ReconstructedPath path =
                profile::reconstructKPath(state.kpath,
                                          *state.reconstructor, number);
            result[encodeEdges(path.cfgEdges)] += record.count;
        } catch (const support::PanicError &e) {
            std::ostringstream os;
            os << what << ": " << keyName({state.method, state.version})
               << " path " << number
               << " failed reconstruction: " << e.what();
            addViolation(report, os.str());
        }
    }
    return result;
}

/** Dump one edge-profile set as whitespace-separated counts. */
void
dumpEdgeSet(std::ostringstream &os, const profile::EdgeProfileSet &set,
            const char *tag)
{
    os << tag << '\n';
    for (std::size_t m = 0; m < set.perMethod.size(); ++m) {
        for (const auto &per_block : set.perMethod[m].counts()) {
            for (std::uint64_t count : per_block)
                os << count << ' ';
        }
        os << '\n';
    }
}

/**
 * Serialize everything observable about one engine's run — simulated
 * clock, machine stats, ground truth, one-time profile, full BLPP path
 * tables, PEP path tables and sampling stats. Byte-equality of two
 * such strings is the docs/ENGINE.md determinism contract; the
 * engine-specific methodsDecoded/templateInvalidations counters are
 * deliberately excluded (they differ by design).
 */
std::string
serializeEngineRun(const vm::Machine &machine, const ExactOracle &oracle,
                   const core::FullPathProfiler &full,
                   const core::PepProfiler &pep)
{
    std::ostringstream os;
    dumpEdgeSet(os, machine.truthEdges(), "truth");
    dumpEdgeSet(os, machine.oneTimeEdges(), "one-time");
    dumpEdgeSet(os, pep.edgeProfile(), "pep-edges");

    const auto dump_paths = [&os](const auto &profiles,
                                  const char *tag) {
        os << tag << '\n';
        for (const auto &[key, vp] : profiles) {
            os << key.first << " v" << key.second << ':';
            std::map<std::uint64_t, std::uint64_t> ordered;
            for (const auto &[number, record] : vp->paths.paths())
                ordered[number] = record.count;
            for (const auto &[number, count] : ordered)
                os << ' ' << number << '=' << count;
            os << '\n';
        }
    };
    dump_paths(full.versionProfiles(), "full-paths");
    dump_paths(pep.versionProfiles(), "pep-paths");

    const vm::MachineStats &stats = machine.stats();
    const core::PepStats &pep_stats = pep.pepStats();
    os << "oracle " << oracle.totalSegments() << '\n'
       << "stats " << stats.instructionsExecuted << ' '
       << stats.methodInvocations << ' ' << stats.yieldpointsExecuted
       << ' ' << stats.timerTicks << ' ' << stats.compileCycles << ' '
       << stats.compiles << ' ' << stats.osrs << ' '
       << stats.layoutMisses << ' ' << stats.branchesExecuted << '\n'
       << "pep-stats " << pep_stats.pathsCompleted << ' '
       << pep_stats.samplesTaken << ' ' << pep_stats.samplesRecorded
       << '\n'
       << "clock " << machine.now() << '\n';
    return os.str();
}

/** One engine's complete outcome: the serialized observables, or the
 *  panic/fatal that killed the run. */
struct EngineRun
{
    std::string blob;
    std::string death;
};

/** Run the program on a fresh machine pinned to `kind`, with the same
 *  hook set either engine run gets. */
EngineRun
runEngineOnce(const bytecode::Program &program, const DiffOptions &opts,
              vm::EngineKind kind)
{
    EngineRun result;

    vm::SimParams params;
    params.engine = kind;
    params.tickCycles = opts.tickCycles;
    params.enableOsr = opts.enableOsr;
    params.yieldpointsOnBackEdges = opts.yieldpointsOnBackEdges;
    params.enableInlining = opts.enableInlining;
    params.maxCyclesPerIteration = opts.maxCyclesPerIteration;
    params.fuse = opts.fuse;
    vm::Machine machine(program, params);

    ExactOracle oracle(machine, opts.mode, opts.kIterations);
    core::FullPathProfiler full(machine, opts.mode,
                                /*charge_costs=*/false, opts.scheme,
                                core::PathStoreKind::Array,
                                opts.placement, opts.kIterations);
    const PepConfig pep_config =
        opts.pepConfigs.empty() ? PepConfig{} : opts.pepConfigs.front();
    core::SimplifiedArnoldGrove controller(pep_config.samples,
                                           pep_config.stride);
    core::PepOptions pep_options;
    pep_options.scheme = opts.scheme;
    pep_options.mode = opts.mode;
    pep_options.placement = opts.placement;
    pep_options.kIterations = opts.kIterations;
    core::PepProfiler pep(machine, controller, pep_options);

    machine.addHooks(&oracle);
    machine.addCompileObserver(&oracle);
    machine.addHooks(&full);
    machine.addCompileObserver(&full);
    machine.addHooks(&pep);
    machine.addCompileObserver(&pep);

    // Both engine machines install the identical reoptimization
    // pipeline, fed by their own (deterministically identical) PEP
    // profiler — layout and cloning decisions replay byte-for-byte,
    // keeping the check-7 contract meaningful for optimized runs.
    opt::PepConsumer consumer(pep);
    opt::PipelineOptions pipeline_options;
    pipeline_options.layout = opts.optLayout;
    pipeline_options.clone = opts.optClone;
    opt::OptPipeline pipeline(consumer, pipeline_options);
    if (opts.optLayout || opts.optClone)
        machine.addCompilePass(&pipeline);

    std::set<core::VersionKey> flipped;
    try {
        for (std::uint32_t it = 0; it < opts.iterations; ++it) {
            machine.runIteration();
            if ((opts.inject == InjectKind::StaleTemplate ||
                 opts.inject == InjectKind::SkippedInvalidate ||
                 opts.inject == InjectKind::StaleFusion) &&
                it + 1 < opts.iterations) {
                flipInstalledLayouts(machine, flipped);
            }
        }
    } catch (const support::PanicError &e) {
        result.death = std::string("panic: ") + e.what();
        return result;
    } catch (const support::FatalError &e) {
        result.death = std::string("fatal: ") + e.what();
        return result;
    }
    result.blob = serializeEngineRun(machine, oracle, full, pep);
    return result;
}

/** First line two serialized runs disagree on, truncated for the
 *  violation message. */
std::string
firstBlobDiff(const std::string &a, const std::string &b)
{
    std::istringstream as(a);
    std::istringstream bs(b);
    std::string la;
    std::string lb;
    const auto trim = [](const std::string &line) {
        return line.size() > 48 ? line.substr(0, 48) + "..." : line;
    };
    while (true) {
        const bool more_a = static_cast<bool>(std::getline(as, la));
        const bool more_b = static_cast<bool>(std::getline(bs, lb));
        if (!more_a && !more_b)
            return "<identical>";
        if (la != lb || more_a != more_b) {
            return "switch [" + trim(more_a ? la : "<eof>") +
                   "] vs threaded [" + trim(more_b ? lb : "<eof>") +
                   ']';
        }
    }
}

/**
 * Check 7: run the program once per execution engine on otherwise-
 * identical machines and byte-compare every observable. A run that
 * dies (e.g. the runaway-cycle guard) must die identically on both
 * engines; the stale-template injection makes the flip visible to
 * switch dispatch only, so this check must report a divergence.
 */
void
runEngineCrossCheck(const bytecode::Program &program,
                    const DiffOptions &opts, DiffReport &report)
{
    const EngineRun sw =
        runEngineOnce(program, opts, vm::EngineKind::Switch);
    const EngineRun th =
        runEngineOnce(program, opts, vm::EngineKind::Threaded);
    if (sw.death != th.death) {
        addViolation(report,
                     "engines: switch run [" +
                         (sw.death.empty() ? "clean" : sw.death) +
                         "] but threaded run [" +
                         (th.death.empty() ? "clean" : th.death) + ']');
    } else if (!sw.death.empty()) {
        report.notes.push_back(
            "engines: both engine runs died identically (" + sw.death +
            "); byte comparison skipped");
    } else if (sw.blob != th.blob) {
        addViolation(report,
                     "engines: switch and threaded observables "
                     "diverge: " +
                         firstBlobDiff(sw.blob, th.blob));
    }
}

/** Memberwise dump of everything an instrumentation plan carries, for
 *  byte-comparing independently built plans. */
std::string
serializePlan(const profile::InstrumentationPlan &plan)
{
    std::ostringstream os;
    const auto dump_action = [&os](const profile::EdgeAction &a) {
        os << a.increment << ',' << a.endsPath << ',' << a.endAdd << ','
           << a.restart << ' ';
    };
    os << static_cast<int>(plan.mode) << ' ' << plan.enabled << ' '
       << plan.totalPaths << ' ' << plan.numInstrumentedEdges << '\n';
    for (const auto &per_block : plan.edgeActions) {
        for (const profile::EdgeAction &a : per_block)
            dump_action(a);
        os << '\n';
    }
    for (const profile::HeaderAction &h : plan.headerActions)
        os << h.endsPath << ',' << h.endAdd << ',' << h.restart << ' ';
    os << '\n';
    for (const profile::EdgeAction &a : plan.flatEdgeActions)
        dump_action(a);
    os << '\n';
    for (const std::uint32_t base : plan.edgeBase)
        os << base << ' ';
    os << '\n';
    return os.str();
}

/**
 * Check 8 (k-BLPP degeneracy, docs/KBLPP.md): instrumentation plans
 * are a pure function of the CFG, mode, scheme and placement — never
 * of k. Rebuild every method's profiling state from pristine inputs at
 * k = 1 and k = kIterations and byte-compare the serialized plans
 * (flat mirrors included), then prove the k = 1 id space *is* the raw
 * Ball-Larus range [0, totalPaths).
 */
void
checkKDegeneracy(const vm::Machine &machine, const DiffOptions &opts,
                 DiffReport &report)
{
    for (std::size_t m = 0; m < machine.numMethods(); ++m) {
        const bytecode::MethodId method =
            static_cast<bytecode::MethodId>(m);
        const bytecode::MethodCfg &cfg = machine.info(method).cfg;
        const auto legacy = core::buildProfilingState(
            cfg, method, 0, opts.mode, opts.scheme, nullptr,
            opts.placement, 1);
        const auto kstate = core::buildProfilingState(
            cfg, method, 0, opts.mode, opts.scheme, nullptr,
            opts.placement, opts.kIterations);
        if (serializePlan(legacy->plan) !=
            serializePlan(kstate->plan)) {
            addViolation(report,
                         "k-degeneracy: method " + std::to_string(m) +
                             " plan built at k=" +
                             std::to_string(opts.kIterations) +
                             " differs from the k=1 plan");
        }
        if (legacy->plan.enabled &&
            legacy->kpath.maxId() != legacy->plan.totalPaths) {
            std::ostringstream os;
            os << "k-degeneracy: method " << m << " k=1 id space "
               << legacy->kpath.maxId() << " != totalPaths "
               << legacy->plan.totalPaths;
            addViolation(report, os.str());
        }
    }
}

/**
 * The static mirror of the dynamic oracles: run the verify passes
 * (docs/ANALYSIS.md) over the machine's installed versions, both
 * profilers' plans, and every recorded profile, turning error
 * diagnostics into violations. Running this inside every fuzz
 * iteration continuously proves the static layer agrees with the
 * dynamic checks — no false alarms on clean runs, and the
 * impossible-profile / skipped-invalidate injections are rejected
 * without executing another instruction.
 */
void
runStaticVerifyPasses(
    const vm::Machine &machine, core::FullPathProfiler &full,
    const std::vector<std::unique_ptr<core::PepProfiler>> &peps,
    const DiffOptions &opts, bool bytecode_level_truth,
    DiffReport &report)
{
    analysis::DiagnosticList diags;
    analysis::verifyMachine(machine, diags);

    const auto audit_engine = [&](core::PathEngine &engine,
                                  const std::string &what,
                                  std::uint64_t max_total) {
        analysis::RealizabilityOptions ropts;
        ropts.what = what;
        ropts.walkMultiplicity = opts.kIterations;
        for (auto &[key, vp] : engine.versionProfiles()) {
            if (!vp->state)
                continue;
            const std::string &name =
                machine.program().methods[key.first].name;
            analysis::auditPlanMirror(vp->state->plan, name,
                                      /*has_version=*/true, key.second,
                                      diags);
            analysis::KPathCheckInput kinput;
            kinput.plan = &vp->state->plan;
            kinput.kpath = &vp->state->kpath;
            kinput.kRequested = engine.kIterations();
            kinput.methodName = name;
            analysis::checkKPathScheme(kinput, diags);
            analysis::checkPathProfileRealizability(
                vp->state->plan, *vp->state->reconstructor, vp->paths,
                ropts, max_total, name, /*has_version=*/true,
                key.second, diags, &vp->state->kpath);
        }
    };
    audit_engine(full, "full-path profile", full.pathsStored());
    for (std::size_t p = 0; p < peps.size(); ++p) {
        std::ostringstream tag;
        tag << "pep(" << opts.pepConfigs[p].samples << ','
            << opts.pepConfigs[p].stride << ')';
        audit_engine(*peps[p], tag.str() + " paths",
                     peps[p]->pepStats().samplesRecorded);
        // The continuous edge profile's conservation/bounds only
        // apply at bytecode level when no synthesized (inlined or
        // cloned) CFG is folded in, mirroring the dynamic check-5
        // gate.
        if (bytecode_level_truth) {
            analysis::RealizabilityOptions ropts;
            ropts.what = tag.str() + " edges";
            ropts.maxWalks = peps[p]->pepStats().samplesRecorded;
            ropts.walkMultiplicity = opts.kIterations;
            analysis::checkEdgeSetRealizability(
                machine, peps[p]->edgeProfile(), ropts, diags);
        }
    }

    std::vector<analysis::Diagnostic> sorted = diags.all();
    analysis::sortDiagnostics(sorted);
    for (const analysis::Diagnostic &d : sorted) {
        if (d.severity == analysis::Severity::Error) {
            addViolation(report,
                         "verify: " + analysis::formatDiagnostic(d));
        }
    }
}

} // namespace

std::string
injectKindName(InjectKind kind)
{
    switch (kind) {
      case InjectKind::None:
        return "none";
      case InjectKind::StaleFlatAfterSpanning:
        return "stale-flat";
      case InjectKind::CorruptFlatIncrement:
        return "corrupt-increment";
      case InjectKind::StaleTemplate:
        return "stale-template";
      case InjectKind::ImpossibleProfile:
        return "impossible-profile";
      case InjectKind::SkippedInvalidate:
        return "skipped-invalidate";
      case InjectKind::RingLostSample:
        return "ring-lost-sample";
      case InjectKind::TruncatedWindow:
        return "truncated-window";
      case InjectKind::BadCloneFold:
        return "bad-clone-fold";
      case InjectKind::StaleFusion:
        return "stale-fusion";
    }
    return "none";
}

bool
parseInjectKind(const std::string &name, InjectKind &out)
{
    if (name == "none") {
        out = InjectKind::None;
    } else if (name == "stale-flat") {
        out = InjectKind::StaleFlatAfterSpanning;
    } else if (name == "corrupt-increment") {
        out = InjectKind::CorruptFlatIncrement;
    } else if (name == "stale-template") {
        out = InjectKind::StaleTemplate;
    } else if (name == "impossible-profile") {
        out = InjectKind::ImpossibleProfile;
    } else if (name == "skipped-invalidate") {
        out = InjectKind::SkippedInvalidate;
    } else if (name == "ring-lost-sample") {
        out = InjectKind::RingLostSample;
    } else if (name == "truncated-window") {
        out = InjectKind::TruncatedWindow;
    } else if (name == "bad-clone-fold") {
        out = InjectKind::BadCloneFold;
    } else if (name == "stale-fusion") {
        out = InjectKind::StaleFusion;
    } else {
        return false;
    }
    return true;
}

const std::vector<DiffOptions> &
standardConfigs()
{
    static const std::vector<DiffOptions> configs = [] {
        std::vector<DiffOptions> v;

        DiffOptions base;
        base.name = "headersplit-direct";
        v.push_back(base);

        DiffOptions spanning;
        spanning.name = "smart-spanning-osr";
        spanning.scheme = profile::NumberingScheme::Smart;
        spanning.placement = profile::PlacementKind::SpanningTree;
        spanning.enableOsr = true;
        v.push_back(spanning);

        DiffOptions backedge;
        backedge.name = "backedge";
        backedge.mode = profile::DagMode::BackEdgeTruncate;
        backedge.yieldpointsOnBackEdges = true;
        v.push_back(backedge);

        DiffOptions inlined;
        inlined.name = "inline-smart";
        inlined.scheme = profile::NumberingScheme::Smart;
        inlined.enableInlining = true;
        v.push_back(inlined);

        // k-BLPP legs (docs/KBLPP.md): the same oracle-exact checks
        // over multi-iteration window ids, crossed with the features
        // that interrupt windows mid-frame (OSR) and change the CFGs
        // they form over (inlining).
        DiffOptions kiter2;
        kiter2.name = "kiter2-smart-osr";
        kiter2.kIterations = 2;
        kiter2.scheme = profile::NumberingScheme::Smart;
        kiter2.enableOsr = true;
        v.push_back(kiter2);

        DiffOptions kiter4;
        kiter4.name = "kiter4-backedge";
        kiter4.kIterations = 4;
        kiter4.mode = profile::DagMode::BackEdgeTruncate;
        kiter4.yieldpointsOnBackEdges = true;
        v.push_back(kiter4);

        DiffOptions kiter4_inline;
        kiter4_inline.name = "kiter4-inline";
        kiter4_inline.kIterations = 4;
        kiter4_inline.scheme = profile::NumberingScheme::Smart;
        kiter4_inline.enableInlining = true;
        v.push_back(kiter4_inline);

        // The optimizer leg (PEP_OPT, .github/workflows/ci.yml): when
        // the environment selects passes, every config above runs with
        // the reoptimization pipeline installed — the whole oracle
        // matrix must stay clean while layouts and clones land.
        if (const std::optional<opt::PipelineOptions> env =
                opt::pipelineOptionsFromEnv()) {
            for (DiffOptions &config : v) {
                config.optLayout = env->layout;
                config.optClone = env->clone;
            }
        }

        // Always-on clone configs, environment or not: check 9 and
        // the bad-clone-fold corpus reproducers need a config that
        // clones in the default sweep, and the k-iteration variant
        // proves composite-id profiles fold just as exactly.
        DiffOptions clone_smart;
        clone_smart.name = "clone-smart";
        clone_smart.scheme = profile::NumberingScheme::Smart;
        clone_smart.optLayout = true;
        clone_smart.optClone = true;
        v.push_back(clone_smart);

        DiffOptions clone_kiter2;
        clone_kiter2.name = "clone-kiter2";
        clone_kiter2.kIterations = 2;
        clone_kiter2.scheme = profile::NumberingScheme::Smart;
        clone_kiter2.optLayout = true;
        clone_kiter2.optClone = true;
        v.push_back(clone_kiter2);

        // Fusion legs (docs/ENGINE.md): superinstruction pairs alone,
        // then pairs + straightened traces with the layout pass
        // installed (so retranslation re-specializes real chains) and
        // a k-iteration window — the whole oracle matrix plus check 7
        // must stay clean while the threaded engine executes fused and
        // batch-charged streams.
        DiffOptions fuse_pairs;
        fuse_pairs.name = "fuse-pairs";
        fuse_pairs.fuse = {true, false};
        v.push_back(fuse_pairs);

        DiffOptions fuse_traces;
        fuse_traces.name = "fuse-traces-kiter2";
        fuse_traces.fuse = {true, true};
        fuse_traces.kIterations = 2;
        fuse_traces.scheme = profile::NumberingScheme::Smart;
        fuse_traces.optLayout = true;
        v.push_back(fuse_traces);

        return v;
    }();
    return configs;
}

const DiffOptions *
findConfig(const std::string &name)
{
    for (const DiffOptions &config : standardConfigs()) {
        if (config.name == name)
            return &config;
    }
    return nullptr;
}

DiffReport
runDiff(const bytecode::Program &program, const DiffOptions &opts)
{
    DiffReport report;

    vm::SimParams params;
    params.tickCycles = opts.tickCycles;
    params.enableOsr = opts.enableOsr;
    params.yieldpointsOnBackEdges = opts.yieldpointsOnBackEdges;
    params.enableInlining = opts.enableInlining;
    params.maxCyclesPerIteration = opts.maxCyclesPerIteration;
    params.fuse = opts.fuse;
    vm::Machine machine(program, params);

    ExactOracle oracle(machine, opts.mode, opts.kIterations);
    core::FullPathProfiler full(machine, opts.mode,
                                /*charge_costs=*/false, opts.scheme,
                                core::PathStoreKind::Array,
                                opts.placement, opts.kIterations);
    NestedDispatchProfiler nested(machine, opts.mode, opts.scheme,
                                  opts.placement, opts.kIterations);

    std::vector<std::unique_ptr<core::SimplifiedArnoldGrove>>
        controllers;
    std::vector<std::unique_ptr<core::PepProfiler>> peps;
    for (const PepConfig &pc : opts.pepConfigs) {
        controllers.push_back(
            std::make_unique<core::SimplifiedArnoldGrove>(pc.samples,
                                                          pc.stride));
        core::PepOptions pep_options;
        pep_options.scheme = opts.scheme;
        pep_options.mode = opts.mode;
        pep_options.placement = opts.placement;
        pep_options.kIterations = opts.kIterations;
        peps.push_back(std::make_unique<core::PepProfiler>(
            machine, *controllers.back(), pep_options));
    }

    machine.addHooks(&oracle);
    machine.addCompileObserver(&oracle);
    machine.addHooks(&full);
    machine.addCompileObserver(&full);
    machine.addHooks(&nested);
    machine.addCompileObserver(&nested);
    for (auto &pep : peps) {
        machine.addHooks(pep.get());
        machine.addCompileObserver(pep.get());
    }

    // The profile-guided reoptimization pipeline (src/opt/), fed by
    // the first PEP configuration's live profile. Installed before the
    // first iteration so tier-up recompiles run through it.
    std::unique_ptr<opt::PepConsumer> consumer;
    std::unique_ptr<opt::OptPipeline> pipeline;
    if ((opts.optLayout || opts.optClone) && !peps.empty()) {
        consumer = std::make_unique<opt::PepConsumer>(*peps.front());
        opt::PipelineOptions pipeline_options;
        pipeline_options.layout = opts.optLayout;
        pipeline_options.clone = opts.optClone;
        pipeline =
            std::make_unique<opt::OptPipeline>(*consumer,
                                               pipeline_options);
        machine.addCompilePass(pipeline.get());
    }

    std::set<core::VersionKey> injected;
    bool clone_fold_injected = false;
    for (std::uint32_t it = 0; it < opts.iterations; ++it) {
        machine.runIteration();
        // Inject after a warm-up iteration so corrupted plans actually
        // execute in the following ones.
        if (opts.inject != InjectKind::None && it + 1 < opts.iterations)
            applyInjection(machine, full, opts, injected);
        if (opts.inject == InjectKind::TruncatedWindow &&
            it + 1 < opts.iterations) {
            full.setTruncateWindowInjection(true);
        }
        if (opts.inject == InjectKind::BadCloneFold &&
            !clone_fold_injected && it + 1 < opts.iterations) {
            clone_fold_injected = corruptCloneFold(machine);
        }
    }

    // Post-run injections: corruption after the final iteration, when
    // nothing further executes. impossible-profile is still caught
    // dynamically (check 5 inspects the recorded profile), but
    // skipped-invalidate is invisible to every dynamic check on this
    // machine — only the static verify passes below (and check 7's
    // cross-check machines, which flip mid-run) reject it.
    if (opts.inject == InjectKind::ImpossibleProfile && !peps.empty())
        corruptPepEdgeProfile(machine, *peps.front());
    if (opts.inject == InjectKind::SkippedInvalidate ||
        opts.inject == InjectKind::StaleFusion) {
        std::set<core::VersionKey> flipped;
        flipInstalledLayouts(machine, flipped);
    }
    if (opts.inject == InjectKind::BadCloneFold) {
        // A clone that only landed in the final iteration is corrupted
        // here instead; check 9 and the static clone audit still see
        // it (the fold comparison runs on recorded counts).
        if (!clone_fold_injected)
            clone_fold_injected = corruptCloneFold(machine);
        if (!clone_fold_injected) {
            report.notes.push_back(
                "bad-clone-fold: no cloned version was installed; "
                "nothing to corrupt");
        }
    }

    // Once a version runs a synthesized body (inlined or cloned), its
    // ground truth keeps bytecode-level *branch* edges only; the
    // whole-CFG conservation checks below no longer apply, exactly as
    // under enableInlining.
    bool any_clone = false;
    for (std::size_t m = 0; m < machine.numMethods() && !any_clone;
         ++m) {
        const bytecode::MethodId method =
            static_cast<bytecode::MethodId>(m);
        for (std::uint32_t v = 0; v < machine.numVersions(method); ++v) {
            if (machine.versionAt(method, v)->cloneApplied) {
                any_clone = true;
                break;
            }
        }
    }
    const bool bytecode_level_truth = !opts.enableInlining && !any_clone;
    if (any_clone && !opts.enableInlining) {
        report.notes.push_back(
            "cloned versions installed: bytecode-level conservation "
            "checks skipped");
    }

    // Check 1: the oracle read the interpreter's event stream the way
    // the interpreter meant it.
    checkEdgeTablesEqual(oracle.edges(), machine.truthEdges(),
                         "oracle edge mirror", report);

    // Check 8: k never changes what gets instrumented.
    if (opts.kIterations > 1)
        checkKDegeneracy(machine, opts, report);

    report.oracleSegments = oracle.totalSegments();
    report.blppPaths = full.pathsStored();
    for (const auto &pep : peps)
        report.pepSamplesRecorded += pep->pepStats().samplesRecorded;

    std::size_t pep_overflows = 0;
    for (const auto &pep : peps)
        pep_overflows += pep->overflowCount();
    if (full.overflowCount() != 0 || nested.overflowCount() != 0 ||
        pep_overflows != 0) {
        // Disabled plans profile nothing while the oracle still counts
        // segments; the comparisons below don't apply. The generator
        // sizes programs so this never happens in practice.
        report.notes.push_back(
            "numbering overflow: segment checks skipped");
        if (opts.crossCheckEngines &&
            (opts.inject == InjectKind::None ||
             opts.inject == InjectKind::StaleTemplate ||
             opts.inject == InjectKind::SkippedInvalidate ||
             opts.inject == InjectKind::StaleFusion)) {
            runEngineCrossCheck(program, opts, report);
        }
        return report;
    }

    // Checks 2-4: full BLPP vs oracle, flat vs nested, agreed totals.
    for (auto &[key, vp] : full.versionProfiles()) {
        if (!vp->state->plan.enabled)
            continue;
        ++report.instrumentedVersions;

        const VersionTruth *vt = oracle.truthFor(key);
        if (!vt) {
            addViolation(report, "full: " + keyName(key) +
                                     " unknown to the oracle");
            continue;
        }

        const SegmentCounts from_full = segmentsFromProfile(
            *vp->state, vp->paths, "full", report);
        for (const auto &[seq, count] : from_full) {
            const auto it = vt->segments.find(seq);
            if (it == vt->segments.end()) {
                addViolation(report,
                             "full: " + keyName(key) +
                                 " counted a never-executed path [" +
                                 formatEdgeSeq(seq) + "]");
            } else if (it->second != count) {
                std::ostringstream os;
                os << "full: " << keyName(key) << " path ["
                   << formatEdgeSeq(seq) << "] count " << count
                   << " != oracle " << it->second;
                addViolation(report, os.str());
            }
        }
        for (const auto &[seq, count] : vt->segments) {
            if (from_full.find(seq) == from_full.end()) {
                std::ostringstream os;
                os << "full: " << keyName(key) << " missed path ["
                   << formatEdgeSeq(seq) << "] executed " << count
                   << " times";
                addViolation(report, os.str());
            }
        }

        const NestedDispatchProfiler::VersionCounts *nc =
            nested.countsFor(key);
        if (!nc) {
            addViolation(report, "nested: " + keyName(key) +
                                     " has no nested-dispatch state");
            continue;
        }
        std::map<std::uint64_t, std::uint64_t> flat_counts;
        for (const auto &[number, record] : vp->paths.paths())
            flat_counts[number] = record.count;
        if (flat_counts != nc->counts) {
            addViolation(
                report,
                "flat/nested: " + keyName(key) +
                    " flat dispatch diverged from nested dispatch "
                    "(stale or corrupt flatEdgeActions mirror)");
        }
    }

    if (full.pathsStored() != oracle.totalSegments()) {
        std::ostringstream os;
        os << "totals: full stored " << full.pathsStored()
           << " paths but the oracle saw " << oracle.totalSegments()
           << " segments";
        addViolation(report, os.str());
    }
    if (nested.totalCompleted() != oracle.totalSegments()) {
        std::ostringstream os;
        os << "totals: nested completed " << nested.totalCompleted()
           << " paths but the oracle saw " << oracle.totalSegments()
           << " segments";
        addViolation(report, os.str());
    }

    // Check 5: each PEP configuration.
    for (std::size_t p = 0; p < peps.size(); ++p) {
        core::PepProfiler &pep = *peps[p];
        std::ostringstream tag;
        tag << "pep(" << opts.pepConfigs[p].samples << ','
            << opts.pepConfigs[p].stride << ')';
        const std::string what = tag.str();

        const core::PepStats &stats = pep.pepStats();
        if (stats.pathsCompleted != oracle.totalSegments()) {
            std::ostringstream os;
            os << what << ": completed " << stats.pathsCompleted
               << " paths but the oracle saw "
               << oracle.totalSegments() << " segments";
            addViolation(report, os.str());
        }
        if (stats.samplesRecorded > stats.samplesTaken) {
            std::ostringstream os;
            os << what << ": recorded " << stats.samplesRecorded
               << " samples out of " << stats.samplesTaken
               << " taken";
            addViolation(report, os.str());
        }

        std::uint64_t recorded = 0;
        for (auto &[key, vp] : pep.versionProfiles()) {
            if (!vp->state->plan.enabled)
                continue;
            const VersionTruth *vt = oracle.truthFor(key);
            if (!vt) {
                addViolation(report, what + ": " + keyName(key) +
                                         " unknown to the oracle");
                continue;
            }
            const SegmentCounts sampled = segmentsFromProfile(
                *vp->state, vp->paths, what, report);
            for (const auto &[seq, count] : sampled) {
                recorded += count;
                const auto it = vt->segments.find(seq);
                if (it == vt->segments.end()) {
                    addViolation(
                        report,
                        what + ": " + keyName(key) +
                            " sampled a never-executed path [" +
                            formatEdgeSeq(seq) + "]");
                } else if (count > it->second) {
                    std::ostringstream os;
                    os << what << ": " << keyName(key)
                       << " sampled path [" << formatEdgeSeq(seq)
                       << "] " << count << " times but it executed "
                       << it->second << " times";
                    addViolation(report, os.str());
                }
            }
        }
        if (recorded != stats.samplesRecorded) {
            std::ostringstream os;
            os << what << ": per-path counts sum to " << recorded
               << " but samplesRecorded is " << stats.samplesRecorded;
            addViolation(report, os.str());
        }

        checkEdgeTablesBounded(pep.edgeProfile(), machine.truthEdges(),
                               what + " edge profile", report);
        if (bytecode_level_truth) {
            checkConservation(pep.edgeProfile(), machine,
                              /*include_headers=*/false,
                              what + " edge profile", report);
        }
    }

    // Check 6: the edge profile derived from full BLPP paths. Versions
    // running a synthesized body (inlined or cloned) expand against
    // the synthesized CFG, which cannot be accumulated into
    // root-method tables, so this needs pure bytecode-level truth.
    if (bytecode_level_truth) {
        try {
            profile::EdgeProfileSet derived =
                core::edgeProfileFromPaths(machine, full);
            checkEdgeTablesBounded(derived, machine.truthEdges(),
                                   "full-derived edge profile", report);
            const bool clean_pairing = oracle.droppedFrames() == 0 &&
                                       oracle.adoptedFrames() == 0;
            checkConservation(derived, machine, clean_pairing,
                              "full-derived edge profile", report);
            if (!clean_pairing) {
                report.notes.push_back(
                    "frames dropped or adopted mid-path: header "
                    "conservation skipped");
            }
        } catch (const support::PanicError &e) {
            addViolation(report,
                         std::string("full-derived edge profile: "
                                     "reconstruction panicked: ") +
                             e.what());
        }
    }

    // Check 9: clone-fold exactness. The full profiler's counts for a
    // cloned version live in the synthesized CFG; folded through the
    // version's live BlockOrigin map they must agree count for count
    // with the oracle's literal segments folded through the origin
    // snapshot the oracle took at compile time. A live map corrupted
    // after the compile (the bad-clone-fold injection) — or a fold
    // that loses or misroutes a cloned branch's counters — breaks the
    // agreement.
    for (auto &[key, vp] : full.versionProfiles()) {
        if (!vp->state->plan.enabled || !vp->state->compiled)
            continue;
        const vm::CompiledMethod *cm = vp->state->compiled;
        if (!cm->cloneApplied || !cm->inlinedBody)
            continue;
        const VersionTruth *vt = oracle.truthFor(key);
        if (!vt)
            continue; // already a check-2 violation
        const bytecode::MethodCfg &version_cfg =
            cm->inlinedBody->info.cfg;
        const SegmentCounts from_full = segmentsFromProfile(
            *vp->state, vp->paths, "clone-fold", report);
        const FoldedBranchCounts folded_profile =
            foldBranchCounts(from_full, version_cfg,
                             cm->inlinedBody->blockOrigin, key.first);
        const FoldedBranchCounts folded_truth =
            foldBranchCounts(vt->segments, version_cfg,
                             vt->originSnapshot, key.first);
        if (folded_profile != folded_truth) {
            std::ostringstream os;
            os << "clone-fold: " << keyName(key)
               << " folded branch counts diverge from the oracle's "
                  "compile-time fold";
            for (const auto &[edge, count] : folded_truth) {
                const auto it = folded_profile.find(edge);
                const std::uint64_t got =
                    it == folded_profile.end() ? 0 : it->second;
                if (got != count) {
                    os << " (edge " << edge.first << ':' << edge.second
                       << " folded " << got << ", oracle " << count
                       << ')';
                    break;
                }
            }
            addViolation(report, os.str());
        }
    }

    // Check 7: switch vs threaded engine byte-identity. The other
    // injections corrupt the main run's profiler state, which doesn't
    // exist on the cross-check machines — skip the redundant runs.
    if (opts.crossCheckEngines &&
        (opts.inject == InjectKind::None ||
         opts.inject == InjectKind::StaleTemplate ||
         opts.inject == InjectKind::SkippedInvalidate ||
         opts.inject == InjectKind::StaleFusion)) {
        runEngineCrossCheck(program, opts, report);
    }

    // The static verify passes see everything the dynamic checks saw.
    if (opts.runStaticVerify) {
        runStaticVerifyPasses(machine, full, peps, opts,
                              bytecode_level_truth, report);
    }

    return report;
}

namespace {

/**
 * Serialize everything observable about a cooperative run — ground
 * truth, the PEP edge profile, every per-version path table, PEP stats,
 * scheduler counters — into one string. Byte-equality of two such
 * strings is the determinism contract of docs/RUNTIME.md.
 */
std::string
serializeCoopRun(const vm::Machine &machine,
                 const core::PepProfiler &pep,
                 const runtime::CoopStats &stats)
{
    std::ostringstream os;
    const auto dump_edges = [&os](const profile::EdgeProfileSet &set,
                                  const char *tag) {
        os << tag << '\n';
        for (std::size_t m = 0; m < set.perMethod.size(); ++m) {
            for (const auto &per_block : set.perMethod[m].counts()) {
                for (std::uint64_t count : per_block)
                    os << count << ' ';
            }
            os << '\n';
        }
    };
    dump_edges(machine.truthEdges(), "truth");
    dump_edges(pep.edgeProfile(), "pep-edges");

    os << "pep-paths\n";
    for (const auto &[key, vp] : pep.versionProfiles()) {
        os << key.first << " v" << key.second << ':';
        std::map<std::uint64_t, std::uint64_t> ordered;
        for (const auto &[number, record] : vp->paths.paths())
            ordered[number] = record.count;
        for (const auto &[number, count] : ordered)
            os << ' ' << number << '=' << count;
        os << '\n';
    }

    const core::PepStats &pep_stats = pep.pepStats();
    os << "stats " << pep_stats.pathsCompleted << ' '
       << pep_stats.samplesTaken << ' ' << pep_stats.samplesRecorded
       << ' ' << stats.contextSwitches << ' '
       << stats.requestsCompleted << ' ' << stats.resumes << ' '
       << machine.stats().instructionsExecuted << ' '
       << machine.now() << '\n';
    return os.str();
}

/** Check 5: every sample offered to the ring transport is either
 *  applied by the collector or counted as dropped — never lost
 *  silently. */
void
checkRingConservation(const runtime::ThroughputResult &result,
                      const std::string &label, DiffReport &report)
{
    const runtime::RingTransportStats &transport = result.transport;
    if (transport.produced !=
        transport.consumed + transport.dropped) {
        std::ostringstream os;
        os << label << ": sample conservation violated — produced "
           << transport.produced << " != consumed "
           << transport.consumed << " + dropped "
           << transport.dropped;
        addViolation(report, os.str());
    }
}

} // namespace

const std::vector<ThreadedDiffOptions> &
standardThreadedConfigs()
{
    static const std::vector<ThreadedDiffOptions> configs = [] {
        std::vector<ThreadedDiffOptions> all;

        ThreadedDiffOptions k2;
        k2.name = "coop-k2";
        k2.threads = 2;
        k2.seed = 11;
        k2.requests = 64;
        all.push_back(k2);

        ThreadedDiffOptions k4; // the defaults
        all.push_back(k4);

        ThreadedDiffOptions k8;
        k8.name = "coop-k8-fast-tick";
        k8.threads = 8;
        k8.seed = 29;
        k8.requests = 128;
        k8.tickCycles = 3'000;
        k8.workers = 4;
        all.push_back(k8);

        ThreadedDiffOptions sparse;
        sparse.name = "coop-k3-sparse-sampling";
        sparse.threads = 3;
        sparse.seed = 5;
        sparse.requests = 80;
        sparse.pep = PepConfig{64, 17};
        all.push_back(sparse);

        // k-BLPP under the cooperative scheduler: per-frame window
        // state must survive context switches (frames park mid-window)
        // and the two interleaved runs must stay byte-identical.
        ThreadedDiffOptions kiter;
        kiter.name = "coop-k3-kiter2";
        kiter.threads = 3;
        kiter.seed = 17;
        kiter.requests = 72;
        kiter.kIterations = 2;
        all.push_back(kiter);

        // Ring-transport stress: small epochs make every worker
        // enqueue many epoch marks (lots of window advances), and the
        // tight secondary ring is tiny enough that nearly everything
        // drops — conservation and boundedness must hold regardless.
        ThreadedDiffOptions ring;
        ring.name = "ring-small-epoch";
        ring.threads = 4;
        ring.seed = 43;
        ring.requests = 96;
        ring.workers = 4;
        ring.epochRequests = 4;
        ring.tightRingCapacity = 16;
        all.push_back(ring);

        return all;
    }();
    return configs;
}

const ThreadedDiffOptions *
findThreadedConfig(const std::string &name)
{
    for (const ThreadedDiffOptions &config : standardThreadedConfigs())
        if (config.name == name)
            return &config;
    return nullptr;
}

DiffReport
runThreadedDiff(const ThreadedDiffOptions &opts)
{
    DiffReport report;

    runtime::RequestStreamSpec spec;
    spec.seed = opts.seed;
    spec.requests = opts.requests;
    runtime::RequestStream stream(spec);

    vm::SimParams params;
    params.tickCycles = opts.tickCycles;
    params.rngSeed = opts.seed ^ 0x7ead5eedull;

    // Checks 1-2: the interleaved cooperative run, twice — every
    // request completes, PEP stays bounded by ground truth, and the
    // second run reproduces the first byte for byte.
    profile::EdgeProfileSet interleaved_truth;
    std::string first_blob;
    for (int run = 0; run < 2; ++run) {
        vm::Machine machine(stream.program(), params);
        core::SimplifiedArnoldGrove controller(opts.pep.samples,
                                               opts.pep.stride);
        core::PepOptions pep_options;
        pep_options.kIterations = opts.kIterations;
        core::PepProfiler pep(machine, controller, pep_options);
        machine.addHooks(&pep);
        machine.addCompileObserver(&pep);

        runtime::CoopOptions coop;
        coop.threads = opts.threads;
        coop.seed = opts.seed;
        runtime::CoopScheduler scheduler(machine, coop);
        scheduler.assignRoundRobin(stream);
        scheduler.run();

        if (scheduler.stats().requestsCompleted !=
            stream.requests().size()) {
            std::ostringstream os;
            os << "coop: completed "
               << scheduler.stats().requestsCompleted << " of "
               << stream.requests().size() << " requests";
            addViolation(report, os.str());
        }
        checkEdgeTablesBounded(pep.edgeProfile(), machine.truthEdges(),
                               "pep (coop)", report);

        const std::string blob =
            serializeCoopRun(machine, pep, scheduler.stats());
        if (run == 0) {
            first_blob = blob;
            interleaved_truth = machine.truthEdges();
            report.pepSamplesRecorded =
                pep.pepStats().samplesRecorded;
        } else if (blob != first_blob) {
            addViolation(report,
                         "determinism: repeating the cooperative run "
                         "with identical seeds changed the serialized "
                         "profiles");
        }
    }

    // Check 3: thread t alone, same thread id and request subsequence,
    // must contribute exactly its share — handlers are thread-pure, so
    // the interleaved merged truth is the sum of the solo truths.
    profile::EdgeProfileSet oracle_sum;
    for (std::uint32_t t = 0; t < opts.threads; ++t) {
        vm::Machine machine(stream.program(), params);
        ExactOracle oracle(machine, profile::DagMode::HeaderSplit,
                           opts.kIterations);
        machine.addHooks(&oracle);
        machine.addCompileObserver(&oracle);
        vm::Interpreter interp(machine, t);
        for (const runtime::Request &request :
             stream.shard(t, opts.threads)) {
            interp.start(stream.handlerMethod(request.handler),
                         {request.arg});
            while (!interp.resume()) {
            }
        }
        checkEdgeTablesEqual(oracle.edges(), machine.truthEdges(),
                             "solo oracle edge mirror", report);
        report.oracleSegments += oracle.totalSegments();
        if (oracle_sum.perMethod.empty())
            oracle_sum = oracle.edges();
        else
            oracle_sum.merge(oracle.edges());
    }
    checkEdgeTablesEqual(oracle_sum, interleaved_truth,
                         "per-thread oracle sum vs interleaved truth",
                         report);

    // Check 4: aggregation strategy changes throughput, never counts.
    if (opts.checkAggregation) {
        runtime::ThroughputOptions t_options;
        t_options.workers = opts.workers;
        t_options.epochRequests = opts.epochRequests;
        t_options.params = params;

        t_options.aggregation =
            runtime::ThroughputOptions::Aggregation::Sharded;
        const runtime::ThroughputResult sharded =
            runtime::runThroughput(stream, t_options);
        t_options.aggregation =
            runtime::ThroughputOptions::Aggregation::Mutex;
        const runtime::ThroughputResult mutex_global =
            runtime::runThroughput(stream, t_options);

        if (sharded.requestsCompleted != stream.requests().size()) {
            std::ostringstream os;
            os << "throughput: completed " << sharded.requestsCompleted
               << " of " << stream.requests().size() << " requests";
            addViolation(report, os.str());
        }
        checkEdgeTablesEqual(sharded.edges, mutex_global.edges,
                             "sharded vs mutex edge totals", report);
        if (sharded.paths != mutex_global.paths) {
            addViolation(report,
                         "sharded vs mutex path totals diverge");
        }
        report.blppPaths = sharded.pathRecords;

        // Checks 5-6: the ring transport. Ample capacity first — the
        // run should be drop-free, making the mutex identity check
        // applicable; then a deliberately tiny ring, which must drop
        // (and count every drop) while staying bounded by the mutex
        // totals. Conservation is checked on both: a transport that
        // loses a sample without counting it (the ring-lost-sample
        // injection, or a real accounting bug) fails here.
        if (opts.checkRing) {
            t_options.aggregation =
                runtime::ThroughputOptions::Aggregation::Ring;
            t_options.ring.capacity = opts.ringCapacity;
            t_options.ring.injectLoseAt =
                opts.inject == InjectKind::RingLostSample ? 10 : 0;
            const runtime::ThroughputResult ring =
                runtime::runThroughput(stream, t_options);

            checkRingConservation(ring, "ring (ample)", report);
            if (ring.transport.dropped == 0) {
                checkEdgeTablesEqual(ring.edges, mutex_global.edges,
                                     "drop-free ring vs mutex edge "
                                     "totals",
                                     report);
                if (ring.paths != mutex_global.paths) {
                    addViolation(report,
                                 "drop-free ring vs mutex path totals "
                                 "diverge");
                }
            } else {
                std::ostringstream os;
                os << "ring (ample) dropped "
                   << ring.transport.dropped
                   << " samples; identity check skipped";
                report.notes.push_back(os.str());
            }
            if (ring.windowAdvances == 0 &&
                ring.transport.epochMarks >
                    ring.transport.droppedEpochMarks) {
                addViolation(report,
                             "ring windows never advanced despite "
                             "delivered epoch marks");
            }

            if (opts.tightRingCapacity > 0) {
                t_options.ring.capacity = opts.tightRingCapacity;
                t_options.ring.injectLoseAt = 0;
                const runtime::ThroughputResult tight =
                    runtime::runThroughput(stream, t_options);
                checkRingConservation(tight, "ring (tight)", report);
                checkEdgeTablesBounded(tight.edges, mutex_global.edges,
                                       "ring (tight)", report);
                for (const auto &[key, count] : tight.paths) {
                    const auto it = mutex_global.paths.find(key);
                    const std::uint64_t reference =
                        it == mutex_global.paths.end() ? 0
                                                       : it->second;
                    if (count > reference) {
                        std::ostringstream os;
                        os << "ring (tight): path " << key.number
                           << " of method " << key.method
                           << " counted " << count << " > mutex "
                           << reference
                           << " — drops invented counts";
                        addViolation(report, os.str());
                        break;
                    }
                }
            }
        }
    }

    return report;
}

std::string
formatCorpusFile(const bytecode::Program &program,
                 const std::string &config, std::uint64_t seed,
                 InjectKind inject, const std::string &violation)
{
    std::ostringstream os;
    os << "; pep-fuzz: config=" << config << " seed=" << seed
       << " inject=" << injectKindName(inject) << '\n';
    if (!violation.empty()) {
        // First line of the violation only; keep the file greppable.
        const std::size_t eol = violation.find('\n');
        os << "; violation: " << violation.substr(0, eol) << '\n';
    }
    os << bytecode::disassembleProgram(program);
    return os.str();
}

CorpusHeader
parseCorpusHeader(const std::string &source)
{
    CorpusHeader header;
    std::istringstream is(source);
    std::string line;
    while (std::getline(is, line)) {
        const std::string prefix = "; pep-fuzz:";
        if (line.compare(0, prefix.size(), prefix) != 0)
            continue;
        std::istringstream fields(line.substr(prefix.size()));
        std::string field;
        while (fields >> field) {
            const std::size_t eq = field.find('=');
            if (eq == std::string::npos)
                continue;
            const std::string key = field.substr(0, eq);
            const std::string value = field.substr(eq + 1);
            if (key == "config") {
                header.config = value;
            } else if (key == "inject") {
                header.inject = value;
            } else if (key == "seed") {
                header.seed = std::strtoull(value.c_str(), nullptr, 10);
            }
        }
        break;
    }
    return header;
}

} // namespace pep::testing
