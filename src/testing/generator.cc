#include "testing/generator.hh"

#include <cstdlib>
#include <string>
#include <vector>

#include "support/rng.hh"
#include "workload/program_builder.hh"

namespace pep::testing {

namespace {

using bytecode::Opcode;
using workload::Label;
using workload::MethodBuilder;

/** A callable method as seen by a body generator. */
struct Callee
{
    bytecode::MethodId id = 0;
    std::uint32_t numArgs = 0;
    bool returnsValue = false;
};

/**
 * Emits one method body as a recursive statement list. Invariant: the
 * operand stack is empty between statements, so any statement order and
 * any branch structure verifies.
 */
class BodyGen
{
  public:
    BodyGen(MethodBuilder &b, support::Rng rng,
            std::vector<Callee> callees, std::uint32_t num_args,
            bool returns_value, const FuzzSpec &spec)
        : b_(b), rng_(rng), callees_(std::move(callees)),
          numArgs_(num_args), returnsValue_(returns_value), spec_(spec)
    {
        scratch_[0] = b_.newLocal();
        scratch_[1] = b_.newLocal();
    }

    void
    run()
    {
        budget_ = 2 + static_cast<std::uint32_t>(
                          rng_.nextBounded(spec_.maxElements));
        stmtList(0);
        emitReturn();
    }

  private:
    /** Push one int (a "condition" value). */
    void
    pushValue()
    {
        switch (rng_.nextBounded(numArgs_ > 0 ? 4 : 3)) {
          case 0: { // data-dependent bits from the VM's random stream
            b_.emit(Opcode::Irnd);
            b_.iconst(
                static_cast<std::int32_t>(1 + rng_.nextBounded(7)));
            b_.emit(Opcode::Iand);
            break;
          }
          case 1:
            b_.iload(scratch_[rng_.nextBounded(2)]);
            break;
          case 2:
            b_.iconst(static_cast<std::int32_t>(rng_.nextBounded(8)));
            b_.emit(Opcode::Gload);
            break;
          default:
            b_.iload(b_.argSlot(static_cast<std::uint32_t>(
                rng_.nextBounded(numArgs_))));
            break;
        }
    }

    void
    emitReturn()
    {
        if (returnsValue_) {
            b_.iload(scratch_[0]);
            b_.iret();
        } else {
            b_.ret();
        }
    }

    void
    stmtList(std::uint32_t depth)
    {
        const std::uint32_t stmts =
            1 + static_cast<std::uint32_t>(rng_.nextBounded(3));
        for (std::uint32_t i = 0; i < stmts && budget_ > 0; ++i) {
            --budget_;
            stmt(depth);
        }
    }

    void
    stmt(std::uint32_t depth)
    {
        const bool nested_ok = depth < spec_.maxDepth;
        // Loop-bias pre-roll: guarded so bias 0.0 draws nothing and the
        // RNG stream (hence every generated program) stays byte-stable.
        if (spec_.loopBias > 0 && nested_ok &&
            rng_.nextBool(spec_.loopBias)) {
            loop(depth);
            return;
        }
        switch (rng_.nextBounded(10)) {
          case 0:
          case 1:
            arith();
            break;
          case 2:
            globalStore();
            break;
          case 3:
            if (!callees_.empty()) {
                call();
                break;
            }
            arith();
            break;
          case 4:
            if (nested_ok) {
                diamond(depth);
                break;
            }
            arith();
            break;
          case 5:
          case 6:
            if (nested_ok) {
                loop(depth);
                break;
            }
            arith();
            break;
          case 7:
            if (nested_ok) {
                switchFan(depth);
                break;
            }
            globalStore();
            break;
          case 8:
            earlyReturn();
            break;
          default:
            arith();
            break;
        }
    }

    void
    arith()
    {
        static const Opcode kOps[] = {Opcode::Iadd, Opcode::Isub,
                                      Opcode::Imul, Opcode::Ixor,
                                      Opcode::Iand, Opcode::Ior};
        pushValue();
        b_.iconst(static_cast<std::int32_t>(rng_.nextRange(-5, 13)));
        b_.emit(kOps[rng_.nextBounded(std::size(kOps))]);
        b_.istore(scratch_[rng_.nextBounded(2)]);
    }

    void
    globalStore()
    {
        // Gstore pops index then value: push value first.
        pushValue();
        b_.iconst(static_cast<std::int32_t>(rng_.nextBounded(8)));
        b_.emit(Opcode::Gstore);
    }

    void
    call()
    {
        const Callee &callee =
            callees_[rng_.nextBounded(callees_.size())];
        for (std::uint32_t i = 0; i < callee.numArgs; ++i)
            pushValue();
        b_.invoke(callee.id);
        if (callee.returnsValue) {
            if (rng_.nextBool(0.7))
                b_.istore(scratch_[0]);
            else
                b_.emit(Opcode::Pop);
        }
    }

    void
    diamond(std::uint32_t depth)
    {
        static const Opcode kBranches[] = {Opcode::Ifeq, Opcode::Ifne,
                                           Opcode::Iflt, Opcode::Ifgt};
        const Label other = b_.newLabel();
        const Label end = b_.newLabel();
        pushValue();
        b_.branch(kBranches[rng_.nextBounded(std::size(kBranches))],
                  other);
        stmtList(depth + 1);
        b_.jump(end);
        b_.bind(other);
        if (rng_.nextBool(0.8))
            stmtList(depth + 1);
        b_.bind(end);
    }

    void
    loop(std::uint32_t depth)
    {
        const std::uint32_t counter = b_.newLocal();
        // Under loop bias, trip counts get irregular (1..13ish) so
        // k-windows close at varying phases; the legacy expression is
        // kept verbatim at bias 0 for byte-stable streams.
        const std::int32_t trips =
            spec_.loopBias > 0
                ? static_cast<std::int32_t>(
                      1 + rng_.nextBounded(
                              2 + static_cast<std::uint64_t>(
                                      12 * spec_.loopBias)))
                : static_cast<std::int32_t>(2 + rng_.nextBounded(5));
        const Label header = b_.newLabel();
        const Label done = b_.newLabel();

        b_.iconst(0);
        b_.istore(counter);
        b_.bind(header);
        b_.iload(counter);
        b_.iconst(trips);
        b_.branch(Opcode::IfIcmpge, done);
        stmtList(depth + 1);
        b_.iinc(counter, 1);
        if (rng_.nextBool(0.4 + 0.4 * spec_.loopBias)) {
            // Two distinct back edges into one loop header — the
            // shared-header shape that stresses header splitting.
            const Label alt = b_.newLabel();
            pushValue();
            b_.branch(Opcode::Ifeq, alt);
            b_.jump(header);
            b_.bind(alt);
            b_.jump(header);
        } else {
            b_.jump(header);
        }
        b_.bind(done);
    }

    void
    switchFan(std::uint32_t depth)
    {
        const std::size_t ncase = 3 + rng_.nextBounded(3);
        const Label end = b_.newLabel();
        const Label dflt = b_.newLabel();

        // Reusing a previous case label yields parallel CFG edges
        // (distinct successor indices, one destination block).
        std::vector<Label> unique_cases;
        std::vector<Label> cases;
        for (std::size_t i = 0; i < ncase; ++i) {
            if (!unique_cases.empty() && rng_.nextBool(0.35)) {
                cases.push_back(unique_cases[rng_.nextBounded(
                    unique_cases.size())]);
            } else {
                const Label l = b_.newLabel();
                unique_cases.push_back(l);
                cases.push_back(l);
            }
        }

        // 0..7 selector; values >= ncase exercise the default edge.
        b_.emit(Opcode::Irnd);
        b_.iconst(7);
        b_.emit(Opcode::Iand);
        b_.tableswitch(0, dflt, cases);
        for (const Label l : unique_cases) {
            b_.bind(l);
            stmtList(depth + 1);
            b_.jump(end);
        }
        b_.bind(dflt);
        if (rng_.nextBool(0.7))
            stmtList(depth + 1);
        b_.bind(end);
    }

    void
    earlyReturn()
    {
        const Label cont = b_.newLabel();
        pushValue();
        b_.branch(Opcode::Ifne, cont);
        emitReturn();
        b_.bind(cont);
    }

    MethodBuilder &b_;
    support::Rng rng_;
    std::vector<Callee> callees_;
    std::uint32_t numArgs_;
    bool returnsValue_;
    const FuzzSpec &spec_;
    std::uint32_t scratch_[2] = {0, 0};
    std::uint32_t budget_ = 0;
};

} // namespace

bytecode::Program
generateProgram(const FuzzSpec &spec)
{
    support::Rng rng(spec.seed);
    workload::ProgramBuilder pb;

    const std::uint32_t num_leaves = static_cast<std::uint32_t>(
        rng.nextBounded(spec.maxLeafMethods + 1));
    const std::uint32_t num_hot = 1 + static_cast<std::uint32_t>(
                                          rng.nextBounded(
                                              spec.maxHotMethods));

    std::vector<Callee> leaves;
    for (std::uint32_t i = 0; i < num_leaves; ++i) {
        Callee c;
        c.numArgs = static_cast<std::uint32_t>(rng.nextBounded(3));
        c.returnsValue = rng.nextBool(0.7);
        c.id = pb.declareMethod("leaf" + std::to_string(i), c.numArgs,
                                c.returnsValue);
        leaves.push_back(c);
    }

    std::vector<Callee> hots;
    for (std::uint32_t i = 0; i < num_hot; ++i) {
        Callee c;
        c.numArgs = static_cast<std::uint32_t>(rng.nextBounded(2));
        c.returnsValue = rng.nextBool(0.5);
        c.id = pb.declareMethod("hot" + std::to_string(i), c.numArgs,
                                c.returnsValue);
        hots.push_back(c);
    }
    const bytecode::MethodId main_id = pb.declareMethod("main", 0,
                                                        false);

    // Leaves: no callees, small bodies (stay inline-eligible).
    for (const Callee &c : leaves) {
        FuzzSpec leaf_spec = spec;
        leaf_spec.maxElements = std::min(spec.maxElements, 4u);
        leaf_spec.maxDepth = std::min(spec.maxDepth, 2u);
        MethodBuilder mb(pb.methodName(c.id), c.numArgs,
                         c.returnsValue);
        BodyGen gen(mb, rng.fork(), {}, c.numArgs, c.returnsValue,
                    leaf_spec);
        gen.run();
        pb.define(c.id, mb);
    }

    // Hot methods: may call leaves and earlier hot methods (the call
    // graph stays acyclic, so execution terminates).
    for (std::size_t i = 0; i < hots.size(); ++i) {
        std::vector<Callee> callees = leaves;
        callees.insert(callees.end(), hots.begin(),
                       hots.begin() + static_cast<std::ptrdiff_t>(i));
        MethodBuilder mb(pb.methodName(hots[i].id), hots[i].numArgs,
                         hots[i].returnsValue);
        BodyGen gen(mb, rng.fork(), std::move(callees),
                    hots[i].numArgs, hots[i].returnsValue, spec);
        gen.run();
        pb.define(hots[i].id, mb);
    }

    // main: a driver loop invoking every hot method each trip, hot
    // enough for the adaptive system to promote (and OSR/inline when
    // those are enabled).
    {
        MethodBuilder mb("main", 0, false);
        const std::uint32_t it = mb.newLocal();
        const Label header = mb.newLabel();
        const Label done = mb.newLabel();
        mb.iconst(0);
        mb.istore(it);
        mb.bind(header);
        mb.iload(it);
        mb.iconst(static_cast<std::int32_t>(spec.mainTrips));
        mb.branch(Opcode::IfIcmpge, done);
        for (const Callee &c : hots) {
            for (std::uint32_t a = 0; a < c.numArgs; ++a)
                mb.iload(it);
            mb.invoke(c.id);
            if (c.returnsValue)
                mb.emit(Opcode::Pop);
        }
        mb.iinc(it, 1);
        mb.jump(header);
        mb.bind(done);
        mb.ret();
        pb.define(main_id, mb);
    }

    pb.setMain(main_id);
    pb.setGlobalSize(8);
    std::vector<std::int32_t> globals(8);
    for (std::int32_t &g : globals)
        g = static_cast<std::int32_t>(rng.nextRange(-4, 12));
    pb.setInitialGlobals(std::move(globals));
    return pb.build();
}

std::uint64_t
fuzzItersFromEnv(std::uint64_t fallback)
{
    const char *env = std::getenv("PEP_FUZZ_ITERS");
    if (!env || !*env)
        return fallback;
    char *end = nullptr;
    const unsigned long long value = std::strtoull(env, &end, 10);
    if (end == env || *end != '\0' || value == 0)
        return fallback;
    return static_cast<std::uint64_t>(value);
}

std::uint32_t
kIterationsFromEnv(std::uint32_t fallback)
{
    const char *env = std::getenv("PEP_KITER");
    if (!env || !*env)
        return fallback;
    char *end = nullptr;
    const unsigned long long value = std::strtoull(env, &end, 10);
    if (end == env || *end != '\0' || value == 0)
        return fallback;
    return static_cast<std::uint32_t>(value);
}

} // namespace pep::testing
