#include "core/path_engine.hh"

#include "profile/spanning_placement.hh"
#include "vm/inliner.hh"
#include "support/panic.hh"

namespace pep::core {

std::unique_ptr<MethodProfilingState>
buildProfilingState(const bytecode::MethodCfg &method_cfg,
                    bytecode::MethodId method, std::uint32_t version,
                    profile::DagMode mode,
                    profile::NumberingScheme scheme,
                    const profile::MethodEdgeProfile *freq_profile,
                    profile::PlacementKind placement,
                    std::uint32_t k_iterations)
{
    auto state = std::make_unique<MethodProfilingState>();
    state->method = method;
    state->version = version;
    state->pdag = profile::buildPDag(method_cfg, mode);

    // Edge frequency estimates (used by Smart numbering and by the
    // spanning-tree placement); all-zero when no profile exists, which
    // reduces both to deterministic structural choices.
    profile::DagEdgeFreqs freqs;
    if (freq_profile) {
        freqs = profile::estimateDagEdgeFrequencies(
            method_cfg, state->pdag, freq_profile->counts());
    } else {
        freqs.resize(state->pdag.dag.numBlocks());
        for (cfg::BlockId v = 0; v < state->pdag.dag.numBlocks(); ++v)
            freqs[v].assign(state->pdag.dag.succs(v).size(), 0.0);
    }

    if (scheme == profile::NumberingScheme::BallLarus) {
        state->numbering =
            profile::numberPaths(state->pdag, scheme, nullptr);
    } else {
        state->numbering = profile::numberPaths(state->pdag, scheme,
                                                &freqs);
    }

    state->plan = profile::buildInstrumentationPlan(
        method_cfg, state->pdag, state->numbering);
    if (state->plan.enabled &&
        placement == profile::PlacementKind::SpanningTree) {
        const profile::SpanningPlacement spanning =
            profile::computeSpanningPlacement(state->pdag,
                                              state->numbering, &freqs);
        profile::applySpanningPlacement(method_cfg, state->pdag,
                                        spanning, state->plan);
    }
    if (state->plan.enabled) {
        state->reconstructor =
            std::make_unique<profile::PathReconstructor>(
                method_cfg, state->pdag, state->numbering);
    }
    // The k-path id space is layered over the finished plan; the plan
    // itself is identical for every k (k=1 degeneracy guarantee).
    state->kpath = profile::KPathScheme(
        state->plan.enabled ? state->plan.totalPaths : 0, k_iterations);
    return state;
}

PathEngine::PathEngine(vm::Machine &machine, profile::DagMode mode,
                       profile::NumberingScheme scheme,
                       bool charge_costs,
                       profile::PlacementKind placement,
                       std::uint32_t k_iterations)
    : vm_(machine), mode_(mode), scheme_(scheme),
      chargeCosts_(charge_costs), placement_(placement),
      kIterations_(k_iterations == 0 ? 1 : k_iterations)
{
}

const profile::MethodEdgeProfile *
PathEngine::freqProfileFor(bytecode::MethodId method)
{
    const profile::MethodEdgeProfile &one_time =
        vm_.oneTimeEdges().perMethod[method];
    return one_time.totalCount() > 0 ? &one_time : nullptr;
}

void
PathEngine::onCompile(bytecode::MethodId method,
                      const vm::CompiledMethod &version)
{
    // Instrument the code the version actually runs: the inlined body
    // when inlining produced one, otherwise the method's own CFG.
    const bytecode::MethodCfg &version_cfg =
        version.inlinedBody ? version.inlinedBody->info.cfg
                            : vm_.info(method).cfg;
    auto state = buildProfilingState(
        version_cfg, method, version.version, mode_, scheme_,
        version.inlinedBody ? nullptr : freqProfileFor(method),
        placement_, kIterations_);
    state->compiled = &version;
    if (!state->plan.enabled)
        ++overflowCount_;

    // Charge the instrumentation pass (three quick passes over the
    // method; Section 6.2).
    const vm::CostModel &cost = vm_.params().cost;
    const std::uint32_t per_instr =
        version.level == vm::OptLevel::Opt2
            ? cost.opt2CompileCostPerInstr
            : cost.opt1CompileCostPerInstr;
    const double pass_cycles =
        cost.pepCompilePassOverhead * per_instr *
        static_cast<double>(vm_.program().methods[method].code.size());
    charge(static_cast<std::uint64_t>(pass_cycles));

    if (versions_.size() <= method)
        versions_.resize(method + 1);
    std::vector<std::unique_ptr<VersionProfile>> &slots =
        versions_[method];
    if (slots.size() <= version.version)
        slots.resize(version.version + 1);
    auto vp = std::make_unique<VersionProfile>();
    vp->state = std::move(state);
    slots[version.version] = std::move(vp);
}

VersionProfile *
PathEngine::findVersion(bytecode::MethodId method,
                        std::uint32_t version) const
{
    if (method >= versions_.size())
        return nullptr;
    const std::vector<std::unique_ptr<VersionProfile>> &slots =
        versions_[method];
    if (version >= slots.size())
        return nullptr;
    return slots[version].get();
}

std::vector<std::pair<VersionKey, VersionProfile *>>
PathEngine::versionProfiles()
{
    std::vector<std::pair<VersionKey, VersionProfile *>> result;
    for (std::size_t m = 0; m < versions_.size(); ++m) {
        for (std::size_t v = 0; v < versions_[m].size(); ++v) {
            if (versions_[m][v]) {
                result.emplace_back(
                    VersionKey{static_cast<bytecode::MethodId>(m),
                               static_cast<std::uint32_t>(v)},
                    versions_[m][v].get());
            }
        }
    }
    return result;
}

std::vector<std::pair<VersionKey, const VersionProfile *>>
PathEngine::versionProfiles() const
{
    std::vector<std::pair<VersionKey, const VersionProfile *>> result;
    for (const auto &[key, vp] :
         const_cast<PathEngine *>(this)->versionProfiles())
        result.emplace_back(key, vp);
    return result;
}

const MethodProfilingState *
PathEngine::stateFor(bytecode::MethodId method,
                     std::uint32_t version) const
{
    const VersionProfile *vp = findVersion(method, version);
    if (!vp || !vp->state->plan.enabled)
        return nullptr;
    return vp->state.get();
}

void
PathEngine::clearPathProfiles()
{
    for (std::vector<std::unique_ptr<VersionProfile>> &slots : versions_)
        for (std::unique_ptr<VersionProfile> &vp : slots)
            if (vp)
                vp->paths.clear();
}

std::vector<PathEngine::FrameState> &
PathEngine::stackFor(std::uint32_t thread)
{
    if (stacks_.size() <= thread)
        stacks_.resize(thread + 1);
    return stacks_[thread];
}

void
PathEngine::onMethodEntry(const vm::FrameView &frame)
{
    FrameState fs;
    VersionProfile *vp =
        findVersion(frame.method, frame.version->version);
    if (vp && vp->state->plan.enabled) {
        fs.bind(*vp);
        charge(vm_.params().cost.pathRegResetCost); // r = 0
    }
    fs.reg = 0;
    std::vector<FrameState> &stack = stackFor(frame.thread);
    stack.push_back(fs);
    PEP_ASSERT(stack.size() == frame.depth + 1);
}

void
PathEngine::onMethodExit(const vm::FrameView &frame)
{
    std::vector<FrameState> &stack = stacks_[frame.thread];
    PEP_ASSERT(stack.size() == frame.depth + 1);
    FrameState &fs = stack.back();
    if (fs.vp) {
        // Path ends at method exit; its number is r (the return edge's
        // increment was applied by onEdge). A partial k-BLPP window is
        // flushed as a short k-path — a frame exits once, so
        // exit-ending segments are always the last digit of a window.
        segmentCompleted(fs, fs.reg, frame.thread);
        flushWindow(fs, frame.thread);
    }
    stack.pop_back();
}

void
PathEngine::onEdge(const vm::FrameView &frame, cfg::EdgeRef edge)
{
    FrameState &fs = stacks_[frame.thread].back();
    if (!fs.vp)
        return;
    // Hot path: one dense-id load from the flattened table via the
    // pointers cached at entry/OSR.
    applyEdgeAction(fs, fs.actions[fs.edgeBase[edge.src] + edge.index],
                    frame.thread);
}

void
PathEngine::onEdgeFast(const vm::FrameView &frame, cfg::EdgeRef edge,
                       std::uint32_t flat_id)
{
    // The threaded engine's templates carry the dense edge id
    // (structurally equal to edgeBase[src] + index — the plan checker's
    // template check proves it), so the base lookup is fused away.
    (void)edge;
    FrameState &fs = stacks_[frame.thread].back();
    if (!fs.vp)
        return;
    applyEdgeAction(fs, fs.actions[flat_id], frame.thread);
}

void
PathEngine::applyEdgeAction(FrameState &fs,
                            const profile::EdgeAction &action,
                            std::uint32_t thread)
{
    if (action.endsPath) {
        // Truncated back edge (BackEdgeTruncate mode): the classic
        // BLPP count[r + endAdd]++ / r = restart pair.
        const vm::CostModel &cost = vm_.params().cost;
        if (action.endAdd != 0)
            charge(cost.pathRegAddCost);
        segmentCompleted(fs, fs.reg + action.endAdd, thread);
        fs.reg = action.restart;
        charge(cost.pathRegResetCost);
    } else if (action.increment != 0) {
        fs.reg += action.increment;
        charge(vm_.params().cost.pathRegAddCost);
    }
}

void
PathEngine::onOsr(const vm::FrameView &frame, cfg::BlockId header)
{
    std::vector<FrameState> &stack = stacks_[frame.thread];
    FrameState &fs = stack.back();
    PEP_ASSERT(stack.size() == frame.depth + 1);

    if (mode_ != profile::DagMode::HeaderSplit) {
        // Back-edge truncation has the frame mid-path at a header; the
        // old register is meaningless under the new plan, so stop
        // profiling this frame conservatively. The already-completed
        // segments of a partial k-window are still valid — flush them
        // against the old version before dropping the frame.
        if (fs.vp)
            flushWindow(fs, frame.thread);
        fs.vp = nullptr;
        return;
    }

    // Header splitting makes OSR clean: the old version's path just
    // ended at this header, so rebinding to the new version's plan and
    // restarting the register is exactly what a fresh entry through
    // this header would do.
    // Segment numbers are only meaningful against one version's
    // numbering, so a partial k-window cannot straddle the switch:
    // flush it against the old version first (its segments completed
    // before the OSR fired).
    if (fs.vp)
        flushWindow(fs, frame.thread);
    VersionProfile *vp =
        findVersion(frame.method, frame.version->version);
    if (!vp || !vp->state->plan.enabled ||
        !vp->state->plan.headerActions[header].endsPath) {
        // No instrumentation for the new version, or the OSR point is
        // not a path boundary under the new plan: stop profiling this
        // frame rather than corrupt the register.
        fs.vp = nullptr;
        return;
    }
    fs.bind(*vp);
    fs.reg = vp->state->plan.headerActions[header].restart;
    charge(vm_.params().cost.pathRegResetCost);
}

void
PathEngine::onLoopHeader(const vm::FrameView &frame, cfg::BlockId block)
{
    FrameState &fs = stacks_[frame.thread].back();
    if (!fs.vp)
        return;
    const profile::HeaderAction &action = fs.headers[block];
    if (!action.endsPath)
        return;
    const vm::CostModel &cost = vm_.params().cost;
    if (action.endAdd != 0)
        charge(cost.pathRegAddCost);
    segmentCompleted(fs, fs.reg + action.endAdd, frame.thread);
    fs.reg = action.restart;
    charge(cost.pathRegResetCost);
}

void
PathEngine::segmentCompleted(FrameState &fs, std::uint64_t number,
                             std::uint32_t thread)
{
    const profile::KPathScheme &kpath = fs.vp->state->kpath;
    if (kpath.kEffective() == 1) {
        // Degenerate fast path: classic BLPP, bit-for-bit — the
        // composite id of a length-1 window IS the raw number.
        pathCompleted(*fs.vp, number, thread);
        return;
    }
    fs.win.push_back(number);
    if (fs.win.size() == kpath.kEffective()) {
        pathCompleted(*fs.vp, kpath.encode(fs.win), thread);
        fs.win.clear();
    }
}

void
PathEngine::flushWindow(FrameState &fs, std::uint32_t thread)
{
    if (fs.win.empty())
        return;
    if (!truncateWindowInjection_) {
        pathCompleted(*fs.vp, fs.vp->state->kpath.encode(fs.win),
                      thread);
    }
    fs.win.clear();
}

} // namespace pep::core
