#ifndef PEP_CORE_SAMPLING_HH
#define PEP_CORE_SAMPLING_HH

/**
 * @file
 * Sampling controllers (paper Section 4.4). A controller is consulted
 * at every *sampling opportunity* — a loop-header or method-exit
 * yieldpoint, exactly the locations where BLPP would update the path
 * profile — and decides whether the yieldpoint handler runs and
 * whether it records a sample.
 *
 *  - TimerSampling == PEP(1,1): one sample at the first opportunity
 *    after each timer tick.
 *  - SimplifiedArnoldGrove == PEP(SAMPLES, STRIDE): after a tick,
 *    stride over s-1 opportunities (s rotates through [1, STRIDE]),
 *    then take SAMPLES consecutive samples. The paper's modification:
 *    striding only before the first sample of a tick.
 *  - FullArnoldGrove: the original scheme — stride between *every*
 *    sample (used for the simplified-vs-full ablation).
 *  - NeverSample: instrumentation-only configuration (Figure 6's
 *    "PEP instrumentation" bar).
 */

#include <cstdint>
#include <string>

namespace pep::core {

/** What happens at one sampling opportunity. */
enum class SampleAction : std::uint8_t
{
    Idle,   ///< flag clear; only the (always present) flag check ran
    Stride, ///< handler ran but skipped the sample
    Sample, ///< handler ran and recorded a sample
};

/** Decides handler behaviour at sampling opportunities. */
class SamplingController
{
  public:
    virtual ~SamplingController() = default;

    /**
     * Called at each opportunity. `tick_pending` is true if a timer
     * tick fired since the previous opportunity.
     */
    virtual SampleAction onOpportunity(bool tick_pending) = 0;

    /** Reset to the dormant state (e.g., between iterations). */
    virtual void reset() = 0;

    /** Configuration name for reports, e.g. "PEP(64,17)". */
    virtual std::string name() const = 0;
};

/** Instrumentation-only: never samples. */
class NeverSample final : public SamplingController
{
  public:
    SampleAction
    onOpportunity(bool) override
    {
        return SampleAction::Idle;
    }

    void reset() override {}

    std::string name() const override { return "instr-only"; }
};

/** Simplified Arnold-Grove PEP(SAMPLES, STRIDE); PEP(1,1) is
 *  timer-based sampling. */
class SimplifiedArnoldGrove final : public SamplingController
{
  public:
    SimplifiedArnoldGrove(std::uint32_t samples, std::uint32_t stride);

    SampleAction onOpportunity(bool tick_pending) override;
    void reset() override;
    std::string name() const override;

  private:
    const std::uint32_t samples_;
    const std::uint32_t stride_;
    std::uint32_t toSkip_ = 0;
    std::uint32_t remaining_ = 0;
    std::uint32_t rotation_ = 1;
};

/** Original Arnold-Grove: stride before every sample. */
class FullArnoldGrove final : public SamplingController
{
  public:
    FullArnoldGrove(std::uint32_t samples, std::uint32_t stride);

    SampleAction onOpportunity(bool tick_pending) override;
    void reset() override;
    std::string name() const override;

  private:
    const std::uint32_t samples_;
    const std::uint32_t stride_;
    std::uint32_t toSkip_ = 0;
    std::uint32_t remaining_ = 0;
    std::uint32_t rotation_ = 1;
};

} // namespace pep::core

#endif // PEP_CORE_SAMPLING_HH
