#include "core/sampling.hh"

#include <sstream>

#include "support/panic.hh"

namespace pep::core {

SimplifiedArnoldGrove::SimplifiedArnoldGrove(std::uint32_t samples,
                                             std::uint32_t stride)
    : samples_(samples), stride_(stride)
{
    PEP_ASSERT(samples >= 1 && stride >= 1);
}

SampleAction
SimplifiedArnoldGrove::onOpportunity(bool tick_pending)
{
    if (tick_pending) {
        // New tick: choose the rotating initial stride and arm a burst
        // of SAMPLES samples (restarts any burst in progress).
        toSkip_ = rotation_ - 1;
        rotation_ = rotation_ % stride_ + 1;
        remaining_ = samples_;
    }
    if (remaining_ == 0)
        return SampleAction::Idle;
    if (toSkip_ > 0) {
        --toSkip_;
        return SampleAction::Stride;
    }
    --remaining_;
    return SampleAction::Sample;
}

void
SimplifiedArnoldGrove::reset()
{
    toSkip_ = 0;
    remaining_ = 0;
    rotation_ = 1;
}

std::string
SimplifiedArnoldGrove::name() const
{
    std::ostringstream os;
    os << "PEP(" << samples_ << "," << stride_ << ")";
    return os.str();
}

FullArnoldGrove::FullArnoldGrove(std::uint32_t samples,
                                 std::uint32_t stride)
    : samples_(samples), stride_(stride)
{
    PEP_ASSERT(samples >= 1 && stride >= 1);
}

SampleAction
FullArnoldGrove::onOpportunity(bool tick_pending)
{
    if (tick_pending) {
        toSkip_ = rotation_ - 1;
        rotation_ = rotation_ % stride_ + 1;
        remaining_ = samples_;
    }
    if (remaining_ == 0)
        return SampleAction::Idle;
    if (toSkip_ > 0) {
        --toSkip_;
        return SampleAction::Stride;
    }
    --remaining_;
    if (remaining_ > 0)
        toSkip_ = stride_ - 1; // stride before the next sample too
    return SampleAction::Sample;
}

void
FullArnoldGrove::reset()
{
    toSkip_ = 0;
    remaining_ = 0;
    rotation_ = 1;
}

std::string
FullArnoldGrove::name() const
{
    std::ostringstream os;
    os << "AG(" << samples_ << "," << stride_ << ")";
    return os.str();
}

} // namespace pep::core
