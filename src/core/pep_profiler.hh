#ifndef PEP_CORE_PEP_PROFILER_HH
#define PEP_CORE_PEP_PROFILER_HH

/**
 * @file
 * The PEP profiler: all-the-time path-register instrumentation with
 * sampled path storage (paper Section 3). On every loop-header and
 * method-exit yieldpoint the just-completed path's number is available
 * in the path register; when the sampling controller says "sample", the
 * handler increments that path's frequency and folds the path's edges
 * into the continuous edge profile (reconstructing the edge sequence
 * the first time a path is seen, cached thereafter — Section 4.3).
 *
 * PepProfiler is also a LayoutSource: when the VM recompiles a method,
 * it supplies its continuous edge profile (falling back to the one-time
 * baseline profile while it has no samples for the method), which is
 * how PEP drives optimization in Figure 11.
 */

#include <cstdint>

#include "core/path_engine.hh"
#include "core/sampling.hh"
#include "profile/edge_profile.hh"
#include "profile/path_profile.hh"

namespace pep::core {

/** PEP runtime statistics. */
struct PepStats
{
    std::uint64_t pathsCompleted = 0;
    std::uint64_t samplesTaken = 0;
    std::uint64_t samplesRecorded = 0;
    std::uint64_t strides = 0;
    std::uint64_t firstTimeExpansions = 0;
};

/** Options for the PEP instrumentation pass. */
struct PepOptions
{
    /** Numbering scheme (the paper's default is Smart). */
    profile::NumberingScheme scheme = profile::NumberingScheme::Smart;

    /**
     * Where paths end. HeaderSplit matches the default yieldpoint
     * placement; use BackEdgeTruncate together with
     * SimParams::yieldpointsOnBackEdges (the Section 3.2 alternative,
     * which restores exact BLPP path semantics).
     */
    profile::DagMode mode = profile::DagMode::HeaderSplit;

    /** Increment placement (Direct, or Ball-Larus spanning-tree event
     *  counting; see profile/spanning_placement.hh). */
    profile::PlacementKind placement = profile::PlacementKind::Direct;

    /** k-BLPP window length (docs/KBLPP.md): sampled path ids cover
     *  windows of up to k consecutive iterations. 1 = classic PEP. */
    std::uint32_t kIterations = 1;
};

/** The hybrid instrumentation + sampling profiler. */
class PepProfiler final : public PathEngine, public vm::LayoutSource
{
  public:
    /**
     * The controller is not owned and must outlive the profiler.
     * Attach with machine.addHooks(&pep) and
     * machine.addCompileObserver(&pep); pass &pep to
     * machine.setLayoutSource() to let PEP drive optimization.
     */
    PepProfiler(vm::Machine &machine, SamplingController &controller,
                const PepOptions &options = {});

    // ExecutionHooks (sampling decisions happen at yieldpoints).
    void onYieldpoint(const vm::FrameView &frame,
                      vm::YieldpointKind kind, bool tick_fired) override;

    // LayoutSource
    const profile::MethodEdgeProfile *
    layoutProfile(bytecode::MethodId method) override;

    /** The continuous edge profile derived from sampled paths. */
    const profile::EdgeProfileSet &edgeProfile() const { return edges_; }

    /**
     * Mutable access to the continuous edge profile, for fault
     * injection only (the differ's `impossible-profile` self-test
     * corrupts one count to prove the realizability checker rejects
     * it). Mirrors Machine::versionForUpdate's role for plan state.
     */
    profile::EdgeProfileSet &edgeProfileForInjection() { return edges_; }

    const PepStats &pepStats() const { return stats_; }

    /** Drop collected profiles (e.g., between replay iterations). */
    void clearProfiles();

  protected:
    void pathCompleted(VersionProfile &vp, std::uint64_t path_number,
                       std::uint32_t thread) override;

    const profile::MethodEdgeProfile *
    freqProfileFor(bytecode::MethodId method) override;

  private:
    /**
     * Per-virtual-thread sampling state: the most recently completed
     * path (valid until the yieldpoint that follows it consumes it)
     * and the tick signal carried from any yieldpoint to the next
     * sampling opportunity. One mutator thread's completion must never
     * be sampled against another thread's yieldpoint, so this is keyed
     * by FrameView::thread. The sampling *controller* stays shared —
     * one switch/sample flag for the whole VM, as in the paper.
     */
    struct PendingSample
    {
        VersionProfile *vp = nullptr;
        std::uint64_t pathNumber = 0;
        bool valid = false;
        bool tickPending = false;
    };

    PendingSample &pendingFor(std::uint32_t thread);

    /** Fold one sampled path's edges into the continuous edge profile,
     *  mapping inlined branches to their bytecode-level counters. */
    void recordEdges(const MethodProfilingState &state,
                     const std::vector<cfg::EdgeRef> &cfg_edges);

    SamplingController &controller_;

    profile::EdgeProfileSet edges_;
    PepStats stats_;

    /** Indexed by virtual thread id; single-threaded runs use slot 0. */
    std::vector<PendingSample> pending_;
};

} // namespace pep::core

#endif // PEP_CORE_PEP_PROFILER_HH
