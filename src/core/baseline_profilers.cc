#include "core/baseline_profilers.hh"

namespace pep::core {

FullPathProfiler::FullPathProfiler(vm::Machine &machine,
                                   profile::DagMode mode,
                                   bool charge_costs,
                                   profile::NumberingScheme scheme,
                                   PathStoreKind store,
                                   profile::PlacementKind placement,
                                   std::uint32_t k_iterations)
    : PathEngine(machine, mode, scheme, charge_costs, placement,
                 k_iterations),
      store_(store)
{
}

void
FullPathProfiler::pathCompleted(VersionProfile &vp,
                                std::uint64_t path_number,
                                std::uint32_t /*thread*/)
{
    // count[r]++ — the load-increment-store / hash call that dominates
    // Ball-Larus overhead (Section 3.2).
    charge(store_ == PathStoreKind::Hash
               ? vm_.params().cost.pathStoreHashCost
               : vm_.params().cost.pathStoreArrayCost);
    vp.paths.addSample(path_number);
    ++pathsStored_;
}

InstrEdgeProfiler::InstrEdgeProfiler(vm::Machine &machine,
                                     bool charge_costs)
    : vm_(machine), chargeCosts_(charge_costs)
{
    std::vector<const bytecode::MethodCfg *> cfgs;
    cfgs.reserve(machine.numMethods());
    for (std::size_t m = 0; m < machine.numMethods(); ++m) {
        cfgs.push_back(
            &machine.info(static_cast<bytecode::MethodId>(m)).cfg);
    }
    edges_ = profile::EdgeProfileSet(cfgs);
}

void
InstrEdgeProfiler::onEdge(const vm::FrameView &frame, cfg::EdgeRef edge)
{
    // Instrument branches in optimized code only (the baseline
    // compiler already has its own edge instrumentation).
    if (frame.version->level == vm::OptLevel::Baseline)
        return;
    const auto kind = vm_.info(frame.method).cfg.terminator[edge.src];
    if (kind != bytecode::TerminatorKind::Cond &&
        kind != bytecode::TerminatorKind::Switch) {
        return;
    }
    if (chargeCosts_)
        vm_.chargeCycles(vm_.params().cost.edgeCounterCost);
    edges_.perMethod[frame.method].addEdge(edge);
}

profile::EdgeProfileSet
edgeProfileFromPaths(vm::Machine &machine, PathEngine &engine)
{
    std::vector<const bytecode::MethodCfg *> cfgs;
    cfgs.reserve(machine.numMethods());
    for (std::size_t m = 0; m < machine.numMethods(); ++m) {
        cfgs.push_back(
            &machine.info(static_cast<bytecode::MethodId>(m)).cfg);
    }
    profile::EdgeProfileSet result(cfgs);

    for (auto &[key, vp] : engine.versionProfiles()) {
        if (!vp->state->reconstructor)
            continue;
        profile::accumulateEdgeProfile(result.perMethod[key.first],
                                       vp->paths,
                                       *vp->state->reconstructor,
                                       &vp->state->kpath);
    }
    return result;
}

} // namespace pep::core
