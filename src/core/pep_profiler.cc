#include "core/pep_profiler.hh"

#include "vm/inliner.hh"

namespace pep::core {

PepProfiler::PepProfiler(vm::Machine &machine,
                         SamplingController &controller,
                         const PepOptions &options)
    : PathEngine(machine, options.mode, options.scheme,
                 /*charge_costs=*/true, options.placement,
                 options.kIterations),
      controller_(controller)
{
    std::vector<const bytecode::MethodCfg *> cfgs;
    cfgs.reserve(machine.numMethods());
    for (std::size_t m = 0; m < machine.numMethods(); ++m) {
        cfgs.push_back(
            &machine.info(static_cast<bytecode::MethodId>(m)).cfg);
    }
    edges_ = profile::EdgeProfileSet(cfgs);
}

PepProfiler::PendingSample &
PepProfiler::pendingFor(std::uint32_t thread)
{
    if (pending_.size() <= thread)
        pending_.resize(thread + 1);
    return pending_[thread];
}

void
PepProfiler::pathCompleted(VersionProfile &vp, std::uint64_t path_number,
                           std::uint32_t thread)
{
    // The register already holds the number; completing a path costs
    // nothing beyond the register ops PathEngine charged. Storage
    // happens only if the following yieldpoint samples.
    ++stats_.pathsCompleted;
    PendingSample &pending = pendingFor(thread);
    pending.vp = &vp;
    pending.pathNumber = path_number;
    pending.valid = true;
}

void
PepProfiler::onYieldpoint(const vm::FrameView &frame,
                          vm::YieldpointKind kind, bool tick_fired)
{
    PendingSample &pending = pendingFor(frame.thread);
    pending.tickPending = pending.tickPending || tick_fired;

    // Sampling opportunities are exactly the locations where BLPP
    // would update the path profile: loop headers and method exits.
    if (kind == vm::YieldpointKind::MethodEntry)
        return;

    const SampleAction action =
        controller_.onOpportunity(pending.tickPending);
    pending.tickPending = false;

    const vm::CostModel &cost = vm_.params().cost;
    switch (action) {
      case SampleAction::Idle:
        break;
      case SampleAction::Stride:
        ++stats_.strides;
        charge(cost.strideHandlerCost);
        break;
      case SampleAction::Sample: {
        ++stats_.samplesTaken;
        charge(cost.sampleHandlerCost);
        if (pending.valid) {
            ++stats_.samplesRecorded;
            profile::PathRecord &record =
                pending.vp->paths.addSample(pending.pathNumber);
            if (!record.expanded) {
                // First sample of this path: trace its edges in the
                // P-DAG (Section 3.3) and cache the expansion.
                ++stats_.firstTimeExpansions;
                profile::expandRecord(record,
                                      *pending.vp->state->reconstructor,
                                      pending.pathNumber,
                                      &pending.vp->state->kpath);
            }
            recordEdges(*pending.vp->state, record.cfgEdges);
        }
        break;
      }
    }

    // A completed path is sampleable only at the yieldpoint directly
    // following its completion.
    pending.valid = false;
}

void
PepProfiler::recordEdges(const MethodProfilingState &state,
                         const std::vector<cfg::EdgeRef> &cfg_edges)
{
    const vm::InlinedBody *inlined =
        state.compiled ? state.compiled->inlinedBody.get() : nullptr;
    if (!inlined) {
        profile::MethodEdgeProfile &method_edges =
            edges_.perMethod[state.method];
        for (const cfg::EdgeRef &edge : cfg_edges)
            method_edges.addEdge(edge);
        return;
    }
    // Inlined code: several compiled branches map to one bytecode
    // branch; update the shared original-method counters (Section
    // 4.3). Synthesized control flow has no original identity.
    for (const cfg::EdgeRef &edge : cfg_edges) {
        const auto kind = inlined->info.cfg.terminator[edge.src];
        if (kind != bytecode::TerminatorKind::Cond &&
            kind != bytecode::TerminatorKind::Switch) {
            continue;
        }
        const vm::BlockOrigin &origin = inlined->blockOrigin[edge.src];
        if (!origin.valid())
            continue;
        edges_.perMethod[origin.method].addEdge(
            cfg::EdgeRef{origin.block, edge.index});
    }
}

const profile::MethodEdgeProfile *
PepProfiler::layoutProfile(bytecode::MethodId method)
{
    // A handful of sampled paths gives a wildly skewed edge profile
    // (each path marks its edges 100%-biased); demand a minimum amount
    // of evidence before PEP's continuous profile overrides the
    // one-time profile.
    constexpr std::uint64_t kMinEdgeEvidence = 400;
    const profile::MethodEdgeProfile &own = edges_.perMethod[method];
    if (own.totalCount() >= kMinEdgeEvidence)
        return &own;
    const profile::MethodEdgeProfile &one_time =
        vm_.oneTimeEdges().perMethod[method];
    if (one_time.totalCount() > 0)
        return &one_time;
    return own.totalCount() > 0 ? &own : nullptr;
}

const profile::MethodEdgeProfile *
PepProfiler::freqProfileFor(bytecode::MethodId method)
{
    // Profile-guided profiling: place instrumentation using the edge
    // profile collected so far — PEP's own once it exists.
    return layoutProfile(method);
}

void
PepProfiler::clearProfiles()
{
    clearPathProfiles();
    edges_.clear();
    stats_ = PepStats{};
    for (PendingSample &pending : pending_)
        pending = PendingSample{};
}

} // namespace pep::core
