#ifndef PEP_CORE_PATH_ENGINE_HH
#define PEP_CORE_PATH_ENGINE_HH

/**
 * @file
 * Shared machinery for every path-profiling client: builds per-version
 * instrumentation state when the optimizing compiler runs (P-DAG,
 * numbering, plan, reconstructor), and executes the path-register
 * semantics against interpreter events. Subclasses decide what happens
 * when a path completes (store always = BLPP/perfect; store at samples
 * = PEP; store for free = ground truth).
 *
 * Matching the paper (Section 4.3), instrumentation is added only by
 * the optimizing compiler: frames running baseline code carry no state
 * and generate no path events.
 */

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "profile/instr_plan.hh"
#include "profile/kpath.hh"
#include "profile/numbering.hh"
#include "profile/path_profile.hh"
#include "profile/pdag.hh"
#include "profile/reconstruct.hh"
#include "vm/hooks.hh"
#include "vm/machine.hh"

namespace pep::core {

/** Immutable per-(method, compiled-version) profiling state. */
struct MethodProfilingState
{
    bytecode::MethodId method = 0;
    std::uint32_t version = 0;

    /** The compiled version this state instruments (owned by the
     *  Machine; nullptr for states built directly in tests). Carries
     *  the inlined body and its block-origin map when inlining is on. */
    const vm::CompiledMethod *compiled = nullptr;

    profile::PDag pdag;
    profile::Numbering numbering;
    profile::InstrumentationPlan plan;

    /** k-iteration id space over the plan's path numbers (docs/
     *  KBLPP.md). Degenerate (kEffective()==1) unless the engine was
     *  built with k_iterations > 1 and the plan is enabled. The plan
     *  itself never depends on k — the degeneracy guarantee. */
    profile::KPathScheme kpath;

    /** Built last; holds references into this struct and the CFG. */
    std::unique_ptr<profile::PathReconstructor> reconstructor;
};

/** Build the state for one method (cfg must outlive the state). */
std::unique_ptr<MethodProfilingState>
buildProfilingState(const bytecode::MethodCfg &method_cfg,
                    bytecode::MethodId method, std::uint32_t version,
                    profile::DagMode mode,
                    profile::NumberingScheme scheme,
                    const profile::MethodEdgeProfile *freq_profile,
                    profile::PlacementKind placement =
                        profile::PlacementKind::Direct,
                    std::uint32_t k_iterations = 1);

/**
 * One compiled version's profiling state plus the path frequencies
 * collected against it. Path numbers are only meaningful relative to a
 * specific numbering, so profiles are kept per version; records cache
 * their version-independent CFG-edge expansion, which metrics use to
 * merge and compare profiles across versions and numbering schemes.
 */
struct VersionProfile
{
    std::unique_ptr<MethodProfilingState> state;
    profile::MethodPathProfile paths;
};

/** Key: (method, compiled version number). */
using VersionKey = std::pair<bytecode::MethodId, std::uint32_t>;

/**
 * Base class executing path-register instrumentation. Implements
 * ExecutionHooks and CompileObserver; attach to a Machine with both
 * addHooks() and addCompileObserver().
 */
class PathEngine : public vm::ExecutionHooks, public vm::CompileObserver
{
  public:
    /**
     * @param machine    the VM (used for cost charging and CFG access)
     * @param mode       P-DAG construction (PEP uses HeaderSplit)
     * @param scheme     numbering scheme
     * @param charge_costs false for zero-overhead ground-truth use
     * @param placement  increment placement strategy
     * @param k_iterations k-BLPP window length (1 = classic BLPP;
     *                   per-version kEffective may be lower when the
     *                   composite id space would overflow)
     */
    PathEngine(vm::Machine &machine, profile::DagMode mode,
               profile::NumberingScheme scheme, bool charge_costs,
               profile::PlacementKind placement =
                   profile::PlacementKind::Direct,
               std::uint32_t k_iterations = 1);

    // CompileObserver
    void onCompile(bytecode::MethodId method,
                   const vm::CompiledMethod &version) override;

    // ExecutionHooks
    void onMethodEntry(const vm::FrameView &frame) override;
    void onMethodExit(const vm::FrameView &frame) override;
    void onEdge(const vm::FrameView &frame, cfg::EdgeRef edge) override;
    void onEdgeFast(const vm::FrameView &frame, cfg::EdgeRef edge,
                    std::uint32_t flat_id) override;
    void onLoopHeader(const vm::FrameView &frame,
                      cfg::BlockId block) override;
    void onOsr(const vm::FrameView &frame, cfg::BlockId header) override;

    /** Look up the state of a compiled version (nullptr if none,
     *  e.g. baseline code or overflowed numbering). */
    const MethodProfilingState *
    stateFor(bytecode::MethodId method, std::uint32_t version) const;

    /** All versions this engine instrumented, with their profiles,
     *  ordered by (method, version). The pointers stay valid until the
     *  engine is destroyed; profiles are mutable because metrics expand
     *  path records lazily. */
    std::vector<std::pair<VersionKey, VersionProfile *>>
    versionProfiles();
    std::vector<std::pair<VersionKey, const VersionProfile *>>
    versionProfiles() const;

    /** Drop all collected path frequencies (instrumentation state is
     *  kept). */
    void clearPathProfiles();

    /** Number of methods whose numbering overflowed. */
    std::size_t overflowCount() const { return overflowCount_; }

    /** The requested k-BLPP window length this engine was built with. */
    std::uint32_t kIterations() const { return kIterations_; }

    /**
     * Fault injection (testing/differ.hh InjectKind::TruncatedWindow):
     * silently discard partial windows at flush points (method exit,
     * OSR) instead of emitting the short k-path. The exact oracle keeps
     * counting those windows, so the differ's totals/segment checks
     * must catch the discrepancy. Meaningless when kEffective == 1
     * everywhere (there are no partial windows to drop).
     */
    void
    setTruncateWindowInjection(bool enabled)
    {
        truncateWindowInjection_ = enabled;
    }

  protected:
    /**
     * A path completed with the given number, against `vp.state`'s
     * numbering. Fired at loop headers and method exits (HeaderSplit
     * mode) or back edges and exits (BackEdgeTruncate mode). `thread`
     * is the virtual mutator thread whose path register completed —
     * profilers with sampling state keep it per thread.
     */
    virtual void pathCompleted(VersionProfile &vp,
                               std::uint64_t path_number,
                               std::uint32_t thread) = 0;

    /**
     * Edge-frequency profile used by Smart numbering when compiling
     * `method`; default is the machine's one-time baseline profile.
     * PEP overrides this to use its own continuous profile once it has
     * one (profile-guided profiling, Section 3.4).
     */
    virtual const profile::MethodEdgeProfile *
    freqProfileFor(bytecode::MethodId method);

    /** Charge cycles if this engine charges costs. */
    void
    charge(std::uint64_t cycles)
    {
        if (chargeCosts_)
            vm_.chargeCycles(cycles);
    }

    vm::Machine &vm_;
    const profile::DagMode mode_;
    const profile::NumberingScheme scheme_;
    const bool chargeCosts_;
    const profile::PlacementKind placement_;

  private:
    /**
     * Per-frame profiling state. The action/base/header pointers cache
     * the frame's enabled plan so the per-edge hot path is one dense
     * array load instead of a nested-vector walk; they are rebound on
     * entry and OSR and are null exactly when vp is null.
     */
    struct FrameState
    {
        VersionProfile *vp = nullptr;
        const profile::EdgeAction *actions = nullptr;
        const std::uint32_t *edgeBase = nullptr;
        const profile::HeaderAction *headers = nullptr;
        std::uint64_t reg = 0;

        /** k-BLPP iteration window: the completed segment numbers not
         *  yet folded into a composite id. Always empty while the
         *  version's kEffective is 1 (the degenerate fast path never
         *  touches it). */
        std::vector<std::uint64_t> win;

        void
        bind(VersionProfile &profile)
        {
            vp = &profile;
            const profile::InstrumentationPlan &plan =
                profile.state->plan;
            actions = plan.flatEdgeActions.data();
            edgeBase = plan.edgeBase.data();
            headers = plan.headerActions.data();
        }
    };

    /** Shared tail of onEdge/onEdgeFast: execute one edge action
     *  against the frame's path register. */
    void applyEdgeAction(FrameState &fs,
                         const profile::EdgeAction &action,
                         std::uint32_t thread);

    /** One Ball-Larus segment completed: with kEffective == 1 this is
     *  pathCompleted verbatim; otherwise the number joins the frame's
     *  window, which emits one composite id per kEffective segments. */
    void segmentCompleted(FrameState &fs, std::uint64_t number,
                          std::uint32_t thread);

    /** Emit the frame's partial window (method exit, OSR) as a short
     *  k-path — or silently drop it under the truncated-window
     *  injection. */
    void flushWindow(FrameState &fs, std::uint32_t thread);

    /** Version with an enabled-or-disabled plan, nullptr if the engine
     *  never saw (method, version) compile. */
    VersionProfile *findVersion(bytecode::MethodId method,
                                std::uint32_t version) const;

    /** The frame stack of one virtual mutator thread, grown on first
     *  use. Single-threaded machines only ever touch stack 0. */
    std::vector<FrameState> &stackFor(std::uint32_t thread);

    /** Storage indexed [method][version]; baseline compiles consume
     *  version numbers without reaching the engine, so gaps are null. */
    std::vector<std::vector<std::unique_ptr<VersionProfile>>> versions_;

    /** Per-thread frame stacks (the per-thread path registers live in
     *  the FrameStates), indexed by FrameView::thread. */
    std::vector<std::vector<FrameState>> stacks_;
    std::size_t overflowCount_ = 0;
    const std::uint32_t kIterations_;
    bool truncateWindowInjection_ = false;
};

} // namespace pep::core

#endif // PEP_CORE_PATH_ENGINE_HH
