#ifndef PEP_WORKLOAD_PARALLEL_RUNNER_HH
#define PEP_WORKLOAD_PARALLEL_RUNNER_HH

/**
 * @file
 * Thread-pool fan-out for independent suite cells. Each (benchmark,
 * config) cell of a bench harness builds its own Machine, so the cells
 * share no mutable state and can run on all cores; jobs write their
 * results into pre-sized per-index slots, and the caller composes
 * output from the slots in index order after run() returns — making
 * parallel output byte-identical to a serial loop.
 */

#include <cstddef>
#include <functional>

namespace pep::workload {

class ParallelRunner
{
  public:
    /** @param workers worker-thread count; 0 means defaultWorkers(). */
    explicit ParallelRunner(unsigned workers = 0);

    /** Worker threads run() will use (always >= 1). */
    unsigned workers() const { return workers_; }

    /**
     * Worker count from the PEP_BENCH_THREADS environment variable,
     * falling back to the hardware concurrency (at least 1).
     */
    static unsigned defaultWorkers();

    /**
     * Run fn(0) .. fn(count - 1), distributing indices over the
     * workers; returns once every job finished. With one worker (or at
     * most one job) everything runs inline on the calling thread. If
     * jobs throw, the first exception in index order is rethrown after
     * all jobs complete.
     */
    void run(std::size_t count,
             const std::function<void(std::size_t)> &fn) const;

  private:
    unsigned workers_;
};

} // namespace pep::workload

#endif // PEP_WORKLOAD_PARALLEL_RUNNER_HH
