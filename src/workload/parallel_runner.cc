#include "workload/parallel_runner.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace pep::workload {

ParallelRunner::ParallelRunner(unsigned workers)
    : workers_(workers != 0 ? workers : defaultWorkers())
{
}

unsigned
ParallelRunner::defaultWorkers()
{
    if (const char *env = std::getenv("PEP_BENCH_THREADS")) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed >= 1)
            return static_cast<unsigned>(parsed);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
}

void
ParallelRunner::run(std::size_t count,
                    const std::function<void(std::size_t)> &fn) const
{
    if (count == 0)
        return;
    if (workers_ == 1 || count == 1) {
        // Same contract as the threaded path: every job runs, then
        // the first failure (lowest index) is rethrown.
        std::exception_ptr first;
        for (std::size_t i = 0; i < count; ++i) {
            try {
                fn(i);
            } catch (...) {
                if (!first)
                    first = std::current_exception();
            }
        }
        if (first)
            std::rethrow_exception(first);
        return;
    }

    // Work stealing off a shared counter; exceptions are parked per
    // index so the one rethrown does not depend on thread timing.
    std::atomic<std::size_t> next{0};
    std::vector<std::exception_ptr> errors(count);
    auto worker = [&] {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                return;
            try {
                fn(i);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        }
    };

    const std::size_t spawn =
        std::min<std::size_t>(workers_, count);
    std::vector<std::thread> threads;
    threads.reserve(spawn);
    for (std::size_t t = 0; t < spawn; ++t)
        threads.emplace_back(worker);
    for (std::thread &thread : threads)
        thread.join();

    for (const std::exception_ptr &error : errors)
        if (error)
            std::rethrow_exception(error);
}

} // namespace pep::workload
