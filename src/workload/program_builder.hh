#ifndef PEP_WORKLOAD_PROGRAM_BUILDER_HH
#define PEP_WORKLOAD_PROGRAM_BUILDER_HH

/**
 * @file
 * A programmatic bytecode builder with labels and forward references,
 * used by the synthetic workload generator (the text assembler is for
 * humans; this is for code that writes code).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "bytecode/method.hh"

namespace pep::workload {

/** Forward-referenceable branch target. */
struct Label
{
    std::uint32_t id = 0;
};

/** Builds one method. */
class MethodBuilder
{
  public:
    MethodBuilder(std::string name, std::uint32_t num_args,
                  bool returns_value);

    // ---- Labels -------------------------------------------------------
    Label newLabel();

    /** Bind a label to the next instruction. */
    void bind(Label label);

    // ---- Locals -------------------------------------------------------
    /** Allocate a fresh local slot (arguments occupy the first slots). */
    std::uint32_t newLocal();

    /** Slot of argument `i`. */
    std::uint32_t argSlot(std::uint32_t i) const { return i; }

    // ---- Instruction emitters ------------------------------------------
    void iconst(std::int32_t v);
    void iload(std::uint32_t slot);
    void istore(std::uint32_t slot);
    void iinc(std::uint32_t slot, std::int32_t delta);
    void emit(bytecode::Opcode op); // operand-free opcodes
    void branch(bytecode::Opcode op, Label target); // cond branches
    void jump(Label target);
    void tableswitch(std::int32_t lo, Label default_target,
                     const std::vector<Label> &cases);
    void invoke(bytecode::MethodId callee);
    void ret();  // return (void methods)
    void iret(); // ireturn (value methods)

    /** Number of instructions emitted so far. */
    std::size_t codeSize() const { return code_.size(); }

    /** Finalize: patch labels; panics on unbound labels. */
    bytecode::Method build();

  private:
    bytecode::Method method_;
    std::vector<bytecode::Instr> code_;
    std::vector<std::int32_t> labelPc_; // -1 = unbound

    struct Patch
    {
        bytecode::Pc pc;
        enum class Field { A, B, Table } field;
        std::size_t tableIndex;
        std::uint32_t label;
    };
    std::vector<Patch> patches_;
    std::uint32_t nextLocal_;
};

/** Builds a whole program. */
class ProgramBuilder
{
  public:
    /**
     * Reserve a method slot (so calls can reference it before its body
     * exists) and get its id.
     */
    bytecode::MethodId declareMethod(const std::string &name,
                                     std::uint32_t num_args,
                                     bool returns_value);

    /** Install the built body for a declared method. The builder's
     *  name/signature must match the declaration. */
    void define(bytecode::MethodId id, MethodBuilder &builder);

    /** Signature info of a declared method. */
    std::uint32_t numArgs(bytecode::MethodId id) const;
    bool returnsValue(bytecode::MethodId id) const;
    const std::string &methodName(bytecode::MethodId id) const;

    void setMain(bytecode::MethodId id) { program_.mainMethod = id; }
    void setGlobalSize(std::uint32_t size)
    {
        program_.globalSize = size;
    }
    void setInitialGlobals(std::vector<std::int32_t> values)
    {
        program_.initialGlobals = std::move(values);
    }

    /** Finalize and verify; fatal on verification failure. */
    bytecode::Program build();

  private:
    bytecode::Program program_;
    std::vector<bool> defined_;
};

} // namespace pep::workload

#endif // PEP_WORKLOAD_PROGRAM_BUILDER_HH
