#ifndef PEP_WORKLOAD_SUITE_HH
#define PEP_WORKLOAD_SUITE_HH

/**
 * @file
 * The benchmark suite: fifteen synthetic programs standing in for the
 * paper's SPEC JVM98 (compress, jess, raytrace, db, javac, mpegaudio,
 * mtrt, jack), pseudojbb, and the DaCapo subset (antlr, bloat, fop,
 * pmd, ps, xalan). Names are kept so benchmark tables read like the
 * paper's figures; each program's *shape* (loopiness, branchiness,
 * method counts, run length, phase drift) is parameterized to give the
 * suite the diversity the evaluation needs. hsqldb is omitted, as in
 * the paper.
 */

#include <vector>

#include "workload/synthetic.hh"

namespace pep::workload {

/** The fifteen benchmark specs. */
const std::vector<WorkloadSpec> &standardSuite();

/**
 * The suite with run lengths scaled by `scale` (0 < scale <= 1) for
 * quick test runs.
 */
std::vector<WorkloadSpec> scaledSuite(double scale);

/** Find a spec by name (fatal if absent). */
const WorkloadSpec &suiteSpec(const std::string &name);

} // namespace pep::workload

#endif // PEP_WORKLOAD_SUITE_HH
