#include "workload/suite.hh"

#include <algorithm>

#include "support/panic.hh"

namespace pep::workload {

namespace {

std::vector<WorkloadSpec>
makeSuite()
{
    std::vector<WorkloadSpec> suite;

    auto add = [&](WorkloadSpec spec) {
        suite.push_back(std::move(spec));
    };

    // ---- SPEC JVM98 stand-ins -----------------------------------------
    {
        // compress: few very hot tight loops, highly biased branches.
        WorkloadSpec s;
        s.name = "compress";
        s.seed = 101;
        s.hotMethods = 3;
        s.leafMethods = 2;
        s.coldMethods = 6;
        s.elementsPerBody = 4;
        s.fillerPerArm = 3; // tight loops: high instrumentation density
        s.biasLo = 0.82;
        s.biasHi = 0.98;
        s.switchProb = 0.05;
        s.nestedLoopProb = 0.20;
        s.outerIterations = 385;
        s.unitTrips = 48;
        add(s);
    }
    {
        // jess: rule engine — many methods, moderate biases.
        WorkloadSpec s;
        s.name = "jess";
        s.seed = 102;
        s.hotMethods = 8;
        s.leafMethods = 6;
        s.coldMethods = 14;
        s.elementsPerBody = 9;
        s.callProb = 0.30;
        s.outerIterations = 231;
        s.unitTrips = 24;
        add(s);
    }
    {
        // raytrace: deep call chains, few switches.
        WorkloadSpec s;
        s.name = "raytrace";
        s.seed = 103;
        s.hotMethods = 5;
        s.leafMethods = 6;
        s.coldMethods = 8;
        s.callProb = 0.40;
        s.switchProb = 0.0;
        s.outerIterations = 264;
        s.unitTrips = 30;
        add(s);
    }
    {
        // db: index lookups — switch-heavy.
        WorkloadSpec s;
        s.name = "db";
        s.seed = 104;
        s.hotMethods = 4;
        s.leafMethods = 3;
        s.coldMethods = 7;
        s.switchCases = 6;
        s.switchProb = 0.35;
        s.callProb = 0.10;
        s.outerIterations = 286;
        s.unitTrips = 34;
        add(s);
    }
    {
        // javac: large branchy CFGs, lots of cold code.
        WorkloadSpec s;
        s.name = "javac";
        s.seed = 105;
        s.hotMethods = 9;
        s.leafMethods = 5;
        s.coldMethods = 20;
        s.elementsPerBody = 10;
        s.driftFraction = 0.14;
        s.outerIterations = 198;
        s.unitTrips = 22;
        add(s);
    }
    {
        // mpegaudio: arithmetic kernels, few branches, long loops.
        WorkloadSpec s;
        s.name = "mpegaudio";
        s.seed = 106;
        s.hotMethods = 3;
        s.leafMethods = 2;
        s.coldMethods = 5;
        s.elementsPerBody = 3;
        s.fillerPerArm = 8;
        s.biasLo = 0.85;
        s.biasHi = 0.99;
        s.switchProb = 0.0;
        s.outerIterations = 341;
        s.unitTrips = 44;
        add(s);
    }
    {
        // mtrt: multithreaded raytracer's sequential shape.
        WorkloadSpec s;
        s.name = "mtrt";
        s.seed = 107;
        s.hotMethods = 6;
        s.leafMethods = 7;
        s.coldMethods = 9;
        s.callProb = 0.38;
        s.switchProb = 0.05;
        s.outerIterations = 253;
        s.unitTrips = 28;
        add(s);
    }
    {
        // jack: parser generator — short-running (compile-heavy).
        WorkloadSpec s;
        s.name = "jack";
        s.seed = 108;
        s.hotMethods = 7;
        s.leafMethods = 4;
        s.coldMethods = 12;
        s.elementsPerBody = 6;
        s.outerIterations = 71;
        s.unitTrips = 20;
        add(s);
    }

    // ---- pseudojbb -------------------------------------------------------
    {
        WorkloadSpec s;
        s.name = "pseudojbb";
        s.seed = 109;
        s.hotMethods = 10;
        s.leafMethods = 8;
        s.coldMethods = 16;
        s.switchCases = 5;
        s.switchProb = 0.25; // transaction dispatch
        s.elementsPerBody = 5;
        s.outerIterations = 412;
        s.unitTrips = 26;
        add(s);
    }

    // ---- DaCapo stand-ins --------------------------------------------------
    {
        // antlr: many small branchy methods.
        WorkloadSpec s;
        s.name = "antlr";
        s.seed = 110;
        s.hotMethods = 11;
        s.leafMethods = 8;
        s.coldMethods = 18;
        s.elementsPerBody = 6;
        s.callProb = 0.28;
        s.outerIterations = 187;
        s.unitTrips = 18;
        add(s);
    }
    {
        // bloat: bytecode optimizer — deep calls, irregular biases.
        WorkloadSpec s;
        s.name = "bloat";
        s.seed = 111;
        s.hotMethods = 8;
        s.leafMethods = 6;
        s.coldMethods = 14;
        s.callProb = 0.34;
        s.driftFraction = 0.12;
        s.outerIterations = 231;
        s.unitTrips = 24;
        add(s);
    }
    {
        // fop: XSL-FO formatter — moderate everything.
        WorkloadSpec s;
        s.name = "fop";
        s.seed = 112;
        s.hotMethods = 6;
        s.leafMethods = 5;
        s.coldMethods = 15;
        s.elementsPerBody = 5;
        s.outerIterations = 165;
        s.unitTrips = 26;
        add(s);
    }
    {
        // pmd: source analyzer — branchy with nested loops.
        WorkloadSpec s;
        s.name = "pmd";
        s.seed = 113;
        s.hotMethods = 7;
        s.leafMethods = 5;
        s.coldMethods = 12;
        s.nestedLoopProb = 0.28;
        s.elementsPerBody = 7;
        s.outerIterations = 209;
        s.unitTrips = 22;
        add(s);
    }
    {
        // ps: postscript interpreter — loop-heavy, few methods.
        WorkloadSpec s;
        s.name = "ps";
        s.seed = 114;
        s.hotMethods = 4;
        s.leafMethods = 3;
        s.coldMethods = 8;
        s.nestedLoopProb = 0.35;
        s.elementsPerBody = 5;
        s.fillerPerArm = 1; // very tight interpreter-style loops with
        s.biasLo = 0.50;    // unpredictable branches: the worst case
        s.biasHi = 0.80;    // for instrumentation density (paper's gcc
                            // analogue)
        s.outerIterations = 308;
        s.unitTrips = 38;
        add(s);
    }
    {
        // xalan: XSLT — switch and branch mix, phases from template
        // selection.
        WorkloadSpec s;
        s.name = "xalan";
        s.seed = 115;
        s.hotMethods = 9;
        s.leafMethods = 6;
        s.coldMethods = 13;
        s.switchCases = 5;
        s.switchProb = 0.22;
        s.driftFraction = 0.16;
        s.outerIterations = 275;
        s.unitTrips = 24;
        add(s);
    }

    return suite;
}

} // namespace

const std::vector<WorkloadSpec> &
standardSuite()
{
    static const std::vector<WorkloadSpec> suite = makeSuite();
    return suite;
}

std::vector<WorkloadSpec>
scaledSuite(double scale)
{
    PEP_ASSERT(scale > 0.0 && scale <= 1.0);
    std::vector<WorkloadSpec> suite = standardSuite();
    for (WorkloadSpec &spec : suite) {
        spec.outerIterations = std::max<std::uint64_t>(
            20, static_cast<std::uint64_t>(
                    static_cast<double>(spec.outerIterations) * scale));
    }
    return suite;
}

const WorkloadSpec &
suiteSpec(const std::string &name)
{
    for (const WorkloadSpec &spec : standardSuite()) {
        if (spec.name == name)
            return spec;
    }
    support::fatal("unknown benchmark '" + name + "'");
}

} // namespace pep::workload
