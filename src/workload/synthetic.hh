#ifndef PEP_WORKLOAD_SYNTHETIC_HH
#define PEP_WORKLOAD_SYNTHETIC_HH

/**
 * @file
 * Synthetic benchmark generator. Stands in for the paper's SPEC JVM98 /
 * pseudojbb / DaCapo programs (not available here): generates bytecode
 * programs whose *control-flow behaviour* has the properties the
 * evaluation depends on — a small set of hot, loopy methods that the
 * adaptive system promotes to optimized code; skewed branch biases so
 * hot paths exist; multiway switches; nested loops; calls; a tail of
 * cold methods that stay baseline-compiled; and mild *phase drift* (a
 * configurable fraction of branches change bias partway through the
 * run), which is what separates one-time from continuous profiles
 * (Sections 6.5).
 *
 * Structure of a generated program:
 *   main            — startup (runs cold methods once), then the outer
 *                     transaction loop; flips the drifting branches'
 *                     bias thresholds (stored in globals) at the phase
 *                     switch point
 *   unit            — calls each hot method with its trip count
 *   hot_<i>         — a loop over diamonds / switches / nested loops /
 *                     leaf calls; the code PEP actually profiles
 *   leaf_<i>        — small helpers called from hot loop bodies
 *   cold_<i>        — startup-only methods (stay baseline)
 *
 * Branch randomness comes from the VM's deterministic Irnd stream, so
 * any two runs with equal seeds execute identical control flow
 * regardless of attached profilers — which is what makes cross-
 * configuration overhead ratios meaningful.
 */

#include <cstdint>
#include <string>

#include "bytecode/method.hh"

namespace pep::workload {

/** Parameters of one synthetic benchmark. */
struct WorkloadSpec
{
    std::string name = "synthetic";
    std::uint64_t seed = 1;

    // ---- Program shape -------------------------------------------------
    std::uint32_t hotMethods = 6;
    std::uint32_t leafMethods = 4;
    std::uint32_t coldMethods = 10;

    /** Body elements per hot-method loop body. */
    std::uint32_t elementsPerBody = 9;

    /** Arithmetic filler instructions per element arm. */
    std::uint32_t fillerPerArm = 6;

    /** Switch case count (0 disables switch elements). */
    std::uint32_t switchCases = 4;

    /** Probability a body element is a nested loop / a leaf call /
     *  a switch (the rest are biased diamonds). */
    double nestedLoopProb = 0.10;
    double callProb = 0.20;
    double switchProb = 0.15;

    /** Nested loop trip mask (trips = Irnd & mask; power of two - 1). */
    std::uint32_t innerTripMask = 7;

    // ---- Branch behaviour -----------------------------------------------
    /** Diamond taken-bias range (drawn uniformly per branch). */
    double biasLo = 0.52;
    double biasHi = 0.82;

    /** Fraction of diamonds whose bias drifts at the phase switch. */
    double driftFraction = 0.18;

    /** Magnitude of the bias drift (subtracted/added, clamped). */
    double driftMagnitude = 0.5;

    // ---- Run length ------------------------------------------------------
    std::uint64_t outerIterations = 500;

    /** Fraction of the run completed when the phase switches. */
    double phaseSwitchAt = 0.35;

    /** Loop trips per hot-method call (scaled per method). */
    std::uint32_t unitTrips = 32;
};

/** Generate the benchmark program for a spec (verified). */
bytecode::Program generateWorkload(const WorkloadSpec &spec);

} // namespace pep::workload

#endif // PEP_WORKLOAD_SYNTHETIC_HH
