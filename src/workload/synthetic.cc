#include "workload/synthetic.hh"

#include <algorithm>
#include <vector>

#include "support/panic.hh"
#include "support/rng.hh"
#include "workload/program_builder.hh"

namespace pep::workload {

namespace {

using bytecode::MethodId;
using bytecode::Opcode;
using support::Rng;

/** One drifting branch: its bias lives in a global slot. */
struct DriftSlot
{
    std::uint32_t slot;
    std::int32_t initialThreshold;
    std::int32_t shiftedThreshold;
};

/** Shared generation context. */
struct Gen
{
    const WorkloadSpec &spec;
    Rng rng;
    std::vector<DriftSlot> driftSlots;
    std::vector<MethodId> leafIds;

    explicit Gen(const WorkloadSpec &s) : spec(s), rng(s.seed) {}

    std::int32_t
    biasThreshold(double bias) const
    {
        return static_cast<std::int32_t>(bias * 65536.0);
    }

    double
    drawBias()
    {
        return spec.biasLo +
               rng.nextDouble() * (spec.biasHi - spec.biasLo);
    }
};

/** A few cheap arithmetic instructions mutating a scratch local. */
void
emitFiller(MethodBuilder &b, Gen &gen, std::uint32_t scratch,
           std::uint32_t count)
{
    for (std::uint32_t i = 0; i < count; ++i) {
        switch (gen.rng.nextBounded(3)) {
          case 0:
            b.iinc(scratch, static_cast<std::int32_t>(
                                gen.rng.nextRange(1, 7)));
            break;
          case 1:
            b.iload(scratch);
            b.iconst(static_cast<std::int32_t>(
                gen.rng.nextRange(3, 1000)));
            b.emit(Opcode::Ixor);
            b.istore(scratch);
            break;
          default:
            b.iload(scratch);
            b.iconst(static_cast<std::int32_t>(
                gen.rng.nextRange(1, 5)));
            b.emit(Opcode::Ishr);
            b.istore(scratch);
            break;
        }
    }
}

/** Emit a biased diamond: if ((Irnd & 0xffff) < T) then ... else ... */
void
emitDiamond(MethodBuilder &b, Gen &gen, std::uint32_t scratch)
{
    const double bias = gen.drawBias();
    const bool drifts = gen.rng.nextBool(gen.spec.driftFraction);

    b.emit(Opcode::Irnd);
    b.iconst(0xffff);
    b.emit(Opcode::Iand);
    if (drifts) {
        // Threshold read from a global slot so the phase switch can
        // move it at run time.
        const auto slot = static_cast<std::uint32_t>(
            1 + gen.driftSlots.size());
        double shifted = bias - gen.spec.driftMagnitude;
        if (shifted < 0.02)
            shifted = std::min(0.98, bias + gen.spec.driftMagnitude);
        gen.driftSlots.push_back(
            DriftSlot{slot, gen.biasThreshold(bias),
                      gen.biasThreshold(shifted)});
        b.iconst(static_cast<std::int32_t>(slot));
        b.emit(Opcode::Gload);
    } else {
        b.iconst(gen.biasThreshold(bias));
    }

    Label taken = b.newLabel();
    Label join = b.newLabel();
    b.branch(Opcode::IfIcmplt, taken);
    emitFiller(b, gen, scratch, gen.spec.fillerPerArm);
    b.jump(join);
    b.bind(taken);
    emitFiller(b, gen, scratch, gen.spec.fillerPerArm);
    b.bind(join);
}

/** Emit a multiway switch over (Irnd & mask). */
void
emitSwitch(MethodBuilder &b, Gen &gen, std::uint32_t scratch)
{
    const std::uint32_t cases = gen.spec.switchCases;
    PEP_ASSERT(cases > 0);
    // Mask wider than the case range skews flow toward the default.
    std::uint32_t mask = 1;
    while (mask < cases)
        mask <<= 1;
    mask = mask * 2 - 1;

    b.emit(Opcode::Irnd);
    b.iconst(static_cast<std::int32_t>(mask));
    b.emit(Opcode::Iand);

    std::vector<Label> case_labels;
    case_labels.reserve(cases);
    for (std::uint32_t i = 0; i < cases; ++i)
        case_labels.push_back(b.newLabel());
    Label def = b.newLabel();
    Label join = b.newLabel();
    b.tableswitch(0, def, case_labels);
    for (std::uint32_t i = 0; i < cases; ++i) {
        b.bind(case_labels[i]);
        emitFiller(b, gen, scratch, gen.spec.fillerPerArm);
        b.jump(join);
    }
    b.bind(def);
    emitFiller(b, gen, scratch, gen.spec.fillerPerArm);
    b.bind(join);
}

/** Emit a nested loop with a random trip count. */
void
emitNestedLoop(MethodBuilder &b, Gen &gen, std::uint32_t scratch)
{
    const std::uint32_t counter = b.newLocal();
    b.emit(Opcode::Irnd);
    b.iconst(static_cast<std::int32_t>(gen.spec.innerTripMask));
    b.emit(Opcode::Iand);
    b.istore(counter);

    Label header = b.newLabel();
    Label done = b.newLabel();
    b.bind(header);
    b.iload(counter);
    b.branch(Opcode::Ifle, done);
    emitDiamond(b, gen, scratch);
    b.iinc(counter, -1);
    b.jump(header);
    b.bind(done);
}

/** Emit one loop-body element per the spec's element mix. */
void
emitElement(MethodBuilder &b, Gen &gen, std::uint32_t scratch,
            bool allow_calls)
{
    const double roll = gen.rng.nextDouble();
    double acc = gen.spec.nestedLoopProb;
    if (roll < acc) {
        emitNestedLoop(b, gen, scratch);
        return;
    }
    acc += gen.spec.callProb;
    if (allow_calls && !gen.leafIds.empty() && roll < acc) {
        b.invoke(gen.leafIds[gen.rng.nextBounded(gen.leafIds.size())]);
        return;
    }
    acc += gen.spec.switchProb;
    if (gen.spec.switchCases > 0 && roll < acc) {
        emitSwitch(b, gen, scratch);
        return;
    }
    emitDiamond(b, gen, scratch);
}

/** Body of a leaf helper: a few diamonds, no loops. */
void
defineLeaf(ProgramBuilder &pb, MethodId id, Gen &gen)
{
    MethodBuilder b(pb.methodName(id), 0, false);
    const std::uint32_t scratch = b.newLocal();
    b.iconst(1);
    b.istore(scratch);
    const std::uint32_t diamonds =
        1 + static_cast<std::uint32_t>(gen.rng.nextBounded(2));
    for (std::uint32_t i = 0; i < diamonds; ++i)
        emitDiamond(b, gen, scratch);
    b.ret();
    pb.define(id, b);
}

/** Body of a hot method: loop over the element mix; arg 0 = trips. */
void
defineHot(ProgramBuilder &pb, MethodId id, Gen &gen)
{
    MethodBuilder b(pb.methodName(id), 1, false);
    const std::uint32_t trips = b.argSlot(0);
    const std::uint32_t scratch = b.newLocal();
    b.iconst(7);
    b.istore(scratch);

    Label header = b.newLabel();
    Label done = b.newLabel();
    b.bind(header);
    b.iload(trips);
    b.branch(Opcode::Ifle, done);
    for (std::uint32_t e = 0; e < gen.spec.elementsPerBody; ++e)
        emitElement(b, gen, scratch, /*allow_calls=*/true);
    b.iinc(trips, -1);
    b.jump(header);
    b.bind(done);
    b.ret();
    pb.define(id, b);
}

/** Body of a cold (startup-only) method: a short bounded loop. */
void
defineCold(ProgramBuilder &pb, MethodId id, Gen &gen)
{
    MethodBuilder b(pb.methodName(id), 0, false);
    const std::uint32_t scratch = b.newLocal();
    const std::uint32_t counter = b.newLocal();
    b.iconst(1);
    b.istore(scratch);
    b.iconst(static_cast<std::int32_t>(gen.rng.nextRange(2, 6)));
    b.istore(counter);

    Label header = b.newLabel();
    Label done = b.newLabel();
    b.bind(header);
    b.iload(counter);
    b.branch(Opcode::Ifle, done);
    emitDiamond(b, gen, scratch);
    emitDiamond(b, gen, scratch);
    b.iinc(counter, -1);
    b.jump(header);
    b.bind(done);
    b.ret();
    pb.define(id, b);
}

} // namespace

bytecode::Program
generateWorkload(const WorkloadSpec &spec)
{
    Gen gen(spec);
    ProgramBuilder pb;

    // Declarations first so calls can reference any method.
    const MethodId main_id = pb.declareMethod("main", 0, false);
    const MethodId unit_id = pb.declareMethod("unit", 0, false);
    std::vector<MethodId> hot_ids;
    std::vector<MethodId> cold_ids;
    for (std::uint32_t i = 0; i < spec.leafMethods; ++i) {
        gen.leafIds.push_back(
            pb.declareMethod("leaf_" + std::to_string(i), 0, false));
    }
    for (std::uint32_t i = 0; i < spec.hotMethods; ++i) {
        hot_ids.push_back(
            pb.declareMethod("hot_" + std::to_string(i), 1, false));
    }
    for (std::uint32_t i = 0; i < spec.coldMethods; ++i) {
        cold_ids.push_back(
            pb.declareMethod("cold_" + std::to_string(i), 0, false));
    }

    for (MethodId id : gen.leafIds)
        defineLeaf(pb, id, gen);
    for (MethodId id : hot_ids)
        defineHot(pb, id, gen);
    for (MethodId id : cold_ids)
        defineCold(pb, id, gen);

    // unit: call each hot method with its (varying) trip count.
    {
        MethodBuilder b("unit", 0, false);
        for (std::size_t i = 0; i < hot_ids.size(); ++i) {
            const double weight = 0.4 + 1.6 * gen.rng.nextDouble();
            const auto trips = std::max<std::int32_t>(
                2, static_cast<std::int32_t>(spec.unitTrips * weight));
            b.iconst(trips);
            b.invoke(hot_ids[i]);
        }
        b.ret();
        pb.define(unit_id, b);
    }

    // main: startup (cold methods), then the outer loop with the phase
    // switch.
    {
        MethodBuilder b("main", 0, false);
        for (MethodId id : cold_ids)
            b.invoke(id);

        const std::uint32_t iter = b.newLocal();
        const auto outer =
            static_cast<std::int32_t>(spec.outerIterations);
        // The loop counts down; the phase switches when `iter` hits
        // outer * (1 - phaseSwitchAt).
        const auto switch_when = static_cast<std::int32_t>(
            spec.outerIterations -
            static_cast<std::uint64_t>(
                spec.phaseSwitchAt *
                static_cast<double>(spec.outerIterations)));
        b.iconst(outer);
        b.istore(iter);

        Label header = b.newLabel();
        Label done = b.newLabel();
        Label no_switch = b.newLabel();
        b.bind(header);
        b.iload(iter);
        b.branch(Opcode::Ifle, done);

        b.iload(iter);
        b.iconst(switch_when);
        b.branch(Opcode::IfIcmpne, no_switch);
        for (const DriftSlot &drift : gen.driftSlots) {
            b.iconst(drift.shiftedThreshold);
            b.iconst(static_cast<std::int32_t>(drift.slot));
            b.emit(Opcode::Gstore);
        }
        b.bind(no_switch);

        b.invoke(unit_id);
        b.iinc(iter, -1);
        b.jump(header);
        b.bind(done);
        b.ret();
        pb.define(main_id, b);
    }

    pb.setMain(main_id);
    pb.setGlobalSize(
        static_cast<std::uint32_t>(1 + gen.driftSlots.size()));
    std::vector<std::int32_t> initial(1 + gen.driftSlots.size(), 0);
    for (const DriftSlot &drift : gen.driftSlots)
        initial[drift.slot] = drift.initialThreshold;
    pb.setInitialGlobals(std::move(initial));

    return pb.build();
}

} // namespace pep::workload
