#include "workload/program_builder.hh"

#include "bytecode/verifier.hh"
#include "support/panic.hh"

namespace pep::workload {

MethodBuilder::MethodBuilder(std::string name, std::uint32_t num_args,
                             bool returns_value)
{
    method_.name = std::move(name);
    method_.numArgs = num_args;
    method_.returnsValue = returns_value;
    nextLocal_ = num_args;
}

Label
MethodBuilder::newLabel()
{
    const Label label{static_cast<std::uint32_t>(labelPc_.size())};
    labelPc_.push_back(-1);
    return label;
}

void
MethodBuilder::bind(Label label)
{
    PEP_ASSERT_MSG(labelPc_[label.id] == -1, "label bound twice");
    labelPc_[label.id] = static_cast<std::int32_t>(code_.size());
}

std::uint32_t
MethodBuilder::newLocal()
{
    return nextLocal_++;
}

void
MethodBuilder::iconst(std::int32_t v)
{
    code_.push_back({bytecode::Opcode::Iconst, v, 0, {}});
}

void
MethodBuilder::iload(std::uint32_t slot)
{
    code_.push_back({bytecode::Opcode::Iload,
                     static_cast<std::int32_t>(slot), 0, {}});
}

void
MethodBuilder::istore(std::uint32_t slot)
{
    code_.push_back({bytecode::Opcode::Istore,
                     static_cast<std::int32_t>(slot), 0, {}});
}

void
MethodBuilder::iinc(std::uint32_t slot, std::int32_t delta)
{
    code_.push_back({bytecode::Opcode::Iinc,
                     static_cast<std::int32_t>(slot), delta, {}});
}

void
MethodBuilder::emit(bytecode::Opcode op)
{
    code_.push_back({op, 0, 0, {}});
}

void
MethodBuilder::branch(bytecode::Opcode op, Label target)
{
    PEP_ASSERT(bytecode::isCondBranch(op));
    patches_.push_back({static_cast<bytecode::Pc>(code_.size()),
                        Patch::Field::A, 0, target.id});
    code_.push_back({op, 0, 0, {}});
}

void
MethodBuilder::jump(Label target)
{
    patches_.push_back({static_cast<bytecode::Pc>(code_.size()),
                        Patch::Field::A, 0, target.id});
    code_.push_back({bytecode::Opcode::Goto, 0, 0, {}});
}

void
MethodBuilder::tableswitch(std::int32_t lo, Label default_target,
                           const std::vector<Label> &cases)
{
    const auto pc = static_cast<bytecode::Pc>(code_.size());
    patches_.push_back({pc, Patch::Field::B, 0, default_target.id});
    bytecode::Instr instr{bytecode::Opcode::Tableswitch, lo, 0, {}};
    instr.table.assign(cases.size(), 0);
    for (std::size_t i = 0; i < cases.size(); ++i)
        patches_.push_back({pc, Patch::Field::Table, i, cases[i].id});
    code_.push_back(std::move(instr));
}

void
MethodBuilder::invoke(bytecode::MethodId callee)
{
    code_.push_back({bytecode::Opcode::Invoke,
                     static_cast<std::int32_t>(callee), 0, {}});
}

void
MethodBuilder::ret()
{
    code_.push_back({bytecode::Opcode::Return, 0, 0, {}});
}

void
MethodBuilder::iret()
{
    code_.push_back({bytecode::Opcode::Ireturn, 0, 0, {}});
}

bytecode::Method
MethodBuilder::build()
{
    for (const Patch &patch : patches_) {
        const std::int32_t pc = labelPc_[patch.label];
        PEP_ASSERT_MSG(pc >= 0, "unbound label in method "
                                    << method_.name);
        bytecode::Instr &instr = code_[patch.pc];
        switch (patch.field) {
          case Patch::Field::A:
            instr.a = pc;
            break;
          case Patch::Field::B:
            instr.b = pc;
            break;
          case Patch::Field::Table:
            instr.table[patch.tableIndex] = pc;
            break;
        }
    }
    method_.numLocals = nextLocal_;
    method_.code = std::move(code_);
    return std::move(method_);
}

bytecode::MethodId
ProgramBuilder::declareMethod(const std::string &name,
                              std::uint32_t num_args, bool returns_value)
{
    const auto id =
        static_cast<bytecode::MethodId>(program_.methods.size());
    bytecode::Method stub;
    stub.name = name;
    stub.numArgs = num_args;
    stub.numLocals = num_args;
    stub.returnsValue = returns_value;
    program_.methods.push_back(std::move(stub));
    defined_.push_back(false);
    return id;
}

void
ProgramBuilder::define(bytecode::MethodId id, MethodBuilder &builder)
{
    PEP_ASSERT(id < program_.methods.size());
    PEP_ASSERT_MSG(!defined_[id], "method defined twice");
    bytecode::Method built = builder.build();
    PEP_ASSERT(built.name == program_.methods[id].name);
    PEP_ASSERT(built.numArgs == program_.methods[id].numArgs);
    PEP_ASSERT(built.returnsValue == program_.methods[id].returnsValue);
    program_.methods[id] = std::move(built);
    defined_[id] = true;
}

std::uint32_t
ProgramBuilder::numArgs(bytecode::MethodId id) const
{
    return program_.methods[id].numArgs;
}

bool
ProgramBuilder::returnsValue(bytecode::MethodId id) const
{
    return program_.methods[id].returnsValue;
}

const std::string &
ProgramBuilder::methodName(bytecode::MethodId id) const
{
    return program_.methods[id].name;
}

bytecode::Program
ProgramBuilder::build()
{
    for (std::size_t i = 0; i < defined_.size(); ++i) {
        PEP_ASSERT_MSG(defined_[i], "method "
                                        << program_.methods[i].name
                                        << " declared but not defined");
    }
    const bytecode::VerifyResult verified =
        bytecode::verifyProgram(program_);
    if (!verified.ok) {
        support::fatal("generated program failed verification: " +
                       verified.error);
    }
    return std::move(program_);
}

} // namespace pep::workload
