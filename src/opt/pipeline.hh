#ifndef PEP_OPT_PIPELINE_HH
#define PEP_OPT_PIPELINE_HH

/**
 * @file
 * The profile-guided reoptimization pipeline (docs/OPT.md): a
 * vm::CompilePass that runs on every optimizing-tier compile and
 * applies, in order,
 *
 *   1. hot-path cloning (path_clone.hh) — replace the version's body
 *      with a synthesized copy whose hot join-crossing path is
 *      private, when the consumer knows such a path;
 *   2. chain layout (chain_layout.hh) — Pettis-Hansen block chains
 *      and the branch-direction layout derived from them, over the
 *      version's (possibly cloned) CFG with profile weights folded
 *      through BlockOrigin;
 *   3. the clone's forced directions — the on-path branch directions
 *      the clone builder pinned, overlaid last so the cloned path is
 *      straight-line regardless of what the averaged profile says.
 *
 * Because passes run inside Machine::compile() before observers and
 * template translation, the template rule holds by construction and
 * the PEP instrumentation plan is built for the CFG the pass produced.
 *
 * The PEP_OPT environment variable selects passes for a whole test
 * run: a comma list of "layout" and "clone", or "none". Unset means
 * "not configured" (pipelineOptionsFromEnv returns nullopt) so code
 * paths that install the pipeline explicitly keep their own defaults.
 */

#include <cstdint>
#include <optional>

#include "opt/chain_layout.hh"
#include "opt/path_clone.hh"
#include "opt/profile_consumer.hh"
#include "vm/machine.hh"

namespace pep::opt {

/** Which passes run, and their knobs. */
struct PipelineOptions
{
    bool layout = true;
    bool clone = true;
    ChainLayoutOptions chainOptions;
    CloneOptions cloneOptions;
};

/** Parse PEP_OPT ("layout,clone" / "layout" / "clone" / "none");
 *  nullopt when the variable is unset. Unknown tokens are ignored. */
std::optional<PipelineOptions> pipelineOptionsFromEnv();

/** The pass. Register on a Machine with addCompilePass(); the
 *  consumer must outlive the machine's last compile. */
class OptPipeline final : public vm::CompilePass
{
  public:
    struct Stats
    {
        std::uint64_t runs = 0;
        std::uint64_t layoutsApplied = 0;
        std::uint64_t clonesApplied = 0;

        /** Clone pass ran but found no valid plan. */
        std::uint64_t clonesDeclined = 0;
    };

    explicit OptPipeline(ProfileConsumer &consumer,
                         PipelineOptions options = {})
        : consumer_(consumer), options_(options)
    {
    }

    void run(vm::Machine &machine, vm::CompiledMethod &cm) override;

    const Stats &stats() const { return stats_; }
    const PipelineOptions &options() const { return options_; }

  private:
    ProfileConsumer &consumer_;
    PipelineOptions options_;
    Stats stats_;
};

} // namespace pep::opt

#endif // PEP_OPT_PIPELINE_HH
