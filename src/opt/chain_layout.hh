#ifndef PEP_OPT_CHAIN_LAYOUT_HH
#define PEP_OPT_CHAIN_LAYOUT_HH

/**
 * @file
 * Pettis-Hansen style basic-block chain layout (docs/OPT.md). Bottom-up
 * chain merging over profile-weighted CFG edges: every hot block starts
 * as its own chain; edges are visited by descending weight and merge
 * the chain ending in their source with the chain starting at their
 * target. The resulting block order and the branch-direction layout
 * derived from it are scored by a static fallthrough/icache cost model
 * built on CostModel::layoutMissPenalty and icacheBreakPenalty.
 *
 * Knobs follow Propeller's (SNIPPETS.md snippet 1): a hot-cutoff
 * percentile that splits hot from cold blocks by cumulative weight
 * coverage, a maximum chain length, a minimum flow ratio below which
 * an edge cannot merge chains, and an icache penalty factor scaling
 * the break term of the scorer.
 *
 * The simulator charges cycles for *direction misses* only
 * (CostModel::layoutMissPenalty — see docs/ENGINE.md), so the
 * branchLayout this pass derives is what runtime cycles realize; the
 * block order is metadata (CompiledMethod::layoutOrder) plus the input
 * to the static scorer that picks between the chain order and the
 * natural order.
 */

#include <cstdint>
#include <vector>

#include "bytecode/cfg_builder.hh"
#include "cfg/graph.hh"
#include "vm/cost_model.hh"

namespace pep::opt {

/** Propeller-style chain-layout knobs. */
struct ChainLayoutOptions
{
    /** Blocks covering this fraction of total block weight (hottest
     *  first) are laid out by chain merging; the rest are appended
     *  cold, in natural order. */
    double hotCutoffPercentile = 0.95;

    /** Maximum blocks per merged chain (bounds the straight-line run
     *  a single merge decision can commit to). */
    std::uint32_t maxChainLength = 64;

    /** An edge may merge chains only if it carries at least this
     *  fraction of its source block's outgoing weight. */
    double minFlowRatio = 0.05;

    /** Scales CostModel::icacheBreakPenalty in the static scorer. */
    double icachePenaltyFactor = 1.0;
};

/** Result of the pass for one method CFG. */
struct ChainLayout
{
    /** All code blocks, in layout order (hot chains then cold tail). */
    std::vector<cfg::BlockId> order;

    /** Per block: branch-direction layout in CompiledMethod's
     *  convention (Cond: 1 taken / 0 fall-through / -1 unknown;
     *  Switch: predicted successor index or -1). */
    std::vector<std::int16_t> branchLayout;

    /** Static score of (order, branchLayout) — lower is better. */
    double estimatedCost = 0.0;

    /** Static score of the natural order with no profile information
     *  (every branch laid out for fall-through / default). */
    double baselineCost = 0.0;
};

/**
 * Score a candidate layout: expected direction-miss cycles
 * (layoutMissPenalty times the weight that goes against each block's
 * laid-out direction) plus the icache break term (icacheBreakPenalty
 * times the weight of edges whose target does not immediately follow
 * their source in `order`, scaled by icachePenaltyFactor).
 */
double estimateLayoutCost(
    const bytecode::MethodCfg &method_cfg,
    const std::vector<std::vector<std::uint64_t>> &edge_weights,
    const std::vector<cfg::BlockId> &order,
    const std::vector<std::int16_t> &branch_layout,
    const vm::CostModel &cost, const ChainLayoutOptions &options);

/**
 * Compute the chain layout of one method CFG under the given edge
 * weights (a table parallel to the graph's successor lists — the
 * caller maps synthesized-body blocks through their origins before
 * calling). Fully deterministic: ties break on block ids and edge
 * indices. With an all-zero weight table the result is the natural
 * order with an all-unknown layout.
 */
ChainLayout computeChainLayout(
    const bytecode::MethodCfg &method_cfg,
    const std::vector<std::vector<std::uint64_t>> &edge_weights,
    const vm::CostModel &cost, const ChainLayoutOptions &options);

} // namespace pep::opt

#endif // PEP_OPT_CHAIN_LAYOUT_HH
