#include "opt/pipeline.hh"

#include <cstdlib>
#include <string>

namespace pep::opt {

std::optional<PipelineOptions>
pipelineOptionsFromEnv()
{
    const char *env = std::getenv("PEP_OPT");
    if (!env)
        return std::nullopt;
    PipelineOptions options;
    options.layout = false;
    options.clone = false;
    std::string value(env);
    std::size_t pos = 0;
    while (pos <= value.size()) {
        const std::size_t comma = value.find(',', pos);
        const std::string token = value.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        if (token == "layout")
            options.layout = true;
        else if (token == "clone")
            options.clone = true;
        // "none" and unknown tokens enable nothing.
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return options;
}

namespace {

/**
 * Profile weights for the version's CFG, folded through BlockOrigin:
 * a synthesized block reads the counter row of its original block
 * (the paper's Section 4.3 sharing, in the layout direction).
 */
std::vector<std::vector<std::uint64_t>>
foldWeights(const vm::Machine &machine, const vm::CompiledMethod &cm,
            const bytecode::MethodCfg &version_cfg,
            ProfileConsumer &consumer)
{
    const cfg::Graph &graph = version_cfg.graph;
    std::vector<std::vector<std::uint64_t>> weights(graph.numBlocks());
    for (cfg::BlockId b = 0; b < graph.numBlocks(); ++b)
        weights[b].assign(graph.succs(b).size(), 0);
    (void)machine;
    for (cfg::BlockId b = 0; b < graph.numBlocks(); ++b) {
        const vm::BlockOrigin origin =
            cm.inlinedBody ? cm.inlinedBody->blockOrigin[b]
                           : vm::BlockOrigin{cm.method, b};
        if (!origin.valid())
            continue;
        const profile::MethodEdgeProfile *profile =
            consumer.edges(origin.method);
        if (!profile)
            continue;
        const auto &counts = profile->counts();
        if (origin.block >= counts.size())
            continue;
        const auto &row = counts[origin.block];
        for (std::size_t i = 0;
             i < row.size() && i < weights[b].size(); ++i)
            weights[b][i] = row[i];
    }
    return weights;
}

bool
anyWeight(const std::vector<std::vector<std::uint64_t>> &weights)
{
    for (const auto &row : weights)
        for (std::uint64_t w : row)
            if (w > 0)
                return true;
    return false;
}

} // namespace

void
OptPipeline::run(vm::Machine &machine, vm::CompiledMethod &cm)
{
    ++stats_.runs;
    const bytecode::MethodCfg &original_cfg = machine.info(cm.method).cfg;

    // 1. Cloning. Only plain bodies are cloned — a version the inliner
    // already synthesized keeps its body (its path profiles live in
    // the synthesized coordinate space; see PepConsumer).
    std::vector<std::int16_t> forced;
    if (options_.clone && !cm.inlinedBody) {
        std::optional<ClonePlan> plan;
        for (const HotPath &path : consumer_.hotPaths(cm.method)) {
            plan = planFromPath(original_cfg, path,
                                options_.cloneOptions);
            if (plan)
                break;
        }
        if (!plan) {
            const auto weights =
                foldWeights(machine, cm, original_cfg, consumer_);
            plan = selectClonePath(original_cfg, weights,
                                   options_.cloneOptions);
        }
        if (plan) {
            ClonedBody cloned = buildClonedBody(
                machine.program(), cm.method, original_cfg, *plan);
            if (cloned.body) {
                cm.inlinedBody = std::move(cloned.body);
                cm.cloneApplied = true;
                forced = std::move(cloned.forcedLayout);
                // The layout vector must match the new CFG; the
                // layout step below repopulates it.
                cm.branchLayout.assign(
                    cm.inlinedBody->info.cfg.graph.numBlocks(), -1);
                ++stats_.clonesApplied;
            }
        } else {
            ++stats_.clonesDeclined;
        }
    }

    const bytecode::MethodCfg &version_cfg =
        cm.inlinedBody ? cm.inlinedBody->info.cfg : original_cfg;

    // 2. Chain layout over the (possibly cloned) CFG.
    if (options_.layout) {
        const auto weights =
            foldWeights(machine, cm, version_cfg, consumer_);
        if (anyWeight(weights)) {
            ChainLayout layout = computeChainLayout(
                version_cfg, weights, machine.params().cost,
                options_.chainOptions);
            cm.branchLayout = std::move(layout.branchLayout);
            cm.layoutOrder = std::move(layout.order);
            ++stats_.layoutsApplied;
        }
    }

    // 3. The clone's pinned on-path directions win over the averaged
    // profile — inside the copy the continuation is known exactly.
    for (cfg::BlockId b = 0; b < forced.size(); ++b) {
        if (forced[b] >= 0 && b < cm.branchLayout.size())
            cm.branchLayout[b] = forced[b];
    }
}

} // namespace pep::opt
