#ifndef PEP_OPT_REOPT_DRIVER_HH
#define PEP_OPT_REOPT_DRIVER_HH

/**
 * @file
 * Online reoptimization driver (docs/OPT.md; the paper's Figures
 * 10-11 live). Watches a windowed profile (runtime/profile_window.hh)
 * and, when the hot direction of a method's branches shifts by more
 * than a threshold of the method's branch mass since the layout it
 * last applied, recompiles the method through Machine::compileNow() —
 * which re-runs the whole pass pipeline, so the new version picks up
 * chain layout and cloning for the *current* phase. Because every
 * reoptimization is an ordinary compile, the template rule holds by
 * construction and the compile journal records it for the clone audit.
 *
 * Not thread-safe: poll() must run on the machine's thread, between
 * iterations (the windowed profile is typically fed by a transport
 * drain on the same thread; see docs/RUNTIME.md).
 */

#include <cstdint>
#include <vector>

#include "bytecode/cfg_builder.hh"
#include "runtime/profile_window.hh"
#include "vm/machine.hh"

namespace pep::opt {

/**
 * What the driver does when it decides a method's phase changed.
 *
 *  - Recompile: Machine::compileNow() — re-runs the whole pass
 *    pipeline (layout, chain layout, cloning) and installs a fresh
 *    version.
 *  - Retranslate: rewrite the *installed* version's branch layout in
 *    place from the window's hot directions and invalidate its cached
 *    template stream (the escape/sanitize pair). The next execution
 *    retranslates against the new layout, so the threaded engine's
 *    fused traces re-straighten along the current phase's hot paths —
 *    without paying for a full recompile or creating a new version.
 */
enum class ReoptAction : std::uint8_t
{
    Recompile,
    Retranslate,
};

/** Phase-change detection knobs. */
struct ReoptOptions
{
    /** Recompile when more than this fraction of a method's branch
     *  mass changed its hot direction since the last applied layout. */
    double shiftThreshold = 0.25;

    /** Response to a detected shift (and to a first sighting). */
    ReoptAction action = ReoptAction::Recompile;

    /** Ignore methods whose windowed branch mass is below this. */
    double minMass = 1.0;

    /** Minimum window advances between recompiles of one method. */
    std::uint64_t minAdvancesBetween = 1;
};

/** Drives recompilation from a windowed profile. */
class ReoptDriver
{
  public:
    struct Stats
    {
        std::uint64_t polls = 0;

        /** Recompiles triggered by a detected direction shift (the
         *  first, snapshot-establishing recompile is not a shift). */
        std::uint64_t phaseShifts = 0;
        std::uint64_t recompiles = 0;

        /** In-place relayout + template invalidations (the
         *  ReoptAction::Retranslate response; counted in `recompiles`'
         *  place, never in addition to it). */
        std::uint64_t retranslations = 0;
    };

    /** Both the machine and the window must outlive the driver. */
    ReoptDriver(vm::Machine &machine,
                const runtime::WindowedProfile &window,
                ReoptOptions options = {});

    /**
     * Check every optimized method against the window and recompile
     * the ones whose phase changed (plus any hot method seen for the
     * first time, to apply its initial profile-guided layout).
     * Returns the number of methods recompiled. No-op until the
     * window advances past the previous poll.
     */
    std::size_t poll();

    const Stats &stats() const { return stats_; }

  private:
    /** Hot direction of each branch block at the last applied
     *  layout. */
    struct MethodSnapshot
    {
        std::vector<std::int32_t> hotDir;
        bool valid = false;
        std::uint64_t atAdvance = 0;
    };

    vm::Machine &machine_;
    const runtime::WindowedProfile &window_;
    ReoptOptions options_;
    std::vector<MethodSnapshot> snapshots_;
    std::uint64_t lastPollAdvance_ = ~0ull;
    Stats stats_;
};

} // namespace pep::opt

#endif // PEP_OPT_REOPT_DRIVER_HH
