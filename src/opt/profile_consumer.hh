#ifndef PEP_OPT_PROFILE_CONSUMER_HH
#define PEP_OPT_PROFILE_CONSUMER_HH

/**
 * @file
 * The profile side of the optimizer interface (docs/OPT.md). The VM's
 * LayoutSource answers exactly one question — "edge counts for this
 * method?" — which made the built-in layout predictor the only
 * possible profile consumer. ProfileConsumer widens the contract so a
 * pass pipeline can ask for edge counts, *hot observed paths* (what
 * the cloning pass feeds on), and a freshness generation (what the
 * online reoptimization driver keys phase detection on), while every
 * existing profile carrier plugs in through a thin adapter:
 *
 *  - LayoutSourceConsumer wraps any vm::LayoutSource (the one-time
 *    baseline profile, FixedLayoutSource snapshots, PepProfiler's
 *    continuous edge profile);
 *  - WindowedProfileConsumer wraps a runtime::WindowedProfile (the
 *    ring-transport/EWMA view), rounding decayed weights to counts;
 *  - PepConsumer wraps a PepProfiler directly and additionally serves
 *    hot paths from its sampled path tables, reconstructed to CFG edge
 *    sequences (k-iteration composite ids included).
 */

#include <cstdint>
#include <vector>

#include "bytecode/cfg_builder.hh"
#include "cfg/graph.hh"
#include "profile/edge_profile.hh"

namespace pep::core {
class PepProfiler;
}
namespace pep::runtime {
class WindowedProfile;
}
namespace pep::vm {
class LayoutSource;
class Machine;
}

namespace pep::opt {

/** One hot observed path: consecutive CFG edges of one method
 *  (dst of edges[i] == src of edges[i+1]), with its observed weight. */
struct HotPath
{
    bytecode::MethodId method = 0;
    std::vector<cfg::EdgeRef> edges;
    std::uint64_t weight = 0;
};

/** What the optimizer consumes from a profiler. */
class ProfileConsumer
{
  public:
    virtual ~ProfileConsumer() = default;

    /** Edge profile of a method, or nullptr for "no information". */
    virtual const profile::MethodEdgeProfile *
    edges(bytecode::MethodId method) = 0;

    /** Hot observed paths of a method, hottest first. Default: none
     *  (edge-only carriers; the cloning pass then falls back to a
     *  greedy walk over edge weights). */
    virtual std::vector<HotPath>
    hotPaths(bytecode::MethodId method)
    {
        (void)method;
        return {};
    }

    /** Monotonic freshness counter: bumps when the underlying profile
     *  materially changed (a window advanced, samples arrived). The
     *  reoptimization driver compares generations to skip no-op
     *  epochs. Default: always 0 (static snapshot). */
    virtual std::uint64_t generation() const { return 0; }
};

/** Adapts any vm::LayoutSource (one-time, fixed, PEP continuous). */
class LayoutSourceConsumer final : public ProfileConsumer
{
  public:
    explicit LayoutSourceConsumer(vm::LayoutSource &source)
        : source_(source)
    {
    }

    const profile::MethodEdgeProfile *
    edges(bytecode::MethodId method) override;

  private:
    vm::LayoutSource &source_;
};

/**
 * Adapts a runtime::WindowedProfile: decayed edge weights are rounded
 * to integer counts and materialized lazily, once per window advance
 * (generation == advances). Paths in the window are keyed by path
 * number without a reconstructor, so this adapter serves edges only.
 */
class WindowedProfileConsumer final : public ProfileConsumer
{
  public:
    /** The machine supplies the CFG shapes; both it and the window
     *  must outlive the adapter. */
    WindowedProfileConsumer(const vm::Machine &machine,
                            const runtime::WindowedProfile &window);

    const profile::MethodEdgeProfile *
    edges(bytecode::MethodId method) override;

    std::uint64_t generation() const override;

  private:
    /** Rebuild the materialized integer profiles if the window
     *  advanced since the last build. */
    void refresh();

    const vm::Machine &machine_;
    const runtime::WindowedProfile &window_;
    std::vector<profile::MethodEdgeProfile> materialized_;
    std::uint64_t builtAtAdvance_ = ~0ull;
};

/**
 * Adapts a core::PepProfiler: edges from its continuous edge profile,
 * hot paths from its sampled per-version path tables (reconstructed
 * through the version's numbering, k-iteration windows expanded to
 * their full CFG edge sequence). Versions running a synthesized body
 * (inlined or cloned) are skipped — their path edges live in the
 * synthesized CFG's coordinate space, not the method's.
 */
class PepConsumer final : public ProfileConsumer
{
  public:
    explicit PepConsumer(core::PepProfiler &pep,
                         std::size_t max_paths_per_method = 8)
        : pep_(pep), maxPaths_(max_paths_per_method)
    {
    }

    const profile::MethodEdgeProfile *
    edges(bytecode::MethodId method) override;

    std::vector<HotPath> hotPaths(bytecode::MethodId method) override;

    std::uint64_t generation() const override;

  private:
    core::PepProfiler &pep_;
    std::size_t maxPaths_;
};

} // namespace pep::opt

#endif // PEP_OPT_PROFILE_CONSUMER_HH
