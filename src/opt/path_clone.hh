#ifndef PEP_OPT_PATH_CLONE_HH
#define PEP_OPT_PATH_CLONE_HH

/**
 * @file
 * Hot-path cloning (docs/OPT.md). A hot observed path b1..bn that
 * enters through a join block b1 cannot be laid out straight-line in
 * place: b1's other predecessors share its code, so the layout must
 * average over every context. Cloning duplicates the path's blocks as
 * a private copy appended after the original code, retargets one
 * anchor edge a->b1 into the copy, and leaves every off-path edge of
 * the copy pointing back at the original blocks. Inside the copy the
 * on-path direction of every internal branch is *known*, so the
 * optimizer pins it (ClonedBody::forcedLayout) and the path executes
 * with zero direction misses; if the path is a cycle (some bn->b1 edge
 * exists) the copy is closed into a private loop so steady-state
 * iterations stay in cloned code.
 *
 * The product is an ordinary vm::InlinedBody — the same container the
 * inliner produces — so frames, OSR (identity rootPcMap), layout,
 * instrumentation planning, and bytecode-level branch counters all
 * work through the existing BlockOrigin machinery with no new cases.
 */

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "bytecode/cfg_builder.hh"
#include "bytecode/method.hh"
#include "cfg/graph.hh"
#include "opt/profile_consumer.hh"
#include "vm/inliner.hh"

namespace pep::opt {

/** Cloning policy knobs. */
struct CloneOptions
{
    /** Maximum path blocks to clone (longer paths are truncated). */
    std::uint32_t maxPathBlocks = 8;

    /** Minimum path blocks worth cloning (below this the copy has no
     *  internal branch to specialize). */
    std::uint32_t minPathBlocks = 2;

    /** Minimum observed weight of the anchor edge / path. */
    std::uint64_t minPathWeight = 1;
};

/** A validated cloning decision on one method's original CFG. */
struct ClonePlan
{
    /** Block whose edge into the path head gets retargeted. */
    cfg::BlockId anchor = cfg::kInvalidBlock;

    /** Successor index of the anchor edge (anchor -> blocks[0]). */
    std::uint32_t anchorEdgeIndex = 0;

    /** The path blocks b1..bn, in order; b1 is a join block. */
    std::vector<cfg::BlockId> blocks;

    /** Successor index of each internal on-path edge
     *  (blocks[i] -> blocks[i+1]); size blocks.size()-1. */
    std::vector<std::uint32_t> edgeIndex;

    /** Observed weight that motivated the plan. */
    std::uint64_t weight = 0;
};

/** The synthesized body plus what only the planner knows about it. */
struct ClonedBody
{
    /** nullptr when the plan could not be realized. */
    std::unique_ptr<vm::InlinedBody> body;

    /** Per synthesized-CFG block: branch direction to pin so the
     *  cloned path runs straight-line (CompiledMethod convention),
     *  -1 = leave to the layout pass. Only clone-region blocks with an
     *  on-path Cond/Switch terminator are ever pinned. */
    std::vector<std::int16_t> forcedLayout;

    /** Synthesized block id of the clone of blocks[0]. */
    cfg::BlockId cloneHead = cfg::kInvalidBlock;

    /** First synthesized pc of the clone region (== original method
     *  code size; everything below is the unchanged original code). */
    bytecode::Pc cloneStartPc = 0;

    /** True when some bn->b1 edge was retargeted into the copy,
     *  closing it into a private loop. */
    bool loopClosed = false;
};

/**
 * Validate an observed hot path against the original CFG and turn it
 * into a clone plan: the first edge must be a retargetable anchor
 * (Goto, the taken leg of a Cond, or any Switch leg — never a
 * positional fall-through), the head must be a join block, and the
 * path is truncated at maxPathBlocks or at the first repeated block
 * (a k-iteration path wrapping a loop repeats its header; the
 * truncated plan then closes the loop in the copy). Returns nullopt
 * when no valid plan of at least minPathBlocks remains.
 */
std::optional<ClonePlan>
planFromPath(const bytecode::MethodCfg &method_cfg, const HotPath &path,
             const CloneOptions &options);

/**
 * Greedy fallback for edge-only profiles: anchor at the hottest
 * retargetable edge into a join block, then repeatedly follow the
 * hottest successor edge until the path repeats, goes cold, or hits
 * maxPathBlocks. Deterministic: ties break on block id, then edge
 * index.
 */
std::optional<ClonePlan>
selectClonePath(const bytecode::MethodCfg &method_cfg,
                const std::vector<std::vector<std::uint64_t>> &weights,
                const CloneOptions &options);

/**
 * Realize a plan: synthesize the cloned body for `method` (which must
 * not itself be a synthesized body). The result verifies against the
 * program, has an identity rootPcMap, and carries BlockOrigin records
 * mapping every terminator — original region and clone region alike —
 * to its original block, so folding the copy's profile onto the
 * original CFG is exact (the differ's check 9 proves this against the
 * oracle).
 */
ClonedBody
buildClonedBody(const bytecode::Program &program,
                bytecode::MethodId method,
                const bytecode::MethodCfg &method_cfg,
                const ClonePlan &plan);

} // namespace pep::opt

#endif // PEP_OPT_PATH_CLONE_HH
