#include "opt/chain_layout.hh"

#include <algorithm>
#include <cstddef>

#include "support/panic.hh"

namespace pep::opt {

namespace {

std::uint64_t
edgeWeight(const std::vector<std::vector<std::uint64_t>> &weights,
           cfg::BlockId src, std::uint32_t index)
{
    if (src >= weights.size() || index >= weights[src].size())
        return 0;
    return weights[src][index];
}

/** Inflow of every block (weight arriving over its incoming edges). */
std::vector<std::uint64_t>
blockInflow(const cfg::Graph &graph,
            const std::vector<std::vector<std::uint64_t>> &weights)
{
    std::vector<std::uint64_t> inflow(graph.numBlocks(), 0);
    for (cfg::BlockId b = 0; b < graph.numBlocks(); ++b) {
        const auto &succs = graph.succs(b);
        for (std::uint32_t i = 0; i < succs.size(); ++i)
            inflow[succs[i]] += edgeWeight(weights, b, i);
    }
    return inflow;
}

/**
 * Derive the branch-direction layout for `order`: the hotter direction
 * becomes primary; adjacency in `order` breaks exact ties; a branch
 * with no weight at all stays unknown (-1).
 */
std::vector<std::int16_t>
deriveBranchLayout(const bytecode::MethodCfg &method_cfg,
                   const std::vector<std::vector<std::uint64_t>> &weights,
                   const std::vector<cfg::BlockId> &order)
{
    const cfg::Graph &graph = method_cfg.graph;
    std::vector<cfg::BlockId> next(graph.numBlocks(), cfg::kInvalidBlock);
    for (std::size_t i = 0; i + 1 < order.size(); ++i)
        next[order[i]] = order[i + 1];

    std::vector<std::int16_t> layout(graph.numBlocks(), -1);
    for (cfg::BlockId b = 0; b < graph.numBlocks(); ++b) {
        const auto &succs = graph.succs(b);
        switch (method_cfg.terminator[b]) {
        case bytecode::TerminatorKind::Cond: {
            PEP_ASSERT(succs.size() == 2);
            const std::uint64_t taken = edgeWeight(weights, b, 0);
            const std::uint64_t fall = edgeWeight(weights, b, 1);
            if (taken == 0 && fall == 0)
                break; // no information: stay unknown
            if (taken > fall)
                layout[b] = 1;
            else if (fall > taken)
                layout[b] = 0;
            else // exact tie: predict whichever target follows us
                layout[b] = next[b] == succs[0] ? 1 : 0;
            break;
        }
        case bytecode::TerminatorKind::Switch: {
            std::uint64_t best = 0;
            std::int32_t best_index = -1;
            for (std::uint32_t i = 0; i < succs.size(); ++i) {
                const std::uint64_t w = edgeWeight(weights, b, i);
                if (w > best ||
                    (w == best && best_index >= 0 && w > 0 &&
                     next[b] == succs[i] &&
                     next[b] != succs[static_cast<std::uint32_t>(
                         best_index)])) {
                    best = w;
                    best_index = static_cast<std::int32_t>(i);
                }
            }
            if (best > 0)
                layout[b] = static_cast<std::int16_t>(best_index);
            break;
        }
        default:
            break;
        }
    }
    return layout;
}

} // namespace

double
estimateLayoutCost(const bytecode::MethodCfg &method_cfg,
                   const std::vector<std::vector<std::uint64_t>> &weights,
                   const std::vector<cfg::BlockId> &order,
                   const std::vector<std::int16_t> &branch_layout,
                   const vm::CostModel &cost,
                   const ChainLayoutOptions &options)
{
    const cfg::Graph &graph = method_cfg.graph;
    std::vector<cfg::BlockId> next(graph.numBlocks(), cfg::kInvalidBlock);
    for (std::size_t i = 0; i + 1 < order.size(); ++i)
        next[order[i]] = order[i + 1];

    double total = 0.0;
    for (cfg::BlockId b = 0; b < graph.numBlocks(); ++b) {
        if (!method_cfg.isCodeBlock(b))
            continue;
        const auto &succs = graph.succs(b);

        // Direction misses: weight flowing against the laid-out
        // direction pays layoutMissPenalty, exactly as the engines
        // charge it at run time.
        std::uint32_t predicted = ~0u;
        switch (method_cfg.terminator[b]) {
        case bytecode::TerminatorKind::Cond:
            predicted = branch_layout[b] == 1 ? 0u : 1u;
            break;
        case bytecode::TerminatorKind::Switch:
            predicted =
                (branch_layout[b] >= 0 &&
                 static_cast<std::size_t>(branch_layout[b]) < succs.size())
                    ? static_cast<std::uint32_t>(branch_layout[b])
                    : static_cast<std::uint32_t>(succs.size() - 1);
            break;
        default:
            break;
        }
        if (predicted != ~0u) {
            for (std::uint32_t i = 0; i < succs.size(); ++i) {
                if (i == predicted)
                    continue;
                total += static_cast<double>(cost.layoutMissPenalty) *
                         static_cast<double>(edgeWeight(weights, b, i));
            }
        }

        // Chain breaks: weight leaving for a code block that does not
        // immediately follow us in the layout pays the modeled i-cache
        // refill. Edges to the synthetic exit never break a chain.
        for (std::uint32_t i = 0; i < succs.size(); ++i) {
            const cfg::BlockId dst = succs[i];
            if (!method_cfg.isCodeBlock(dst) || dst == next[b])
                continue;
            total += options.icachePenaltyFactor *
                     static_cast<double>(cost.icacheBreakPenalty) *
                     static_cast<double>(edgeWeight(weights, b, i));
        }
    }
    return total;
}

ChainLayout
computeChainLayout(const bytecode::MethodCfg &method_cfg,
                   const std::vector<std::vector<std::uint64_t>> &weights,
                   const vm::CostModel &cost,
                   const ChainLayoutOptions &options)
{
    const cfg::Graph &graph = method_cfg.graph;

    std::vector<cfg::BlockId> natural;
    for (cfg::BlockId b = 0; b < graph.numBlocks(); ++b)
        if (method_cfg.isCodeBlock(b))
            natural.push_back(b);

    ChainLayout result;
    result.baselineCost = estimateLayoutCost(
        method_cfg, weights, natural,
        std::vector<std::int16_t>(graph.numBlocks(), -1), cost, options);

    const std::vector<std::uint64_t> inflow = blockInflow(graph, weights);
    std::uint64_t total_weight = 0;
    for (cfg::BlockId b : natural)
        total_weight += inflow[b];

    if (total_weight == 0) {
        // No profile: keep the natural order, predict nothing.
        result.order = natural;
        result.branchLayout.assign(graph.numBlocks(), -1);
        result.estimatedCost = result.baselineCost;
        return result;
    }

    // Hot/cold split by cumulative coverage: the hottest blocks that
    // together cover hotCutoffPercentile of all weight are laid out by
    // chain merging; zero-weight blocks are always cold.
    std::vector<cfg::BlockId> by_weight = natural;
    std::sort(by_weight.begin(), by_weight.end(),
              [&](cfg::BlockId a, cfg::BlockId b) {
                  if (inflow[a] != inflow[b])
                      return inflow[a] > inflow[b];
                  return a < b;
              });
    std::vector<bool> hot(graph.numBlocks(), false);
    const double cutoff =
        options.hotCutoffPercentile * static_cast<double>(total_weight);
    std::uint64_t covered = 0;
    for (cfg::BlockId b : by_weight) {
        if (inflow[b] == 0)
            break;
        if (static_cast<double>(covered) >= cutoff)
            break;
        hot[b] = true;
        covered += inflow[b];
    }

    // Pettis-Hansen bottom-up merging: each hot block starts its own
    // chain; candidate edges, hottest first, merge the chain *ending*
    // at their source with the chain *starting* at their target.
    std::vector<std::vector<cfg::BlockId>> chains(graph.numBlocks());
    std::vector<std::uint32_t> chain_of(graph.numBlocks(), ~0u);
    for (cfg::BlockId b : natural) {
        if (!hot[b])
            continue;
        chains[b] = {b};
        chain_of[b] = b;
    }

    struct Candidate
    {
        std::uint64_t weight;
        cfg::BlockId src;
        std::uint32_t index;
        cfg::BlockId dst;
    };
    std::vector<Candidate> candidates;
    for (cfg::BlockId b : natural) {
        if (!hot[b])
            continue;
        const auto &succs = graph.succs(b);
        std::uint64_t outflow = 0;
        for (std::uint32_t i = 0; i < succs.size(); ++i)
            outflow += edgeWeight(weights, b, i);
        for (std::uint32_t i = 0; i < succs.size(); ++i) {
            const cfg::BlockId dst = succs[i];
            const std::uint64_t w = edgeWeight(weights, b, i);
            if (w == 0 || dst == b || !hot[dst])
                continue;
            if (static_cast<double>(w) <
                options.minFlowRatio * static_cast<double>(outflow))
                continue;
            candidates.push_back({w, b, i, dst});
        }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate &a, const Candidate &b) {
                  if (a.weight != b.weight)
                      return a.weight > b.weight;
                  if (a.src != b.src)
                      return a.src < b.src;
                  return a.index < b.index;
              });

    for (const Candidate &c : candidates) {
        const std::uint32_t sc = chain_of[c.src];
        const std::uint32_t dc = chain_of[c.dst];
        if (sc == dc)
            continue;
        if (chains[sc].back() != c.src || chains[dc].front() != c.dst)
            continue;
        if (chains[sc].size() + chains[dc].size() > options.maxChainLength)
            continue;
        for (cfg::BlockId b : chains[dc]) {
            chains[sc].push_back(b);
            chain_of[b] = sc;
        }
        chains[dc].clear();
    }

    // Order the chains: the chain holding the method's entry code block
    // leads (execution starts there), then descending total weight,
    // block ids breaking ties. Cold blocks keep natural order.
    cfg::BlockId entry_block = cfg::kInvalidBlock;
    if (!graph.succs(graph.entry()).empty())
        entry_block = graph.succs(graph.entry())[0];

    struct ChainInfo
    {
        std::uint32_t id;
        std::uint64_t weight;
        cfg::BlockId min_block;
        bool is_entry;
    };
    std::vector<ChainInfo> chain_order;
    for (std::uint32_t c = 0; c < chains.size(); ++c) {
        if (chains[c].empty())
            continue;
        ChainInfo info{c, 0, cfg::kInvalidBlock, false};
        for (cfg::BlockId b : chains[c]) {
            info.weight += inflow[b];
            info.min_block = std::min(info.min_block, b);
            if (b == entry_block)
                info.is_entry = true;
        }
        chain_order.push_back(info);
    }
    std::sort(chain_order.begin(), chain_order.end(),
              [](const ChainInfo &a, const ChainInfo &b) {
                  if (a.is_entry != b.is_entry)
                      return a.is_entry;
                  if (a.weight != b.weight)
                      return a.weight > b.weight;
                  return a.min_block < b.min_block;
              });

    std::vector<cfg::BlockId> chained;
    for (const ChainInfo &info : chain_order)
        for (cfg::BlockId b : chains[info.id])
            chained.push_back(b);
    for (cfg::BlockId b : natural)
        if (!hot[b])
            chained.push_back(b);
    PEP_ASSERT(chained.size() == natural.size());

    // Score the chained order against the natural order (both with
    // profile-derived directions) and keep the cheaper one; the chain
    // order wins ties.
    std::vector<std::int16_t> chained_layout =
        deriveBranchLayout(method_cfg, weights, chained);
    std::vector<std::int16_t> natural_layout =
        deriveBranchLayout(method_cfg, weights, natural);
    const double chained_cost = estimateLayoutCost(
        method_cfg, weights, chained, chained_layout, cost, options);
    const double natural_cost = estimateLayoutCost(
        method_cfg, weights, natural, natural_layout, cost, options);

    if (chained_cost <= natural_cost) {
        result.order = std::move(chained);
        result.branchLayout = std::move(chained_layout);
        result.estimatedCost = chained_cost;
    } else {
        result.order = std::move(natural);
        result.branchLayout = std::move(natural_layout);
        result.estimatedCost = natural_cost;
    }
    return result;
}

} // namespace pep::opt
