#include "opt/profile_consumer.hh"

#include <algorithm>
#include <cmath>

#include "core/pep_profiler.hh"
#include "profile/kpath.hh"
#include "profile/reconstruct.hh"
#include "runtime/profile_window.hh"
#include "support/panic.hh"
#include "vm/machine.hh"

namespace pep::opt {

const profile::MethodEdgeProfile *
LayoutSourceConsumer::edges(bytecode::MethodId method)
{
    return source_.layoutProfile(method);
}

WindowedProfileConsumer::WindowedProfileConsumer(
    const vm::Machine &machine, const runtime::WindowedProfile &window)
    : machine_(machine), window_(window)
{
}

void
WindowedProfileConsumer::refresh()
{
    if (builtAtAdvance_ == window_.advances())
        return;
    builtAtAdvance_ = window_.advances();

    const auto &weights = window_.edgeWeights();
    materialized_.clear();
    materialized_.reserve(machine_.numMethods());
    for (std::size_t m = 0; m < machine_.numMethods(); ++m) {
        const bytecode::MethodCfg &cfg =
            machine_.info(static_cast<bytecode::MethodId>(m)).cfg;
        profile::MethodEdgeProfile profile(cfg);
        if (m < weights.size()) {
            const auto &per_block = weights[m];
            for (cfg::BlockId b = 0; b < per_block.size(); ++b) {
                for (std::uint32_t i = 0; i < per_block[b].size(); ++i) {
                    const auto n = static_cast<std::uint64_t>(
                        std::llround(per_block[b][i]));
                    if (n > 0)
                        profile.addEdge({b, i}, n);
                }
            }
        }
        materialized_.push_back(std::move(profile));
    }
}

const profile::MethodEdgeProfile *
WindowedProfileConsumer::edges(bytecode::MethodId method)
{
    refresh();
    if (method >= materialized_.size())
        return nullptr;
    const profile::MethodEdgeProfile &p = materialized_[method];
    return p.totalCount() > 0 ? &p : nullptr;
}

std::uint64_t
WindowedProfileConsumer::generation() const
{
    return window_.advances();
}

const profile::MethodEdgeProfile *
PepConsumer::edges(bytecode::MethodId method)
{
    return pep_.layoutProfile(method);
}

std::vector<HotPath>
PepConsumer::hotPaths(bytecode::MethodId method)
{
    // Gather (count, number, state) across the method's instrumented
    // versions, hottest first; reconstruct only the top candidates.
    struct Candidate
    {
        std::uint64_t count = 0;
        std::uint64_t number = 0;
        const core::MethodProfilingState *state = nullptr;
    };
    std::vector<Candidate> candidates;
    for (const auto &[key, vp] : pep_.versionProfiles()) {
        if (key.first != method || !vp->state->plan.enabled)
            continue;
        // Synthesized bodies record paths in their own CFG's
        // coordinates; those cannot seed method-level clone plans.
        if (vp->state->compiled && vp->state->compiled->inlinedBody)
            continue;
        for (const auto &[number, record] : vp->paths.paths()) {
            if (record.count > 0)
                candidates.push_back(
                    {record.count, number, vp->state.get()});
        }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate &a, const Candidate &b) {
                  if (a.count != b.count)
                      return a.count > b.count;
                  return a.number < b.number;
              });
    if (candidates.size() > maxPaths_)
        candidates.resize(maxPaths_);

    std::vector<HotPath> paths;
    paths.reserve(candidates.size());
    for (const Candidate &c : candidates) {
        try {
            const profile::ReconstructedPath rec =
                profile::reconstructKPath(c.state->kpath,
                                          *c.state->reconstructor,
                                          c.number);
            if (rec.cfgEdges.empty())
                continue;
            paths.push_back({method, rec.cfgEdges, c.count});
        } catch (const support::PanicError &) {
            // A number outside the id space means a corrupted profile;
            // the verify passes report that — the optimizer just
            // declines to act on it.
        }
    }
    return paths;
}

std::uint64_t
PepConsumer::generation() const
{
    return pep_.pepStats().samplesRecorded;
}

} // namespace pep::opt
