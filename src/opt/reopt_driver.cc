#include "opt/reopt_driver.hh"

#include <cmath>

namespace pep::opt {

namespace {

/**
 * Hot direction of one branch block, quantized exactly like the
 * compile that a recompile would run: WindowedProfileConsumer rounds
 * decayed weights to integer counts, and layout derivation breaks a
 * Cond tie toward fall-through and keeps the first strict maximum of a
 * Switch. Deciding from the raw floats instead can disagree with the
 * installed layout at a near-tie (the epoch right after a phase
 * shift), and a snapshot recording the un-installed direction would
 * mask the *next* epoch's real shift forever.
 */
std::int32_t
quantizedHotDir(bytecode::TerminatorKind kind,
                const std::vector<double> &weights)
{
    if (kind == bytecode::TerminatorKind::Cond) {
        const std::uint64_t taken =
            weights.size() > 0
                ? static_cast<std::uint64_t>(std::llround(weights[0]))
                : 0;
        const std::uint64_t fall =
            weights.size() > 1
                ? static_cast<std::uint64_t>(std::llround(weights[1]))
                : 0;
        if (taken + fall == 0)
            return -1;
        return taken > fall ? 0 : 1;
    }
    std::uint64_t best = 0;
    std::int32_t best_index = -1;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        const auto w =
            static_cast<std::uint64_t>(std::llround(weights[i]));
        if (w > best) {
            best = w;
            best_index = static_cast<std::int32_t>(i);
        }
    }
    return best_index;
}

} // namespace

ReoptDriver::ReoptDriver(vm::Machine &machine,
                         const runtime::WindowedProfile &window,
                         ReoptOptions options)
    : machine_(machine), window_(window), options_(options),
      snapshots_(machine.numMethods())
{
}

std::size_t
ReoptDriver::poll()
{
    ++stats_.polls;
    if (window_.advances() == lastPollAdvance_)
        return 0; // nothing new entered the window
    lastPollAdvance_ = window_.advances();

    const auto &weights = window_.edgeWeights();
    std::size_t recompiled = 0;

    for (std::size_t m = 0; m < machine_.numMethods(); ++m) {
        const auto method = static_cast<bytecode::MethodId>(m);
        const vm::CompiledMethod *current =
            machine_.currentVersion(method);
        // Reoptimization only applies to versions the optimizer
        // compiled; baseline code is waiting for promotion instead.
        if (!current || current->level == vm::OptLevel::Baseline)
            continue;
        if (m >= weights.size())
            continue;

        const bytecode::MethodCfg &method_cfg =
            machine_.info(method).cfg;
        const auto &per_block = weights[m];

        // Current hot direction of every branch block, and the branch
        // mass that moved against the snapshot.
        std::vector<std::int32_t> hot_dir(per_block.size(), -1);
        double total_mass = 0.0;
        double changed_mass = 0.0;
        MethodSnapshot &snap = snapshots_[m];
        for (cfg::BlockId b = 0; b < per_block.size(); ++b) {
            const auto kind = method_cfg.terminator[b];
            if (kind != bytecode::TerminatorKind::Cond &&
                kind != bytecode::TerminatorKind::Switch)
                continue;
            double block_mass = 0.0;
            for (std::size_t i = 0; i < per_block[b].size(); ++i)
                block_mass += per_block[b][i];
            const std::int32_t best_index =
                quantizedHotDir(kind, per_block[b]);
            if (block_mass <= 0.0 || best_index < 0)
                continue;
            hot_dir[b] = best_index;
            total_mass += block_mass;
            if (snap.valid && b < snap.hotDir.size() &&
                snap.hotDir[b] != best_index)
                changed_mass += block_mass;
        }
        if (total_mass < options_.minMass)
            continue;

        // First sighting applies the initial profile-guided layout;
        // afterwards only a real direction shift justifies the
        // recompile.
        const bool shift =
            snap.valid &&
            changed_mass > options_.shiftThreshold * total_mass;
        if (snap.valid && !shift)
            continue;
        if (snap.valid && window_.advances() - snap.atAdvance <
                              options_.minAdvancesBetween)
            continue;

        // In-place relayout writes original-method block ids; a
        // version compiled with an inlined body has its own block
        // numbering, so only a full recompile can retarget it.
        if (options_.action == ReoptAction::Recompile ||
            current->inlinedBody) {
            machine_.compileNow(method, current->level);
            ++stats_.recompiles;
        } else {
            // Retranslate: install the window's hot directions as the
            // current version's branch layout in place, then discharge
            // the escape with an invalidation so the threaded engine
            // retranslates (and re-straightens its traces) against
            // them. Branches the window has no mass for keep their
            // installed prediction.
            vm::CompiledMethod *cm =
                machine_.versionForUpdate(method, current->version);
            for (cfg::BlockId b = 0; b < hot_dir.size(); ++b) {
                if (hot_dir[b] < 0 || b >= cm->branchLayout.size())
                    continue;
                if (method_cfg.terminator[b] ==
                    bytecode::TerminatorKind::Cond) {
                    // quantizedHotDir speaks successor indices
                    // (0 = taken); layout speaks prediction
                    // (1 = predict taken).
                    cm->branchLayout[b] = hot_dir[b] == 0 ? 1 : 0;
                } else {
                    cm->branchLayout[b] =
                        static_cast<std::int16_t>(hot_dir[b]);
                }
            }
            machine_.invalidateDecoded(method, current->version);
            ++stats_.retranslations;
        }
        if (shift)
            ++stats_.phaseShifts;
        snap.hotDir = std::move(hot_dir);
        snap.valid = true;
        snap.atAdvance = window_.advances();
        ++recompiled;
    }

    return recompiled;
}

} // namespace pep::opt
