#include "opt/path_clone.hh"

#include <algorithm>

#include "bytecode/verifier.hh"
#include "support/panic.hh"

namespace pep::opt {

namespace {

using bytecode::Instr;
using bytecode::Opcode;
using bytecode::Pc;
using bytecode::TerminatorKind;

/** True if the `index`-th successor edge of a block with this
 *  terminator can be pointed at a new target by patching the branch
 *  instruction. Positional fall-throughs (Cond leg 1, Fallthrough)
 *  have no instruction field to patch. */
bool
anchorRetargetable(TerminatorKind kind, std::uint32_t index)
{
    switch (kind) {
    case TerminatorKind::Goto:
        return index == 0;
    case TerminatorKind::Cond:
        return index == 0; // the taken leg
    case TerminatorKind::Switch:
        return true; // any case leg or the default
    default:
        return false;
    }
}

/** Try to grow a plan whose anchor is path.edges[start]. */
std::optional<ClonePlan>
tryPlanAt(const bytecode::MethodCfg &method_cfg, const HotPath &path,
          std::size_t start, const CloneOptions &options)
{
    const cfg::Graph &graph = method_cfg.graph;
    const cfg::EdgeRef first = path.edges[start];
    const cfg::BlockId anchor = first.src;
    if (anchor >= graph.numBlocks() || !method_cfg.isCodeBlock(anchor))
        return std::nullopt;
    if (first.index >= graph.succs(anchor).size())
        return std::nullopt;
    if (!anchorRetargetable(method_cfg.terminator[anchor], first.index))
        return std::nullopt;
    const cfg::BlockId head = graph.edgeDst(first);
    if (!method_cfg.isCodeBlock(head) || head == anchor)
        return std::nullopt;
    if (graph.preds(head).size() < 2)
        return std::nullopt; // not a join: plain layout handles it

    ClonePlan plan;
    plan.anchor = anchor;
    plan.anchorEdgeIndex = first.index;
    plan.blocks.push_back(head);
    plan.weight = path.weight;
    for (std::size_t i = start + 1; i < path.edges.size(); ++i) {
        if (plan.blocks.size() >= options.maxPathBlocks)
            break;
        const cfg::EdgeRef e = path.edges[i];
        if (e.src != plan.blocks.back() ||
            e.index >= graph.succs(e.src).size())
            break;
        const cfg::BlockId dst = graph.edgeDst(e);
        if (!method_cfg.isCodeBlock(dst) || dst == anchor)
            break;
        // A repeated block means the path wraps a loop (k-iteration
        // paths do); the truncated plan closes the loop in the copy.
        if (std::find(plan.blocks.begin(), plan.blocks.end(), dst) !=
            plan.blocks.end())
            break;
        plan.edgeIndex.push_back(e.index);
        plan.blocks.push_back(dst);
    }
    if (plan.blocks.size() < options.minPathBlocks ||
        plan.weight < options.minPathWeight)
        return std::nullopt;
    return plan;
}

} // namespace

std::optional<ClonePlan>
planFromPath(const bytecode::MethodCfg &method_cfg, const HotPath &path,
             const CloneOptions &options)
{
    // Paths often start at the method entry or a loop header reached
    // by fall-through; scan forward for the first usable anchor edge
    // (typically the back edge into the header).
    for (std::size_t s = 0; s < path.edges.size(); ++s) {
        if (auto plan = tryPlanAt(method_cfg, path, s, options))
            return plan;
    }
    return std::nullopt;
}

std::optional<ClonePlan>
selectClonePath(const bytecode::MethodCfg &method_cfg,
                const std::vector<std::vector<std::uint64_t>> &weights,
                const CloneOptions &options)
{
    const cfg::Graph &graph = method_cfg.graph;
    auto weight_of = [&](cfg::BlockId b, std::uint32_t i) -> std::uint64_t {
        if (b >= weights.size() || i >= weights[b].size())
            return 0;
        return weights[b][i];
    };

    // Anchor at the hottest retargetable edge into a join block.
    ClonePlan plan;
    cfg::BlockId head = cfg::kInvalidBlock;
    std::uint64_t best = 0;
    for (cfg::BlockId b = 0; b < graph.numBlocks(); ++b) {
        if (!method_cfg.isCodeBlock(b))
            continue;
        const auto &succs = graph.succs(b);
        for (std::uint32_t i = 0; i < succs.size(); ++i) {
            const cfg::BlockId dst = succs[i];
            if (!method_cfg.isCodeBlock(dst) || dst == b)
                continue;
            if (!anchorRetargetable(method_cfg.terminator[b], i))
                continue;
            if (graph.preds(dst).size() < 2)
                continue;
            const std::uint64_t w = weight_of(b, i);
            if (w > best) { // ties keep the lowest (block, index)
                best = w;
                plan.anchor = b;
                plan.anchorEdgeIndex = i;
                head = dst;
            }
        }
    }
    if (best == 0 || best < options.minPathWeight)
        return std::nullopt;
    plan.weight = best;
    plan.blocks.push_back(head);

    // Follow the hottest successor edge until the path repeats, goes
    // cold, or reaches the length cap.
    cfg::BlockId cur = head;
    while (plan.blocks.size() < options.maxPathBlocks) {
        const auto &succs = graph.succs(cur);
        std::uint64_t best_w = 0;
        std::uint32_t best_i = 0;
        cfg::BlockId best_dst = cfg::kInvalidBlock;
        for (std::uint32_t i = 0; i < succs.size(); ++i) {
            const std::uint64_t w = weight_of(cur, i);
            if (w > best_w) {
                best_w = w;
                best_i = i;
                best_dst = succs[i];
            }
        }
        if (best_w == 0 || best_dst == cfg::kInvalidBlock ||
            !method_cfg.isCodeBlock(best_dst) ||
            best_dst == plan.anchor ||
            std::find(plan.blocks.begin(), plan.blocks.end(), best_dst) !=
                plan.blocks.end())
            break;
        plan.edgeIndex.push_back(best_i);
        plan.blocks.push_back(best_dst);
        cur = best_dst;
    }
    if (plan.blocks.size() < options.minPathBlocks)
        return std::nullopt;
    return plan;
}

ClonedBody
buildClonedBody(const bytecode::Program &program,
                bytecode::MethodId method,
                const bytecode::MethodCfg &method_cfg,
                const ClonePlan &plan)
{
    const bytecode::Method &root = program.methods[method];
    const cfg::Graph &graph = method_cfg.graph;
    const std::size_t n = plan.blocks.size();
    PEP_ASSERT(n >= 1 && plan.edgeIndex.size() == n - 1);

    ClonedBody result;
    const Pc n0 = static_cast<Pc>(root.code.size());
    result.cloneStartPc = n0;

    // Verified code never falls off its end, so appending the clone
    // region after the last instruction cannot be reached positionally.
    PEP_ASSERT(n0 > 0 && bytecode::isTerminator(root.code[n0 - 1].op));

    const cfg::BlockId head = plan.blocks[0];
    const cfg::BlockId tail = plan.blocks[n - 1];

    // Close the copy into a private loop when the path is a cycle.
    bool close_loop = false;
    for (cfg::BlockId s : graph.succs(tail))
        if (s == head)
            close_loop = true;
    result.loopClosed = close_loop;

    // Where each block's copy will start. A copy is followed by one
    // synthesized Goto when its positional fall-through would
    // otherwise run off the path: a mid-path Cond taking its on-path
    // leg, or the final block ending in Cond or plain fall-through.
    std::vector<Pc> clone_start(n, 0);
    {
        Pc at = n0;
        for (std::size_t i = 0; i < n; ++i) {
            clone_start[i] = at;
            const cfg::BlockId b = plan.blocks[i];
            at += method_cfg.lastPc[b] - method_cfg.firstPc[b] + 1;
            const TerminatorKind kind = method_cfg.terminator[b];
            const bool last = i + 1 == n;
            if (kind == TerminatorKind::Cond &&
                (last || plan.edgeIndex[i] == 0))
                ++at;
            else if (kind == TerminatorKind::Fallthrough && last)
                ++at;
        }
    }

    auto body = std::make_unique<vm::InlinedBody>();
    bytecode::Method &out = body->method;
    out.name = root.name + "$clone";
    out.numArgs = root.numArgs;
    out.numLocals = root.numLocals;
    out.returnsValue = root.returnsValue;

    /** Original pc each synthesized instruction came from. */
    struct InstrOrigin
    {
        Pc pc = 0;
        bool valid = false;
    };
    std::vector<Instr> code = root.code;
    std::vector<InstrOrigin> origin(code.size());
    for (Pc pc = 0; pc < n0; ++pc)
        origin[pc] = {pc, true};

    // Retarget the anchor edge into the copy. Every other original
    // instruction — including the path blocks themselves — stays
    // byte-for-byte identical, so the original path remains reachable
    // from b1's other predecessors.
    {
        Instr &instr = code[method_cfg.branchPc(plan.anchor)];
        const auto target = static_cast<std::int32_t>(clone_start[0]);
        switch (method_cfg.terminator[plan.anchor]) {
        case TerminatorKind::Goto:
        case TerminatorKind::Cond:
            instr.a = target;
            break;
        case TerminatorKind::Switch:
            if (plan.anchorEdgeIndex < instr.table.size())
                instr.table[plan.anchorEdgeIndex] = target;
            else
                instr.b = target; // the default leg
            break;
        default:
            PEP_ASSERT_MSG(false, "unretargetable anchor in "
                                      << root.name);
        }
    }

    // Append the copies. On-path edges chain copy to copy; off-path
    // edges keep their original targets, so leaving the path lands in
    // original code; tail edges back to the head close the loop.
    for (std::size_t i = 0; i < n; ++i) {
        const cfg::BlockId b = plan.blocks[i];
        const TerminatorKind kind = method_cfg.terminator[b];
        const bool last = i + 1 == n;
        PEP_ASSERT(code.size() == clone_start[i]);
        for (Pc pc = method_cfg.firstPc[b]; pc <= method_cfg.lastPc[b];
             ++pc) {
            code.push_back(root.code[pc]);
            origin.push_back({pc, true});
        }

        const auto head_target =
            static_cast<std::int32_t>(clone_start[0]);
        const auto next_target = static_cast<std::int32_t>(
            last ? 0 : clone_start[i + 1]);
        const auto original_fall =
            static_cast<std::int32_t>(method_cfg.lastPc[b] + 1);
        const auto &succs = graph.succs(b);

        auto append_goto = [&](std::int32_t target) {
            code.push_back(Instr{Opcode::Goto, target, 0, {}});
            origin.push_back({0, false});
        };

        switch (kind) {
        case TerminatorKind::Goto:
            if (!last)
                code.back().a = next_target;
            else if (close_loop && succs[0] == head)
                code.back().a = head_target;
            break;
        case TerminatorKind::Cond:
            if (!last) {
                if (plan.edgeIndex[i] == 0) {
                    // On-path leg taken: chain it to the next copy and
                    // route the off-path fall-through back to original
                    // code through a synthesized Goto.
                    code.back().a = next_target;
                    append_goto(original_fall);
                }
                // On-path leg fall-through: positional into the next
                // copy; the taken leg already points at original code.
            } else {
                if (close_loop && succs[0] == head)
                    code.back().a = head_target;
                append_goto(close_loop && succs[1] == head
                                ? head_target
                                : original_fall);
            }
            break;
        case TerminatorKind::Switch: {
            Instr &instr = code.back();
            if (!last) {
                if (plan.edgeIndex[i] < instr.table.size())
                    instr.table[plan.edgeIndex[i]] = next_target;
                else
                    instr.b = next_target;
            } else if (close_loop) {
                for (std::uint32_t j = 0; j < succs.size(); ++j) {
                    if (succs[j] != head)
                        continue;
                    if (j < instr.table.size())
                        instr.table[j] = head_target;
                    else
                        instr.b = head_target;
                }
            }
            break;
        }
        case TerminatorKind::Fallthrough:
            // Mid-path: the next copy follows positionally. At the
            // tail the positional successor would be past the code,
            // so continue the original flow (or the closed loop).
            if (last)
                append_goto(close_loop && succs[0] == head
                                ? head_target
                                : original_fall);
            break;
        case TerminatorKind::Return:
            break; // returns need no fixup (and end the path anyway)
        case TerminatorKind::None:
            PEP_ASSERT_MSG(false, "pseudo block on clone path");
        }
    }

    out.code = std::move(code);
    body->rootPcMap.resize(n0);
    for (Pc pc = 0; pc < n0; ++pc)
        body->rootPcMap[pc] = pc; // original region: identity (OSR)
    body->inlinedSites = 0;

    {
        const bytecode::VerifyResult verified =
            bytecode::verifyMethod(program, out);
        PEP_ASSERT_MSG(verified.ok, "cloned body of "
                                        << root.name
                                        << " failed verification: "
                                        << verified.error);
    }

    body->info = vm::buildMethodInfo(out);
    const cfg::Graph &new_graph = body->info.cfg.graph;

    // Block origins: a block inherits the provenance of its terminator
    // instruction (the inliner's idiom) — both regions map onto the
    // original CFG, so profile folding is exact.
    body->blockOrigin.assign(new_graph.numBlocks(), vm::BlockOrigin{});
    for (cfg::BlockId b = 2; b < new_graph.numBlocks(); ++b) {
        const Pc last_pc = body->info.cfg.lastPc[b];
        if (!origin[last_pc].valid)
            continue; // synthesized Goto: no original branch identity
        body->blockOrigin[b] = vm::BlockOrigin{
            method, method_cfg.blockOfPc[origin[last_pc].pc]};
    }

    result.cloneHead = body->info.cfg.blockOfPc[clone_start[0]];

    // Pin the on-path direction of every internal branch of the copy:
    // inside the copy the continuation is known per construction, which
    // is exactly the context-sensitivity a folded edge profile cannot
    // express.
    result.forcedLayout.assign(new_graph.numBlocks(), -1);
    std::vector<std::int32_t> path_index(graph.numBlocks(), -1);
    for (std::size_t i = 0; i < n; ++i)
        path_index[plan.blocks[i]] = static_cast<std::int32_t>(i);
    for (cfg::BlockId b = 2; b < new_graph.numBlocks(); ++b) {
        if (body->info.cfg.firstPc[b] < n0)
            continue; // original region: layout comes from profiles
        const TerminatorKind kind = body->info.cfg.terminator[b];
        if (kind != TerminatorKind::Cond &&
            kind != TerminatorKind::Switch)
            continue;
        const vm::BlockOrigin &o = body->blockOrigin[b];
        if (!o.valid())
            continue;
        const std::int32_t i = path_index[o.block];
        if (i < 0)
            continue;
        std::uint32_t on_path = 0;
        bool have = false;
        if (static_cast<std::size_t>(i) + 1 < n) {
            on_path = plan.edgeIndex[static_cast<std::size_t>(i)];
            have = true;
        } else if (close_loop) {
            const auto &succs = graph.succs(tail);
            for (std::uint32_t j = 0; j < succs.size(); ++j) {
                if (succs[j] == head) {
                    on_path = j;
                    have = true;
                    break;
                }
            }
        }
        if (!have)
            continue;
        result.forcedLayout[b] =
            kind == TerminatorKind::Cond
                ? static_cast<std::int16_t>(on_path == 0 ? 1 : 0)
                : static_cast<std::int16_t>(on_path);
    }

    result.body = std::move(body);
    return result;
}

} // namespace pep::opt
