#ifndef PEP_RUNTIME_REQUEST_STREAM_HH
#define PEP_RUNTIME_REQUEST_STREAM_HH

/**
 * @file
 * The request-stream workload of the concurrent runtime: a generated
 * program whose entry points are request *handlers*, plus a
 * deterministic stream of (handler, argument) requests to invoke them
 * with. Unlike the iteration-oriented synthetic workload (which runs
 * main() to completion), a server-style run makes many short entry-point
 * invocations whose control flow varies per request — the argument
 * steers loop trip counts, switch cases, and branch directions, and the
 * stream's argument distribution drifts at a phase boundary.
 *
 * Handlers are *thread-pure* by construction: they read globals (bias
 * thresholds installed via the program's initial-globals table) but
 * never write them, and their only other inputs are the argument and the
 * executing thread's private Irnd stream. A handler invocation's control
 * flow is therefore independent of what other virtual threads do, which
 * is what makes the cooperative scheduler's merged profiles comparable
 * against per-thread solo oracles (see docs/RUNTIME.md).
 */

#include <cstdint>
#include <vector>

#include "bytecode/method.hh"

namespace pep::runtime {

/** Shape of the generated handler program and request stream. */
struct RequestStreamSpec
{
    std::uint64_t seed = 1;

    /** Entry points (`handle0..handleN-1`). */
    std::uint32_t handlers = 4;

    /** Shared helper methods handlers call into. */
    std::uint32_t leaves = 3;

    /** Total requests in the stream. */
    std::uint32_t requests = 256;

    /** Control-flow elements (diamond/switch/loop/call) per handler
     *  loop body. */
    std::uint32_t elementsPerBody = 5;

    /** Cases per generated switch. */
    std::uint32_t switchCases = 4;

    /** Handler loop trips are 1 + (arg & tripMask); mask is the
     *  smallest 2^k-1 >= maxTrips-1. */
    std::uint32_t maxTrips = 12;

    /**
     * Fraction of the stream after which the argument distribution
     * shifts (the workload's phase change): high argument bits flip,
     * steering argument-keyed diamonds and switches onto new paths.
     */
    double phaseSplit = 0.5;
};

/** One request: invoke `handler(arg)`. */
struct Request
{
    std::uint32_t handler = 0;
    std::int32_t arg = 0;
};

/** A generated handler program plus its request stream. */
class RequestStream
{
  public:
    explicit RequestStream(const RequestStreamSpec &spec);

    const RequestStreamSpec &spec() const { return spec_; }

    /** The generated (verified) program. main() invokes each handler
     *  once with a fixed argument — a warmup/smoke path only; the
     *  runtime drives handlers directly. */
    const bytecode::Program &program() const { return program_; }

    /** Method id of handler `h`. */
    bytecode::MethodId
    handlerMethod(std::uint32_t h) const
    {
        return handlerIds_[h];
    }

    /** The full request stream, in arrival order. */
    const std::vector<Request> &requests() const { return requests_; }

    /**
     * The subsequence of the stream a given shard owns (round-robin:
     * request i belongs to shard i % shards). Shards partition the
     * stream: every request appears in exactly one shard.
     */
    std::vector<Request> shard(std::uint32_t shard_index,
                               std::uint32_t shards) const;

  private:
    RequestStreamSpec spec_;
    bytecode::Program program_;
    std::vector<bytecode::MethodId> handlerIds_;
    std::vector<Request> requests_;
};

} // namespace pep::runtime

#endif // PEP_RUNTIME_REQUEST_STREAM_HH
