#include "runtime/profile_window.hh"

#include <algorithm>

#include "support/panic.hh"

namespace pep::runtime {

namespace {

std::vector<std::vector<std::vector<double>>>
shapedLike(const std::vector<const bytecode::MethodCfg *> &cfgs)
{
    std::vector<std::vector<std::vector<double>>> table;
    table.resize(cfgs.size());
    for (std::size_t m = 0; m < cfgs.size(); ++m) {
        const cfg::Graph &graph = cfgs[m]->graph;
        table[m].resize(graph.numBlocks());
        for (cfg::BlockId b = 0; b < graph.numBlocks(); ++b)
            table[m][b].assign(graph.succs(b).size(), 0.0);
    }
    return table;
}

} // namespace

WindowedProfile::WindowedProfile(
    const std::vector<const bytecode::MethodCfg *> &cfgs, double decay,
    double prune_epsilon)
    : decay_(decay), pruneEpsilon_(prune_epsilon)
{
    PEP_ASSERT(decay >= 0.0 && decay < 1.0);
    edgeWindow_ = shapedLike(cfgs);
    edgeEpoch_ = shapedLike(cfgs);
}

void
WindowedProfile::addEdge(bytecode::MethodId method, cfg::EdgeRef edge,
                         std::uint64_t n)
{
    edgeEpoch_[method][edge.src][edge.index] +=
        static_cast<double>(n);
}

void
WindowedProfile::addPath(bytecode::MethodId method,
                         std::uint64_t path_number, std::uint64_t n)
{
    pathEpoch_[{method, path_number}] += static_cast<double>(n);
}

void
WindowedProfile::advance()
{
    double epoch_mass = 0.0;
    for (std::size_t m = 0; m < edgeEpoch_.size(); ++m)
        for (std::size_t b = 0; b < edgeEpoch_[m].size(); ++b)
            for (std::size_t i = 0; i < edgeEpoch_[m][b].size(); ++i)
                epoch_mass += edgeEpoch_[m][b][i];
    for (const auto &[key, weight] : pathEpoch_)
        epoch_mass += weight;

    // Age the held mass by one epoch, then let the fresh epoch enter
    // at age zero; the held mean age is the mass-weighted mix.
    const double aged_mass = decay_ * mass_;
    const double total = aged_mass + epoch_mass;
    meanAgeEpochs_ =
        total > 0.0 ? aged_mass * (meanAgeEpochs_ + 1.0) / total : 0.0;
    mass_ = total;

    for (std::size_t m = 0; m < edgeWindow_.size(); ++m) {
        for (std::size_t b = 0; b < edgeWindow_[m].size(); ++b) {
            for (std::size_t i = 0; i < edgeWindow_[m][b].size(); ++i) {
                double &w = edgeWindow_[m][b][i];
                w = decay_ * w + edgeEpoch_[m][b][i];
                edgeEpoch_[m][b][i] = 0.0;
            }
        }
    }

    for (auto &[key, weight] : pathWindow_)
        weight *= decay_;
    for (const auto &[key, weight] : pathEpoch_)
        pathWindow_[key] += weight;
    pathEpoch_.clear();

    // Bounded memory over indefinite runs: paths from dead phases
    // decay below epsilon and leave the table.
    for (auto it = pathWindow_.begin(); it != pathWindow_.end();) {
        if (it->second < pruneEpsilon_)
            it = pathWindow_.erase(it);
        else
            ++it;
    }

    ++advances_;
}

void
WindowedProfile::merge(const WindowedProfile &other)
{
    if (edgeWindow_.empty()) {
        *this = other;
        return;
    }
    PEP_ASSERT(edgeWindow_.size() == other.edgeWindow_.size());

    const double total = mass_ + other.mass_;
    meanAgeEpochs_ = total > 0.0
                         ? (mass_ * meanAgeEpochs_ +
                            other.mass_ * other.meanAgeEpochs_) /
                               total
                         : 0.0;
    mass_ = total;
    advances_ = std::max(advances_, other.advances_);

    for (std::size_t m = 0; m < edgeWindow_.size(); ++m)
        for (std::size_t b = 0; b < edgeWindow_[m].size(); ++b)
            for (std::size_t i = 0; i < edgeWindow_[m][b].size(); ++i)
                edgeWindow_[m][b][i] += other.edgeWindow_[m][b][i];
    for (const auto &[key, weight] : other.pathWindow_)
        pathWindow_[key] += weight;
}

} // namespace pep::runtime
