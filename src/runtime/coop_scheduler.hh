#ifndef PEP_RUNTIME_COOP_SCHEDULER_HH
#define PEP_RUNTIME_COOP_SCHEDULER_HH

/**
 * @file
 * A deterministic cooperative scheduler multiplexing K virtual mutator
 * threads over one Machine's virtual clock — the Jikes RVM
 * quasi-preemptive model (paper Section 2): the timer tick sets a
 * shared switch flag, and threads yield *only* at taken yieldpoints
 * (method entry / loop header / method exit), never mid-instruction.
 *
 * Everything runs on a single OS thread: each virtual thread is a
 * resumable vm::Interpreter parked between resume() calls, so the
 * interleaving is a pure function of (program, SimParams, request
 * assignment, scheduler seed). Two runs with the same inputs produce
 * byte-identical profiles; see docs/RUNTIME.md for the contract.
 */

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "runtime/request_stream.hh"
#include "support/rng.hh"
#include "vm/hooks.hh"
#include "vm/interpreter.hh"

namespace pep::runtime {

/** Scheduler configuration. */
struct CoopOptions
{
    /** Virtual mutator threads to multiplex. */
    std::uint32_t threads = 4;

    /** Seed of the next-thread choice (the only scheduler-private
     *  randomness; the tick itself comes from the virtual clock). */
    std::uint64_t seed = 1;
};

/** Counters describing one cooperative run. */
struct CoopStats
{
    std::uint64_t contextSwitches = 0;
    std::uint64_t requestsCompleted = 0;
    std::uint64_t resumes = 0;
};

/** The cooperative scheduler. Not reusable: assign queues, run once. */
class CoopScheduler final : public vm::ThreadScheduler
{
  public:
    CoopScheduler(vm::Machine &machine, const CoopOptions &options);
    ~CoopScheduler() override;

    CoopScheduler(const CoopScheduler &) = delete;
    CoopScheduler &operator=(const CoopScheduler &) = delete;

    /** Append a request to thread `thread`'s work queue. */
    void assign(std::uint32_t thread, const RequestStream &stream,
                const Request &request);

    /**
     * Deal a whole stream round-robin: request i goes to thread
     * i % threads (so thread t's queue equals stream.shard(t, K)).
     */
    void assignRoundRobin(const RequestStream &stream);

    /** Run every queued request to completion, interleaving threads at
     *  tick-flagged yieldpoints. */
    void run();

    const CoopStats &stats() const { return stats_; }

    // vm::ThreadScheduler
    bool onYieldpoint(std::uint32_t thread, vm::YieldpointKind kind,
                      bool tick_fired) override;

  private:
    struct VThread
    {
        std::unique_ptr<vm::Interpreter> interp;
        std::deque<Request> queue;
        const RequestStream *stream = nullptr;
    };

    /** True if the thread has anything left to execute. */
    bool runnable(const VThread &t) const;

    /** Seeded uniform choice among runnable threads; returns threads_
     *  size when none are runnable. */
    std::uint32_t pickNext();

    vm::Machine &vm_;
    CoopOptions options_;
    std::vector<VThread> threads_;
    support::Rng rng_;
    CoopStats stats_;

    /**
     * The shared thread-switch flag of the quasi-preemptive model: set
     * when a timer tick reaches a yieldpoint, cleared when the
     * scheduler performs the switch. Shared across threads — whichever
     * thread hits a yieldpoint after the tick gets descheduled, exactly
     * like Jikes RVM's per-processor flag.
     */
    bool switchPending_ = false;
};

} // namespace pep::runtime

#endif // PEP_RUNTIME_COOP_SCHEDULER_HH
