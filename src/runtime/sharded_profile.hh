#ifndef PEP_RUNTIME_SHARDED_PROFILE_HH
#define PEP_RUNTIME_SHARDED_PROFILE_HH

/**
 * @file
 * Concurrent profile aggregation for the parallel throughput mode.
 *
 * Two strategies behind one interface:
 *
 *  - ShardedAggregator: each worker records into its own cache-line-
 *    padded shard without synchronization, and publishes shard-local
 *    counts into the global profile only at epoch boundaries (the
 *    flush takes a short global lock and uses EdgeProfileSet::merge).
 *    Workers never touch each other's shards, so the hot record path
 *    is contention- and false-sharing-free.
 *
 *  - MutexAggregator: the textbook baseline — one global profile, one
 *    mutex, every record takes the lock. Correct, slow under
 *    contention; the benchmark measures the gap.
 *
 * Both produce identical totals for identical inputs (asserted by the
 * differ and tests/runtime): aggregation strategy must never change
 * *what* is counted, only how fast.
 */

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "bytecode/cfg_builder.hh"
#include "profile/edge_profile.hh"

namespace pep::runtime {

/** Identity of one path-profile counter. */
struct PathKey
{
    bytecode::MethodId method = 0;
    std::uint64_t number = 0;

    bool
    operator<(const PathKey &other) const
    {
        return method != other.method ? method < other.method
                                      : number < other.number;
    }

    bool
    operator==(const PathKey &other) const
    {
        return method == other.method && number == other.number;
    }
};

struct PathKeyHash
{
    std::size_t
    operator()(const PathKey &key) const
    {
        // splitmix64-style finalizer over the packed key.
        std::uint64_t x =
            (static_cast<std::uint64_t>(key.method) << 40) ^
            key.number;
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ull;
        x ^= x >> 27;
        return static_cast<std::size_t>(x * 0x94d049bb133111ebull);
    }
};

/** Path counters, ordered for deterministic iteration/serialization. */
using PathTotals = std::map<PathKey, std::uint64_t>;

/**
 * Where concurrent workers record profile events. `shard` is the
 * caller's worker index; implementations may ignore it (MutexAggregator)
 * or use it to index private storage (ShardedAggregator — each shard
 * must be driven by at most one thread at a time).
 */
class ProfileAggregator
{
  public:
    virtual ~ProfileAggregator() = default;

    virtual void recordEdge(std::uint32_t shard,
                            bytecode::MethodId method, cfg::EdgeRef edge,
                            std::uint64_t n = 1) = 0;

    virtual void recordPath(std::uint32_t shard,
                            bytecode::MethodId method,
                            std::uint64_t path_number,
                            std::uint64_t n = 1) = 0;

    /** Epoch boundary: publish the shard's local counts globally. A
     *  worker must flush its shard once more after its last record. */
    virtual void flush(std::uint32_t shard) = 0;

    /** Drain any background collection and stop it. Must be called
     *  after every producer has flushed and stopped, before reading
     *  the global profiles. A no-op for synchronous aggregators; the
     *  ring transport (ring_transport.hh) drains its collector thread
     *  here. */
    virtual void quiesce() {}

    /** Global profiles. Only meaningful when all workers have flushed
     *  and stopped and quiesce() ran; not synchronized with
     *  recording. */
    virtual const profile::EdgeProfileSet &globalEdges() const = 0;
    virtual const PathTotals &globalPaths() const = 0;

    virtual std::string name() const = 0;
};

/** Shard-local accumulation with epoch-boundary merge. */
class ShardedAggregator final : public ProfileAggregator
{
  public:
    ShardedAggregator(
        const std::vector<const bytecode::MethodCfg *> &cfgs,
        std::uint32_t shards);

    void recordEdge(std::uint32_t shard, bytecode::MethodId method,
                    cfg::EdgeRef edge, std::uint64_t n = 1) override;
    void recordPath(std::uint32_t shard, bytecode::MethodId method,
                    std::uint64_t path_number,
                    std::uint64_t n = 1) override;
    void flush(std::uint32_t shard) override;

    const profile::EdgeProfileSet &
    globalEdges() const override
    {
        return globalEdges_;
    }

    const PathTotals &globalPaths() const override { return globalPaths_; }

    std::string name() const override { return "sharded"; }

    /** Completed epoch flushes across all shards. Safe to poll from a
     *  monitor thread mid-run: the counter is atomic (workers
     *  increment it under flushMutex_, but readers do not take the
     *  lock — a plain std::uint64_t here was a data race, torn/stale
     *  under TSan, when stats were sampled while workers flushed). */
    std::uint64_t
    flushes() const
    {
        return flushes_.load(std::memory_order_relaxed);
    }

  private:
    /**
     * One worker's private accumulator. alignas(64) keeps each shard
     * on its own cache line(s): without the padding, adjacent shards'
     * hot counters share lines and every increment ping-pongs the line
     * between cores (false sharing) — the failure mode the sharded
     * design exists to avoid.
     */
    struct alignas(64) Shard
    {
        profile::EdgeProfileSet edges;
        std::unordered_map<PathKey, std::uint64_t, PathKeyHash> paths;
        std::uint64_t records = 0;
    };

    std::vector<Shard> shards_;
    profile::EdgeProfileSet globalEdges_;
    PathTotals globalPaths_;
    std::mutex flushMutex_;
    std::atomic<std::uint64_t> flushes_{0};
};

/** One global table, one lock, every record synchronized. */
class MutexAggregator final : public ProfileAggregator
{
  public:
    explicit MutexAggregator(
        const std::vector<const bytecode::MethodCfg *> &cfgs);

    void recordEdge(std::uint32_t shard, bytecode::MethodId method,
                    cfg::EdgeRef edge, std::uint64_t n = 1) override;
    void recordPath(std::uint32_t shard, bytecode::MethodId method,
                    std::uint64_t path_number,
                    std::uint64_t n = 1) override;
    void flush(std::uint32_t shard) override;

    const profile::EdgeProfileSet &
    globalEdges() const override
    {
        return edges_;
    }

    const PathTotals &globalPaths() const override { return paths_; }

    std::string name() const override { return "mutex"; }

  private:
    profile::EdgeProfileSet edges_;
    PathTotals paths_;
    std::mutex mutex_;
};

} // namespace pep::runtime

#endif // PEP_RUNTIME_SHARDED_PROFILE_HH
