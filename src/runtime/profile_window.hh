#ifndef PEP_RUNTIME_PROFILE_WINDOW_HH
#define PEP_RUNTIME_PROFILE_WINDOW_HH

/**
 * @file
 * Time-windowed profiles with exponential decay. A long-running
 * service's cumulative profile averages phase changes away: a branch
 * that was 90/10 for the first hour and 10/90 since looks 50/50
 * forever. Production path profilers bound the window instead
 * (Propeller's `max_time_diff_in_path_buffer_millis` discards stale
 * buffered paths); here the equivalent is an EWMA over *epochs*:
 *
 *     window = decay * window + epoch_counts        (per epoch mark)
 *
 * so a count observed k epochs ago carries weight decay^k and the
 * effective window length is 1/(1-decay) epochs. Epochs — not wall
 * clock — drive the decay so the windowed view stays a deterministic
 * function of the producer's record stream (the determinism contract
 * of docs/RUNTIME.md extends to windows: one WindowedProfile per
 * shard, advanced only by that shard's own epoch marks).
 *
 * Memory stays bounded for indefinite runs: path entries whose decayed
 * weight falls below a prune threshold are erased at the epoch
 * boundary, so paths from dead phases age out of the table instead of
 * accumulating.
 *
 * The window also tracks its own **staleness**: the mass-weighted mean
 * age, in epochs, of the weight it currently holds (fresh epoch counts
 * enter at age 0; surviving mass ages by 1 at each advance). A steady
 * workload converges to decay/(1-decay); a spike right after a phase
 * change means the window is still dominated by pre-change mass.
 */

#include <cstdint>
#include <map>
#include <vector>

#include "bytecode/cfg_builder.hh"
#include "runtime/spsc_ring.hh"

namespace pep::runtime {

struct PathKey; // sharded_profile.hh

/** Decayed per-edge / per-path weights for one shard. */
class WindowedProfile
{
  public:
    WindowedProfile() = default;

    WindowedProfile(const std::vector<const bytecode::MethodCfg *> &cfgs,
                    double decay, double prune_epsilon = 1e-6);

    /** Accumulate into the current (not yet decayed) epoch. */
    void addEdge(bytecode::MethodId method, cfg::EdgeRef edge,
                 std::uint64_t n);
    void addPath(bytecode::MethodId method, std::uint64_t path_number,
                 std::uint64_t n);

    /** Epoch boundary: decay the window, fold the epoch in, prune. */
    void advance();

    /** Decayed edge weights, [method][block][successor index]. */
    const std::vector<std::vector<std::vector<double>>> &
    edgeWeights() const
    {
        return edgeWindow_;
    }

    /** Decayed path weights (ordered; pruned below epsilon). */
    const std::map<std::pair<bytecode::MethodId, std::uint64_t>, double> &
    pathWeights() const
    {
        return pathWindow_;
    }

    double decay() const { return decay_; }

    /** Completed advance() calls. */
    std::uint64_t advances() const { return advances_; }

    /** Total decayed weight currently held (paths + edges). */
    double mass() const { return mass_; }

    /** Mass-weighted mean age of the held weight, in epochs. */
    double stalenessEpochs() const { return meanAgeEpochs_; }

    /** Fold another shard's window into this one (same CFG shapes).
     *  Merged staleness is the mass-weighted mean of the inputs'. */
    void merge(const WindowedProfile &other);

  private:
    double decay_ = 0.5;
    double pruneEpsilon_ = 1e-6;

    std::vector<std::vector<std::vector<double>>> edgeWindow_;
    std::vector<std::vector<std::vector<double>>> edgeEpoch_;
    std::map<std::pair<bytecode::MethodId, std::uint64_t>, double>
        pathWindow_;
    std::map<std::pair<bytecode::MethodId, std::uint64_t>, double>
        pathEpoch_;

    std::uint64_t advances_ = 0;
    double mass_ = 0.0;
    double meanAgeEpochs_ = 0.0;
};

} // namespace pep::runtime

#endif // PEP_RUNTIME_PROFILE_WINDOW_HH
