#ifndef PEP_RUNTIME_THROUGHPUT_HH
#define PEP_RUNTIME_THROUGHPUT_HH

/**
 * @file
 * The parallel throughput mode: N OS worker threads, each with a
 * private Machine, drive disjoint shards of a request stream and
 * record path/edge events into a shared ProfileAggregator, flushing at
 * epoch boundaries. This is the layer where real concurrency exists —
 * the cooperative scheduler (coop_scheduler.hh) multiplexes virtual
 * threads over one clock; here separate machines race on wall-clock
 * time and only the aggregator is shared.
 *
 * Workers are deterministic in *what* they record (each machine's
 * simulation is seeded), so the merged totals are independent of both
 * the aggregation strategy and OS scheduling; only the wall time
 * varies. runThroughput() with Aggregation::Sharded and ::Mutex must
 * produce count-for-count identical profiles.
 */

#include <cstdint>
#include <memory>

#include "runtime/request_stream.hh"
#include "runtime/sharded_profile.hh"
#include "vm/machine.hh"

namespace pep::runtime {

/** Throughput-mode configuration. */
struct ThroughputOptions
{
    enum class Aggregation : std::uint8_t
    {
        Sharded,
        Mutex,
    };

    /** OS worker threads (= shards; worker w owns stream shard w). */
    std::uint32_t workers = 4;

    /** Requests a worker completes between epoch flushes. */
    std::uint32_t epochRequests = 64;

    Aggregation aggregation = Aggregation::Sharded;

    /** Per-worker machine parameters (seed etc.). */
    vm::SimParams params;
};

/** What one throughput run produced. */
struct ThroughputResult
{
    double wallSeconds = 0.0;
    std::uint64_t requestsCompleted = 0;
    std::uint64_t pathRecords = 0;
    std::uint64_t edgeRecords = 0;
    double requestsPerSecond = 0.0;

    /** Merged global profiles (quiescent). */
    profile::EdgeProfileSet edges;
    PathTotals paths;
};

/** Run the stream over `workers` OS threads; blocks until done. */
ThroughputResult runThroughput(const RequestStream &stream,
                               const ThroughputOptions &options);

} // namespace pep::runtime

#endif // PEP_RUNTIME_THROUGHPUT_HH
