#ifndef PEP_RUNTIME_THROUGHPUT_HH
#define PEP_RUNTIME_THROUGHPUT_HH

/**
 * @file
 * The parallel throughput mode: N OS worker threads, each with a
 * private Machine, drive disjoint shards of a request stream and
 * record path/edge events into a shared ProfileAggregator, flushing at
 * epoch boundaries. This is the layer where real concurrency exists —
 * the cooperative scheduler (coop_scheduler.hh) multiplexes virtual
 * threads over one clock; here separate machines race on wall-clock
 * time and only the aggregator is shared.
 *
 * Workers are deterministic in *what* they record (each machine's
 * simulation is seeded), so the merged totals are independent of both
 * the aggregation strategy and OS scheduling; only the wall time
 * varies. runThroughput() with Aggregation::Sharded and ::Mutex must
 * produce count-for-count identical profiles.
 */

#include <cstdint>
#include <memory>

#include "runtime/request_stream.hh"
#include "runtime/ring_transport.hh"
#include "runtime/sharded_profile.hh"
#include "vm/machine.hh"

namespace pep::runtime {

/** Throughput-mode configuration. */
struct ThroughputOptions
{
    enum class Aggregation : std::uint8_t
    {
        Sharded,
        Mutex,

        /** Per-worker SPSC rings to a collector thread; producers
         *  never block, drops are counted (ring_transport.hh). */
        Ring,
    };

    /** OS worker threads (= shards; worker w owns stream shard w). */
    std::uint32_t workers = 4;

    /** Requests a worker completes between epoch flushes. */
    std::uint32_t epochRequests = 64;

    Aggregation aggregation = Aggregation::Sharded;

    /** Ring-transport knobs (Aggregation::Ring only). */
    RingOptions ring;

    /** Per-worker machine parameters (seed etc.). */
    vm::SimParams params;
};

/** What one throughput run produced. */
struct ThroughputResult
{
    double wallSeconds = 0.0;
    std::uint64_t requestsCompleted = 0;
    std::uint64_t pathRecords = 0;
    std::uint64_t edgeRecords = 0;
    double requestsPerSecond = 0.0;

    /** Merged global profiles (quiescent). */
    profile::EdgeProfileSet edges;
    PathTotals paths;

    /** ShardedAggregator epoch flushes (Sharded only, else 0). */
    std::uint64_t shardFlushes = 0;

    /** Ring-transport observables (Ring only, else zeros): the
     *  conservation law `produced == consumed + dropped` holds at
     *  quiescence unless the transport lost samples silently. */
    RingTransportStats transport;

    /** Merged windowed-profile observables (Ring only). */
    std::uint64_t windowAdvances = 0;
    double windowStalenessEpochs = 0.0;
    double windowMass = 0.0;
};

/** Run the stream over `workers` OS threads; blocks until done. */
ThroughputResult runThroughput(const RequestStream &stream,
                               const ThroughputOptions &options);

} // namespace pep::runtime

#endif // PEP_RUNTIME_THROUGHPUT_HH
