#include "runtime/throughput.hh"

#include <chrono>
#include <thread>
#include <utility>
#include <vector>

#include "core/path_engine.hh"
#include "profile/path_profile.hh"
#include "support/panic.hh"
#include "vm/inliner.hh"
#include "vm/interpreter.hh"

namespace pep::runtime {

namespace {

/**
 * A PathEngine that records *every* completed path (and its expanded
 * edges) into the shared aggregator — a worst-case write load for the
 * aggregation strategies: where PEP samples a handful of paths per
 * tick, this hammers the profile on every path completion, so the
 * sharded-vs-mutex gap is fully exposed.
 */
class StreamRecorder final : public core::PathEngine
{
  public:
    StreamRecorder(vm::Machine &machine, ProfileAggregator &sink,
                   std::uint32_t shard)
        : PathEngine(machine, profile::DagMode::HeaderSplit,
                     profile::NumberingScheme::BallLarus,
                     /*charge_costs=*/false,
                     profile::PlacementKind::Direct),
          sink_(sink), shard_(shard)
    {
    }

    std::uint64_t pathRecords = 0;
    std::uint64_t edgeRecords = 0;

  protected:
    void
    pathCompleted(core::VersionProfile &vp, std::uint64_t path_number,
                  std::uint32_t /*thread*/) override
    {
        profile::PathRecord &record = vp.paths.addSample(path_number);
        if (!record.expanded) {
            profile::expandRecord(record, *vp.state->reconstructor,
                                  path_number, &vp.state->kpath);
        }
        sink_.recordPath(shard_, vp.state->method, path_number);
        ++pathRecords;
        recordCfgEdges(*vp.state, record.cfgEdges);
    }

  private:
    /** Fold a path's edges into the aggregator, mapping inlined
     *  branches to their bytecode-level counters (as PepProfiler
     *  does; see pep_profiler.cc). */
    void
    recordCfgEdges(const core::MethodProfilingState &state,
                   const std::vector<cfg::EdgeRef> &cfg_edges)
    {
        const vm::InlinedBody *inlined =
            state.compiled ? state.compiled->inlinedBody.get()
                           : nullptr;
        if (!inlined) {
            for (const cfg::EdgeRef &edge : cfg_edges) {
                sink_.recordEdge(shard_, state.method, edge);
                ++edgeRecords;
            }
            return;
        }
        for (const cfg::EdgeRef &edge : cfg_edges) {
            const auto kind = inlined->info.cfg.terminator[edge.src];
            if (kind != bytecode::TerminatorKind::Cond &&
                kind != bytecode::TerminatorKind::Switch) {
                continue;
            }
            const vm::BlockOrigin &origin =
                inlined->blockOrigin[edge.src];
            if (!origin.valid())
                continue;
            sink_.recordEdge(shard_, origin.method,
                             cfg::EdgeRef{origin.block, edge.index});
            ++edgeRecords;
        }
    }

    ProfileAggregator &sink_;
    const std::uint32_t shard_;
};

struct WorkerTally
{
    std::uint64_t requests = 0;
    std::uint64_t pathRecords = 0;
    std::uint64_t edgeRecords = 0;
};

/** One worker: a private machine simulating its stream shard,
 *  recording into the shared aggregator, flushing each epoch. */
void
workerBody(const RequestStream &stream, const ThroughputOptions &options,
           ProfileAggregator &aggregator, std::uint32_t worker,
           WorkerTally &tally)
{
    vm::Machine machine(stream.program(), options.params);
    StreamRecorder recorder(machine, aggregator, worker);
    machine.addHooks(&recorder);
    machine.addCompileObserver(&recorder);
    vm::Interpreter interp(machine, 0);

    const std::vector<Request> shard =
        stream.shard(worker, options.workers);
    std::uint32_t since_flush = 0;
    for (const Request &request : shard) {
        interp.start(stream.handlerMethod(request.handler),
                     {request.arg});
        while (!interp.resume()) {
        }
        ++tally.requests;
        if (++since_flush >= options.epochRequests) {
            aggregator.flush(worker);
            since_flush = 0;
        }
    }
    aggregator.flush(worker);
    tally.pathRecords = recorder.pathRecords;
    tally.edgeRecords = recorder.edgeRecords;
}

} // namespace

ThroughputResult
runThroughput(const RequestStream &stream,
              const ThroughputOptions &options)
{
    PEP_ASSERT(options.workers > 0);
    PEP_ASSERT(options.epochRequests > 0);

    std::vector<bytecode::MethodCfg> cfgs;
    cfgs.reserve(stream.program().methods.size());
    for (const bytecode::Method &method : stream.program().methods)
        cfgs.push_back(bytecode::buildCfg(method));
    std::vector<const bytecode::MethodCfg *> cfg_ptrs;
    cfg_ptrs.reserve(cfgs.size());
    for (const bytecode::MethodCfg &method_cfg : cfgs)
        cfg_ptrs.push_back(&method_cfg);

    std::unique_ptr<ProfileAggregator> aggregator;
    switch (options.aggregation) {
      case ThroughputOptions::Aggregation::Sharded:
        aggregator = std::make_unique<ShardedAggregator>(
            cfg_ptrs, options.workers);
        break;
      case ThroughputOptions::Aggregation::Mutex:
        aggregator = std::make_unique<MutexAggregator>(cfg_ptrs);
        break;
      case ThroughputOptions::Aggregation::Ring:
        aggregator = std::make_unique<RingAggregator>(
            cfg_ptrs, options.workers, options.ring);
        break;
    }

    std::vector<WorkerTally> tallies(options.workers);
    const auto wall_start = std::chrono::steady_clock::now();
    {
        std::vector<std::thread> workers;
        workers.reserve(options.workers);
        for (std::uint32_t w = 0; w < options.workers; ++w) {
            workers.emplace_back(workerBody, std::cref(stream),
                                 std::cref(options),
                                 std::ref(*aggregator), w,
                                 std::ref(tallies[w]));
        }
        for (std::thread &worker : workers)
            worker.join();
    }
    // Producers are done; drain and stop any background collection
    // before the wall clock stops (the collector's backlog is part of
    // the cost of the run) and before the profiles are read.
    aggregator->quiesce();
    const auto wall_end = std::chrono::steady_clock::now();

    ThroughputResult result;
    result.wallSeconds =
        std::chrono::duration<double>(wall_end - wall_start).count();
    for (const WorkerTally &tally : tallies) {
        result.requestsCompleted += tally.requests;
        result.pathRecords += tally.pathRecords;
        result.edgeRecords += tally.edgeRecords;
    }
    result.requestsPerSecond =
        result.wallSeconds > 0.0
            ? static_cast<double>(result.requestsCompleted) /
                  result.wallSeconds
            : 0.0;
    result.edges = aggregator->globalEdges();
    result.paths = aggregator->globalPaths();
    if (const auto *sharded =
            dynamic_cast<const ShardedAggregator *>(aggregator.get())) {
        result.shardFlushes = sharded->flushes();
    } else if (const auto *ring = dynamic_cast<const RingAggregator *>(
                   aggregator.get())) {
        result.transport = ring->stats();
        const WindowedProfile &window = ring->mergedWindow();
        result.windowAdvances = window.advances();
        result.windowStalenessEpochs = window.stalenessEpochs();
        result.windowMass = window.mass();
    }
    return result;
}

} // namespace pep::runtime
