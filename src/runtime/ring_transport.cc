#include "runtime/ring_transport.hh"

#include "support/panic.hh"

namespace pep::runtime {

RingAggregator::RingAggregator(
    const std::vector<const bytecode::MethodCfg *> &cfgs,
    std::uint32_t shards, const RingOptions &options)
    : options_(options), globalEdges_(cfgs)
{
    PEP_ASSERT(shards > 0);
    lanes_.reserve(shards);
    for (std::uint32_t s = 0; s < shards; ++s)
        lanes_.push_back(std::make_unique<Lane>(options.capacity));
    windows_.reserve(shards);
    for (std::uint32_t s = 0; s < shards; ++s) {
        windows_.emplace_back(cfgs, options.windowDecay,
                              options.windowPruneEpsilon);
    }
    collector_ = std::thread([this] { collectorBody(); });
}

RingAggregator::~RingAggregator()
{
    if (collector_.joinable()) {
        stopRequested_.store(true, std::memory_order_release);
        collector_.join();
    }
}

void
RingAggregator::push(std::uint32_t shard, const SampleRecord &record)
{
    Lane &lane = *lanes_[shard];
    const std::uint64_t nth =
        lane.produced.fetch_add(1, std::memory_order_relaxed) + 1;
    if (options_.injectLoseAt != 0 && shard == 0 &&
        nth == options_.injectLoseAt) {
        // ring-lost-sample injection: the record vanishes without a
        // drop-counter bump — the bug class the conservation check
        // (differ check 5) exists to catch.
        return;
    }
    // Release, so a monitor that reads this drop (acquire, in stats())
    // also sees the produced increment above — the mid-run invariant
    // consumed + dropped <= produced must never flicker.
    if (!lane.ring.tryPush(record))
        lane.dropped.fetch_add(1, std::memory_order_release);
}

void
RingAggregator::recordEdge(std::uint32_t shard,
                           bytecode::MethodId method, cfg::EdgeRef edge,
                           std::uint64_t n)
{
    PEP_ASSERT(shard < lanes_.size());
    push(shard, SampleRecord::forEdge(method, edge, n));
}

void
RingAggregator::recordPath(std::uint32_t shard,
                           bytecode::MethodId method,
                           std::uint64_t path_number, std::uint64_t n)
{
    PEP_ASSERT(shard < lanes_.size());
    push(shard, SampleRecord::forPath(method, path_number, n));
}

void
RingAggregator::flush(std::uint32_t shard)
{
    PEP_ASSERT(shard < lanes_.size());
    Lane &lane = *lanes_[shard];
    lane.epochMarks.fetch_add(1, std::memory_order_relaxed);
    if (!lane.ring.tryPush(SampleRecord::epochMark()))
        lane.droppedEpochMarks.fetch_add(1, std::memory_order_release);
}

void
RingAggregator::apply(std::uint32_t shard, const SampleRecord &record)
{
    switch (record.kind) {
      case SampleRecord::Kind::Edge:
        PEP_ASSERT(record.method < globalEdges_.perMethod.size());
        globalEdges_.perMethod[record.method].addEdge(record.edge,
                                                      record.count);
        windows_[shard].addEdge(record.method, record.edge,
                                record.count);
        break;
      case SampleRecord::Kind::Path:
        PEP_ASSERT(record.method < globalEdges_.perMethod.size());
        globalPaths_[PathKey{record.method, record.pathNumber}] +=
            record.count;
        windows_[shard].addPath(record.method, record.pathNumber,
                                record.count);
        break;
      case SampleRecord::Kind::EpochMark:
        windows_[shard].advance();
        break;
    }
}

bool
RingAggregator::sweepOnce()
{
    // Bounded batch per lane per sweep, so one firehose lane cannot
    // starve the others' windows indefinitely.
    constexpr int kBatch = 1024;
    bool drained = false;
    SampleRecord record;
    for (std::uint32_t s = 0; s < lanes_.size(); ++s) {
        Lane &lane = *lanes_[s];
        for (int i = 0; i < kBatch && lane.ring.tryPop(record); ++i) {
            apply(s, record);
            if (record.kind != SampleRecord::Kind::EpochMark) {
                lane.consumedSamples.fetch_add(
                    1, std::memory_order_release);
            }
            drained = true;
        }
    }
    return drained;
}

void
RingAggregator::collectorBody()
{
    while (true) {
        if (!sweepOnce()) {
            // Producers stop before stopRequested_ is set (quiesce()'s
            // contract), so an empty sweep after the flag means the
            // rings are drained for good.
            if (stopRequested_.load(std::memory_order_acquire))
                break;
            std::this_thread::yield();
        }
    }
}

void
RingAggregator::quiesce()
{
    if (quiesced_)
        return;
    stopRequested_.store(true, std::memory_order_release);
    collector_.join();
    while (sweepOnce()) {
        // Belt and braces: the collector already drained everything,
        // but a straggler push between its last sweep and the join
        // would land here.
    }
    for (const WindowedProfile &window : windows_)
        mergedWindow_.merge(window);
    quiesced_ = true;
}

const profile::EdgeProfileSet &
RingAggregator::globalEdges() const
{
    PEP_ASSERT(quiesced_);
    return globalEdges_;
}

const PathTotals &
RingAggregator::globalPaths() const
{
    PEP_ASSERT(quiesced_);
    return globalPaths_;
}

RingTransportStats
RingAggregator::stats() const
{
    RingTransportStats stats;
    for (const std::unique_ptr<Lane> &lane : lanes_) {
        // Read the "record accounted for" counters first, with
        // acquire: their release increments carry the corresponding
        // produced/epochMarks increments with them, so a mid-run
        // snapshot always satisfies consumed + dropped <= produced
        // (and droppedEpochMarks <= epochMarks) per lane.
        stats.consumed +=
            lane->consumedSamples.load(std::memory_order_acquire);
        stats.dropped += lane->dropped.load(std::memory_order_acquire);
        stats.droppedEpochMarks +=
            lane->droppedEpochMarks.load(std::memory_order_acquire);
        stats.produced +=
            lane->produced.load(std::memory_order_relaxed);
        stats.epochMarks +=
            lane->epochMarks.load(std::memory_order_relaxed);
    }
    return stats;
}

const WindowedProfile &
RingAggregator::window(std::uint32_t shard) const
{
    PEP_ASSERT(quiesced_);
    PEP_ASSERT(shard < windows_.size());
    return windows_[shard];
}

const WindowedProfile &
RingAggregator::mergedWindow() const
{
    PEP_ASSERT(quiesced_);
    return mergedWindow_;
}

} // namespace pep::runtime
