#include "runtime/request_stream.hh"

#include <string>

#include "support/panic.hh"
#include "support/rng.hh"
#include "workload/program_builder.hh"

namespace pep::runtime {

namespace {

using bytecode::MethodId;
using bytecode::Opcode;
using support::Rng;
using workload::Label;
using workload::MethodBuilder;
using workload::ProgramBuilder;

/** Smallest 2^k - 1 covering [0, n]. */
std::int32_t
maskFor(std::uint32_t n)
{
    std::uint32_t mask = 1;
    while (mask < n)
        mask = mask * 2 + 1;
    return static_cast<std::int32_t>(mask);
}

/** Shared generation state: the threshold-global table grows as
 *  rnd-diamonds are emitted. */
struct Gen
{
    const RequestStreamSpec &spec;
    Rng rng;
    std::vector<std::int32_t> thresholds; // globals[1 + i]
    std::vector<MethodId> leafIds;

    explicit Gen(const RequestStreamSpec &s)
        : spec(s), rng(s.seed ^ 0xc0ffee5eedull)
    {
    }

    /** Allocate a threshold global for a branch bias in [0.15, 0.85]. */
    std::int32_t
    newThresholdSlot()
    {
        const double bias = 0.15 + rng.nextDouble() * 0.7;
        thresholds.push_back(
            static_cast<std::int32_t>(bias * 65536.0));
        return static_cast<std::int32_t>(thresholds.size());
    }
};

/** A few cheap arithmetic instructions mutating a scratch local. */
void
emitFiller(MethodBuilder &b, Rng &rng, std::uint32_t scratch,
           std::uint32_t count)
{
    for (std::uint32_t i = 0; i < count; ++i) {
        switch (rng.nextBounded(3)) {
          case 0:
            b.iinc(scratch,
                   static_cast<std::int32_t>(rng.nextRange(1, 9)));
            break;
          case 1:
            b.iload(scratch);
            b.iconst(
                static_cast<std::int32_t>(rng.nextRange(3, 4095)));
            b.emit(Opcode::Ixor);
            b.istore(scratch);
            break;
          default:
            b.iload(scratch);
            b.iconst(static_cast<std::int32_t>(rng.nextRange(1, 4)));
            b.emit(Opcode::Ishr);
            b.istore(scratch);
            break;
        }
    }
}

/** if ((Irnd & 0xffff) < globals[slot]) — a data-dependent diamond
 *  whose bias lives in a read-only global. */
void
emitRndDiamond(MethodBuilder &b, Gen &gen, std::uint32_t scratch)
{
    b.emit(Opcode::Irnd);
    b.iconst(0xffff);
    b.emit(Opcode::Iand);
    b.iconst(gen.newThresholdSlot());
    b.emit(Opcode::Gload);

    Label taken = b.newLabel();
    Label join = b.newLabel();
    b.branch(Opcode::IfIcmplt, taken);
    emitFiller(b, gen.rng, scratch, 2);
    b.jump(join);
    b.bind(taken);
    emitFiller(b, gen.rng, scratch, 2);
    b.bind(join);
}

/** if ((arg >> bit) & 1) — direction chosen by the request argument. */
void
emitArgDiamond(MethodBuilder &b, Gen &gen, std::uint32_t arg_slot,
               std::uint32_t scratch)
{
    const std::int32_t bit =
        static_cast<std::int32_t>(gen.rng.nextRange(2, 13));
    b.iload(arg_slot);
    b.iconst(bit);
    b.emit(Opcode::Ishr);
    b.iconst(1);
    b.emit(Opcode::Iand);

    Label taken = b.newLabel();
    Label join = b.newLabel();
    b.branch(Opcode::Ifne, taken);
    emitFiller(b, gen.rng, scratch, 2);
    b.jump(join);
    b.bind(taken);
    emitFiller(b, gen.rng, scratch, 2);
    b.bind(join);
}

/** tableswitch on ((arg + i * stride) & mask). */
void
emitArgSwitch(MethodBuilder &b, Gen &gen, std::uint32_t arg_slot,
              std::uint32_t loop_var, std::uint32_t scratch)
{
    const std::uint32_t cases = gen.spec.switchCases;
    PEP_ASSERT(cases > 0);
    const std::int32_t stride =
        static_cast<std::int32_t>(gen.rng.nextRange(1, 5));

    b.iload(arg_slot);
    b.iload(loop_var);
    b.iconst(stride);
    b.emit(Opcode::Imul);
    b.emit(Opcode::Iadd);
    b.iconst(maskFor(cases)); // wider than the range: skews to default
    b.emit(Opcode::Iand);

    std::vector<Label> case_labels;
    case_labels.reserve(cases);
    for (std::uint32_t c = 0; c < cases; ++c)
        case_labels.push_back(b.newLabel());
    Label def = b.newLabel();
    Label join = b.newLabel();
    b.tableswitch(0, def, case_labels);
    for (std::uint32_t c = 0; c < cases; ++c) {
        b.bind(case_labels[c]);
        emitFiller(b, gen.rng, scratch, 1);
        b.jump(join);
    }
    b.bind(def);
    emitFiller(b, gen.rng, scratch, 1);
    b.bind(join);
}

/** A short inner loop: j = Irnd & 3; while (j > 0) { filler; --j }. */
void
emitInnerLoop(MethodBuilder &b, Gen &gen, std::uint32_t scratch)
{
    const std::uint32_t j = b.newLocal();
    b.emit(Opcode::Irnd);
    b.iconst(3);
    b.emit(Opcode::Iand);
    b.istore(j);

    Label head = b.newLabel();
    Label exit = b.newLabel();
    b.bind(head);
    b.iload(j);
    b.branch(Opcode::Ifle, exit);
    emitFiller(b, gen.rng, scratch, 1);
    b.iinc(j, -1);
    b.jump(head);
    b.bind(exit);
}

/** sum += leaf(arg + i). */
void
emitLeafCall(MethodBuilder &b, Gen &gen, std::uint32_t arg_slot,
             std::uint32_t loop_var, std::uint32_t sum)
{
    const MethodId callee = gen.leafIds[gen.rng.nextBounded(
        gen.leafIds.size())];
    b.iload(sum);
    b.iload(arg_slot);
    b.iload(loop_var);
    b.emit(Opcode::Iadd);
    b.invoke(callee);
    b.emit(Opcode::Iadd);
    b.istore(sum);
}

/** One of the handler-body control-flow elements, chosen by shape rng. */
void
emitElement(MethodBuilder &b, Gen &gen, std::uint32_t arg_slot,
            std::uint32_t loop_var, std::uint32_t sum,
            std::uint32_t scratch)
{
    switch (gen.rng.nextBounded(5)) {
      case 0:
        emitRndDiamond(b, gen, scratch);
        break;
      case 1:
      case 2: // argument-keyed flow dominates: requests matter
        emitArgDiamond(b, gen, arg_slot, scratch);
        break;
      case 3:
        emitArgSwitch(b, gen, arg_slot, loop_var, scratch);
        break;
      default:
        if (gen.leafIds.empty())
            emitInnerLoop(b, gen, scratch);
        else if (gen.rng.nextBool(0.5))
            emitLeafCall(b, gen, arg_slot, loop_var, sum);
        else
            emitInnerLoop(b, gen, scratch);
        break;
    }
}

/** leaf(x): a small diamond on x & 1, some filler, return. */
void
emitLeafBody(MethodBuilder &b, Gen &gen)
{
    const std::uint32_t x = b.argSlot(0);
    const std::uint32_t scratch = b.newLocal();

    b.iload(x);
    b.iconst(1);
    b.emit(Opcode::Iand);
    Label odd = b.newLabel();
    Label join = b.newLabel();
    b.branch(Opcode::Ifne, odd);
    emitFiller(b, gen.rng, scratch, 2);
    b.jump(join);
    b.bind(odd);
    emitFiller(b, gen.rng, scratch, 3);
    b.bind(join);

    b.iload(x);
    b.iconst(3);
    b.emit(Opcode::Imul);
    b.iload(scratch);
    b.emit(Opcode::Ixor);
    b.iret();
}

/**
 * handle(arg): trips = 1 + (arg & tripMask); a loop running `trips`
 * times over a generated mix of control-flow elements; returns a
 * checksum.
 */
void
emitHandlerBody(MethodBuilder &b, Gen &gen)
{
    const std::uint32_t arg = b.argSlot(0);
    const std::uint32_t sum = b.newLocal();
    const std::uint32_t scratch = b.newLocal();
    const std::uint32_t trips = b.newLocal();
    const std::uint32_t i = b.newLocal();

    b.iload(arg);
    b.iconst(maskFor(gen.spec.maxTrips > 0 ? gen.spec.maxTrips - 1
                                           : 0));
    b.emit(Opcode::Iand);
    b.iconst(1);
    b.emit(Opcode::Iadd);
    b.istore(trips);

    Label head = b.newLabel();
    Label exit = b.newLabel();
    b.iconst(0);
    b.istore(i);
    b.bind(head);
    b.iload(i);
    b.iload(trips);
    b.branch(Opcode::IfIcmpge, exit);
    for (std::uint32_t e = 0; e < gen.spec.elementsPerBody; ++e)
        emitElement(b, gen, arg, i, sum, scratch);
    b.iinc(i, 1);
    b.jump(head);
    b.bind(exit);

    b.iload(sum);
    b.iload(scratch);
    b.emit(Opcode::Ixor);
    b.iret();
}

} // namespace

RequestStream::RequestStream(const RequestStreamSpec &spec) : spec_(spec)
{
    PEP_ASSERT(spec_.handlers > 0);
    Gen gen(spec_);
    ProgramBuilder pb;

    const MethodId main_id = pb.declareMethod("main", 0, false);
    for (std::uint32_t l = 0; l < spec_.leaves; ++l) {
        gen.leafIds.push_back(
            pb.declareMethod("leaf" + std::to_string(l), 1, true));
    }
    for (std::uint32_t h = 0; h < spec_.handlers; ++h) {
        handlerIds_.push_back(
            pb.declareMethod("handle" + std::to_string(h), 1, true));
    }

    for (std::uint32_t l = 0; l < spec_.leaves; ++l) {
        MethodBuilder b("leaf" + std::to_string(l), 1, true);
        emitLeafBody(b, gen);
        pb.define(gen.leafIds[l], b);
    }
    for (std::uint32_t h = 0; h < spec_.handlers; ++h) {
        MethodBuilder b("handle" + std::to_string(h), 1, true);
        emitHandlerBody(b, gen);
        pb.define(handlerIds_[h], b);
    }

    // main() exercises each handler once with a fixed argument, so the
    // program also works as a plain iteration workload (and the
    // verifier sees every method reachable).
    {
        MethodBuilder b("main", 0, false);
        for (std::uint32_t h = 0; h < spec_.handlers; ++h) {
            b.iconst(static_cast<std::int32_t>(17 + 101 * h));
            b.invoke(handlerIds_[h]);
            b.emit(Opcode::Pop);
        }
        b.ret();
        pb.define(main_id, b);
    }

    // globals[0] is a scratch slot; 1.. are the read-only thresholds
    // the generated rnd-diamonds compare against.
    std::vector<std::int32_t> initial_globals;
    initial_globals.push_back(0);
    initial_globals.insert(initial_globals.end(),
                           gen.thresholds.begin(),
                           gen.thresholds.end());
    pb.setGlobalSize(
        static_cast<std::uint32_t>(initial_globals.size()));
    pb.setInitialGlobals(std::move(initial_globals));
    pb.setMain(main_id);
    program_ = pb.build();

    // The request stream: uniform handler choice; the argument
    // distribution shifts at the phase split (high bits flip, so
    // argument-keyed diamonds and switches change direction).
    Rng stream_rng(spec_.seed ^ 0x57cea817ull);
    const auto phase_boundary = static_cast<std::uint32_t>(
        spec_.phaseSplit * static_cast<double>(spec_.requests));
    requests_.reserve(spec_.requests);
    for (std::uint32_t i = 0; i < spec_.requests; ++i) {
        Request request;
        request.handler = static_cast<std::uint32_t>(
            stream_rng.nextBounded(spec_.handlers));
        auto arg = static_cast<std::int32_t>(
            stream_rng.nextBounded(1u << 12));
        if (i >= phase_boundary)
            arg |= 0x3000;
        request.arg = arg;
        requests_.push_back(request);
    }
}

std::vector<Request>
RequestStream::shard(std::uint32_t shard_index,
                     std::uint32_t shards) const
{
    PEP_ASSERT(shards > 0 && shard_index < shards);
    std::vector<Request> result;
    for (std::size_t i = shard_index; i < requests_.size(); i += shards)
        result.push_back(requests_[i]);
    return result;
}

} // namespace pep::runtime
