#ifndef PEP_RUNTIME_SPSC_RING_HH
#define PEP_RUNTIME_SPSC_RING_HH

/**
 * @file
 * The sample transport's wire format and queue: a compact profile
 * sample record and a bounded lock-free single-producer /
 * single-consumer ring buffer, the way production sampling profilers
 * move samples from mutators to a collector (spprof's fixed-slot ring
 * with explicit dropped-sample accounting is the model).
 *
 * Two rules govern the design, both load-bearing for a profiler that
 * runs inside a service indefinitely:
 *
 *  - **Producers never block.** A push either claims a free slot or
 *    fails immediately; there is no lock, no wait, no allocation. The
 *    mutator's worst case is one failed compare and a counter bump.
 *  - **Memory is bounded.** The ring is a fixed array sized at
 *    construction. When the collector falls behind, samples are
 *    dropped at the producer — and every drop is *counted* by the
 *    owner of the ring (see ring_transport.hh), never silent.
 *
 * The queue is the classic Lamport SPSC ring over monotonically
 * increasing positions: the producer owns `tail_`, the consumer owns
 * `head_`, each reads the other's position with acquire ordering and
 * publishes its own with release ordering. Each side additionally
 * caches the last-seen opposing position so the common case touches
 * only its own cache line (the cached value is refreshed — one acquire
 * load — only when the ring looks full/empty).
 */

#include <atomic>
#include <cstdint>
#include <vector>

#include "bytecode/instr.hh"
#include "cfg/graph.hh"
#include "support/panic.hh"

namespace pep::runtime {

/**
 * One profile event in flight from a mutator to the collector. Plain
 * 32-byte POD — slots are preallocated and records are copied in/out
 * whole, so pushing is a handful of stores.
 */
struct SampleRecord
{
    enum class Kind : std::uint32_t
    {
        Edge,      ///< `edge` of `method` crossed `count` times
        Path,      ///< path `pathNumber` of `method` completed `count` times
        EpochMark, ///< producer epoch boundary: advance the shard's window
    };

    Kind kind = Kind::Edge;
    bytecode::MethodId method = 0;
    cfg::EdgeRef edge{};
    std::uint64_t pathNumber = 0;
    std::uint64_t count = 1;

    static SampleRecord
    forEdge(bytecode::MethodId method, cfg::EdgeRef edge,
            std::uint64_t count)
    {
        SampleRecord record;
        record.kind = Kind::Edge;
        record.method = method;
        record.edge = edge;
        record.count = count;
        return record;
    }

    static SampleRecord
    forPath(bytecode::MethodId method, std::uint64_t path_number,
            std::uint64_t count)
    {
        SampleRecord record;
        record.kind = Kind::Path;
        record.method = method;
        record.pathNumber = path_number;
        record.count = count;
        return record;
    }

    static SampleRecord
    epochMark()
    {
        SampleRecord record;
        record.kind = Kind::EpochMark;
        record.count = 0;
        return record;
    }
};

/** Bounded lock-free SPSC ring of SampleRecords. Exactly one thread
 *  may push and exactly one may pop; either side may also be polled
 *  for positions (size()/pushed()/popped() are atomic reads). */
class SpscRing
{
  public:
    /** Capacity is rounded up to a power of two (minimum 2). */
    explicit SpscRing(std::uint32_t capacity)
    {
        std::uint64_t rounded = 2;
        while (rounded < capacity)
            rounded <<= 1;
        slots_.resize(static_cast<std::size_t>(rounded));
        mask_ = rounded - 1;
    }

    std::uint64_t capacity() const { return mask_ + 1; }

    /** Producer only. False (and no side effect) when the ring is
     *  full — the caller is responsible for counting the drop. */
    bool
    tryPush(const SampleRecord &record)
    {
        const std::uint64_t tail =
            tail_.load(std::memory_order_relaxed);
        if (tail - headCache_ == capacity()) {
            headCache_ = head_.load(std::memory_order_acquire);
            if (tail - headCache_ == capacity())
                return false;
        }
        slots_[tail & mask_] = record;
        tail_.store(tail + 1, std::memory_order_release);
        return true;
    }

    /** Consumer only. False when the ring is empty. */
    bool
    tryPop(SampleRecord &out)
    {
        const std::uint64_t head =
            head_.load(std::memory_order_relaxed);
        if (head == tailCache_) {
            tailCache_ = tail_.load(std::memory_order_acquire);
            if (head == tailCache_)
                return false;
        }
        out = slots_[head & mask_];
        head_.store(head + 1, std::memory_order_release);
        return true;
    }

    /** Records ever pushed / popped (monotonic positions; safe to read
     *  from any thread). */
    std::uint64_t
    pushed() const
    {
        return tail_.load(std::memory_order_acquire);
    }

    std::uint64_t
    popped() const
    {
        return head_.load(std::memory_order_acquire);
    }

    /** Records currently buffered (racy but consistent snapshot). */
    std::uint64_t
    size() const
    {
        const std::uint64_t head = head_.load(std::memory_order_acquire);
        return tail_.load(std::memory_order_acquire) - head;
    }

  private:
    std::vector<SampleRecord> slots_;
    std::uint64_t mask_ = 0;

    /** Consumer position; written by the consumer only. The producer's
     *  cached copy lives on the producer's line below. */
    alignas(64) std::atomic<std::uint64_t> head_{0};
    alignas(64) std::uint64_t tailCache_ = 0; // consumer's view of tail_

    /** Producer position; written by the producer only. */
    alignas(64) std::atomic<std::uint64_t> tail_{0};
    alignas(64) std::uint64_t headCache_ = 0; // producer's view of head_
};

} // namespace pep::runtime

#endif // PEP_RUNTIME_SPSC_RING_HH
