#ifndef PEP_RUNTIME_RING_TRANSPORT_HH
#define PEP_RUNTIME_RING_TRANSPORT_HH

/**
 * @file
 * The production sample transport: per-worker bounded SPSC ring
 * buffers (spsc_ring.hh) carrying compact SampleRecords from mutators
 * to one dedicated collector thread, which folds them into the global
 * profile and into per-shard windowed-decay profiles
 * (profile_window.hh). This is the third Aggregation strategy behind
 * the ProfileAggregator interface — the one shaped like a real
 * continuous profiler rather than a benchmark baseline:
 *
 *  - **Producers never block.** recordEdge/recordPath try one
 *    lock-free push; on a full ring the record is dropped and the
 *    shard's drop counter bumped. No lock, no wait, no allocation on
 *    the mutator's path — the service's tail latency cannot be held
 *    hostage by the profiler.
 *  - **Drops are observable, never silent.** Every lane keeps
 *    produced / dropped counters (the ring itself carries the
 *    consumed position), and the conservation law
 *    `produced == consumed + dropped` holds at quiescence — asserted
 *    by the differ (check 5) and broken on purpose by the
 *    `ring-lost-sample` fault injection to prove the harness notices.
 *  - **Zero drops ⇒ byte-equivalent to MutexAggregator.** Collection
 *    is pure commutative addition, so when nothing is dropped the
 *    global edge and path totals are count-for-count identical to the
 *    mutex baseline (the PR 4 determinism contract, extended).
 *  - **Windows track phases.** flush(shard) enqueues an EpochMark;
 *    the collector advances that shard's WindowedProfile when the
 *    mark drains, so the decayed view is a deterministic function of
 *    each shard's own record stream even though collector
 *    interleaving across shards is not deterministic.
 *
 * Threading contract: shard s's record/flush calls come from one
 * producer thread at a time (the SPSC rule, same as ShardedAggregator);
 * the collector is the only consumer. quiesce() must be called after
 * all producers stop and before reading globalEdges()/globalPaths() —
 * it drains every ring, joins the collector, and merges the per-shard
 * windows into the merged snapshot.
 */

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "runtime/profile_window.hh"
#include "runtime/sharded_profile.hh"
#include "runtime/spsc_ring.hh"

namespace pep::runtime {

/** Ring-transport tuning knobs. */
struct RingOptions
{
    /** Slots per worker ring (rounded up to a power of two). The
     *  backpressure policy: when the collector lags by more than this
     *  many records, new samples are dropped-and-counted. */
    std::uint32_t capacity = 1u << 14;

    /** EWMA multiplier per epoch for the windowed profiles;
     *  effective window length is 1/(1-decay) epochs. */
    double windowDecay = 0.5;

    /** Windowed path entries decaying below this weight are pruned. */
    double windowPruneEpsilon = 1e-6;

    /**
     * Fault injection for the differ's harness self-test
     * (`ring-lost-sample`): shard 0's `injectLoseAt`-th record is
     * silently discarded — produced is counted, the record is neither
     * delivered nor counted as dropped — modelling a transport that
     * loses samples without accounting. The conservation check and
     * the zero-drop identity check must both catch it. 0 = off.
     */
    std::uint64_t injectLoseAt = 0;
};

/** Mid-run-safe transport counters (all atomically readable). */
struct RingTransportStats
{
    std::uint64_t produced = 0;  ///< records offered by producers
    std::uint64_t consumed = 0;  ///< records applied by the collector
    std::uint64_t dropped = 0;   ///< records rejected by full rings
    std::uint64_t epochMarks = 0;        ///< marks enqueued
    std::uint64_t droppedEpochMarks = 0; ///< marks rejected (ring full)

    double
    dropRate() const
    {
        return produced > 0 ? static_cast<double>(dropped) /
                                  static_cast<double>(produced)
                            : 0.0;
    }
};

/** SPSC-ring transport to a dedicated collector thread. */
class RingAggregator final : public ProfileAggregator
{
  public:
    RingAggregator(const std::vector<const bytecode::MethodCfg *> &cfgs,
                   std::uint32_t shards, const RingOptions &options);
    ~RingAggregator() override;

    RingAggregator(const RingAggregator &) = delete;
    RingAggregator &operator=(const RingAggregator &) = delete;

    void recordEdge(std::uint32_t shard, bytecode::MethodId method,
                    cfg::EdgeRef edge, std::uint64_t n = 1) override;
    void recordPath(std::uint32_t shard, bytecode::MethodId method,
                    std::uint64_t path_number,
                    std::uint64_t n = 1) override;

    /** Enqueue an EpochMark: the shard's window advances when the
     *  collector drains it. Never blocks; a full ring drops the mark
     *  (counted — the window just advances one epoch late). */
    void flush(std::uint32_t shard) override;

    /** Drain all rings, stop the collector, merge windows. Idempotent;
     *  producers must already have stopped. */
    void quiesce() override;

    const profile::EdgeProfileSet &globalEdges() const override;
    const PathTotals &globalPaths() const override;

    std::string name() const override { return "ring"; }

    /** Safe to call from any thread at any time (monitor threads poll
     *  this mid-run; every field is an atomic read). */
    RingTransportStats stats() const;

    std::uint64_t ringCapacity() const { return lanes_[0]->ring.capacity(); }

    /** Per-shard / merged windowed profiles; quiesce() first. */
    const WindowedProfile &window(std::uint32_t shard) const;
    const WindowedProfile &mergedWindow() const;

  private:
    /**
     * One worker's transport lane. Heap-allocated (unique_ptr) and
     * alignas(64) so no two lanes — and no lane and the collector's
     * state — share a cache line; the producer-side counters here are
     * written only by the owning worker, read by anyone.
     */
    struct alignas(64) Lane
    {
        explicit Lane(std::uint32_t capacity) : ring(capacity) {}

        SpscRing ring;
        std::atomic<std::uint64_t> produced{0};
        std::atomic<std::uint64_t> dropped{0};
        std::atomic<std::uint64_t> epochMarks{0};
        std::atomic<std::uint64_t> droppedEpochMarks{0};

        /** Sample records (marks excluded) applied by the collector —
         *  the collector is the only writer. */
        std::atomic<std::uint64_t> consumedSamples{0};
    };

    void push(std::uint32_t shard, const SampleRecord &record);
    void collectorBody();

    /** Pop-and-apply every buffered record once; true if any drained. */
    bool sweepOnce();

    void apply(std::uint32_t shard, const SampleRecord &record);

    RingOptions options_;
    std::vector<std::unique_ptr<Lane>> lanes_;

    // Collector-owned state: touched only by the collector thread
    // until quiesce() joins it.
    profile::EdgeProfileSet globalEdges_;
    PathTotals globalPaths_;
    std::vector<WindowedProfile> windows_;
    WindowedProfile mergedWindow_;

    std::atomic<bool> stopRequested_{false};
    bool quiesced_ = false;
    std::thread collector_;
};

} // namespace pep::runtime

#endif // PEP_RUNTIME_RING_TRANSPORT_HH
