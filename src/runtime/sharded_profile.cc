#include "runtime/sharded_profile.hh"

#include "support/panic.hh"

namespace pep::runtime {

ShardedAggregator::ShardedAggregator(
    const std::vector<const bytecode::MethodCfg *> &cfgs,
    std::uint32_t shards)
    : globalEdges_(cfgs)
{
    PEP_ASSERT(shards > 0);
    shards_.resize(shards);
    for (Shard &shard : shards_)
        shard.edges = profile::EdgeProfileSet(cfgs);
}

void
ShardedAggregator::recordEdge(std::uint32_t shard,
                              bytecode::MethodId method,
                              cfg::EdgeRef edge, std::uint64_t n)
{
    // An out-of-range worker index is a caller bug; indexing shards_
    // unchecked would be silent UB, so every entry point asserts.
    PEP_ASSERT(shard < shards_.size());
    Shard &s = shards_[shard];
    s.edges.perMethod[method].addEdge(edge, n);
    ++s.records;
}

void
ShardedAggregator::recordPath(std::uint32_t shard,
                              bytecode::MethodId method,
                              std::uint64_t path_number, std::uint64_t n)
{
    PEP_ASSERT(shard < shards_.size());
    Shard &s = shards_[shard];
    s.paths[PathKey{method, path_number}] += n;
    ++s.records;
}

void
ShardedAggregator::flush(std::uint32_t shard)
{
    PEP_ASSERT(shard < shards_.size());
    Shard &s = shards_[shard];
    if (s.records == 0)
        return;
    {
        std::lock_guard<std::mutex> lock(flushMutex_);
        globalEdges_.merge(s.edges);
        for (const auto &[key, count] : s.paths)
            globalPaths_[key] += count;
        flushes_.fetch_add(1, std::memory_order_relaxed);
    }
    s.edges.clear();
    s.paths.clear();
    s.records = 0;
}

MutexAggregator::MutexAggregator(
    const std::vector<const bytecode::MethodCfg *> &cfgs)
    : edges_(cfgs)
{
}

void
MutexAggregator::recordEdge(std::uint32_t /*shard*/,
                            bytecode::MethodId method, cfg::EdgeRef edge,
                            std::uint64_t n)
{
    std::lock_guard<std::mutex> lock(mutex_);
    edges_.perMethod[method].addEdge(edge, n);
}

void
MutexAggregator::recordPath(std::uint32_t /*shard*/,
                            bytecode::MethodId method,
                            std::uint64_t path_number, std::uint64_t n)
{
    std::lock_guard<std::mutex> lock(mutex_);
    paths_[PathKey{method, path_number}] += n;
}

void
MutexAggregator::flush(std::uint32_t /*shard*/)
{
    // Every record is already global.
}

} // namespace pep::runtime
