#include "runtime/coop_scheduler.hh"

#include "support/panic.hh"

namespace pep::runtime {

CoopScheduler::CoopScheduler(vm::Machine &machine,
                             const CoopOptions &options)
    : vm_(machine), options_(options),
      rng_(options.seed ^ 0x5ced0c0de5ull)
{
    PEP_ASSERT(options_.threads > 0);
    threads_.resize(options_.threads);
    for (std::uint32_t t = 0; t < options_.threads; ++t) {
        threads_[t].interp =
            std::make_unique<vm::Interpreter>(vm_, t);
    }
}

CoopScheduler::~CoopScheduler()
{
    if (vm_.scheduler() == this)
        vm_.setScheduler(nullptr);
}

void
CoopScheduler::assign(std::uint32_t thread, const RequestStream &stream,
                      const Request &request)
{
    PEP_ASSERT(thread < threads_.size());
    threads_[thread].stream = &stream;
    threads_[thread].queue.push_back(request);
}

void
CoopScheduler::assignRoundRobin(const RequestStream &stream)
{
    const std::vector<Request> &requests = stream.requests();
    for (std::size_t i = 0; i < requests.size(); ++i) {
        assign(static_cast<std::uint32_t>(i % threads_.size()), stream,
               requests[i]);
    }
}

bool
CoopScheduler::runnable(const VThread &t) const
{
    return !t.interp->done() || !t.queue.empty();
}

std::uint32_t
CoopScheduler::pickNext()
{
    std::vector<std::uint32_t> candidates;
    candidates.reserve(threads_.size());
    for (std::uint32_t t = 0; t < threads_.size(); ++t) {
        if (runnable(threads_[t]))
            candidates.push_back(t);
    }
    if (candidates.empty())
        return static_cast<std::uint32_t>(threads_.size());
    return candidates[rng_.nextBounded(candidates.size())];
}

bool
CoopScheduler::onYieldpoint(std::uint32_t /*thread*/,
                            vm::YieldpointKind /*kind*/, bool tick_fired)
{
    if (tick_fired)
        switchPending_ = true;
    return switchPending_;
}

void
CoopScheduler::run()
{
    PEP_ASSERT_MSG(vm_.scheduler() == nullptr ||
                       vm_.scheduler() == this,
                   "another scheduler is attached to this machine");
    vm_.setScheduler(this);

    std::uint32_t current = pickNext();
    while (current < threads_.size()) {
        VThread &t = threads_[current];
        if (t.interp->done()) {
            const Request request = t.queue.front();
            t.queue.pop_front();
            t.interp->start(t.stream->handlerMethod(request.handler),
                            {request.arg});
        }
        ++stats_.resumes;
        const bool finished = t.interp->resume();
        if (finished)
            ++stats_.requestsCompleted;
        if (switchPending_) {
            // The tick-flagged yieldpoint parked the thread (or it
            // finished with the flag still set); hand the virtual
            // processor to a seeded choice of runnable thread.
            switchPending_ = false;
            ++stats_.contextSwitches;
            current = pickNext();
        } else if (finished && t.queue.empty()) {
            current = pickNext();
        }
    }

    vm_.setScheduler(nullptr);
}

} // namespace pep::runtime
