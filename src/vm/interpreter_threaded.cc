#include "vm/interpreter.hh"

#include "vm/decoded_method.hh"
#include "vm/inliner.hh"

#include "support/panic.hh"

/**
 * @file
 * The threaded execution backend (docs/ENGINE.md): executes the
 * pre-decoded template stream of each frame's compiled version.
 * Straight-line template handlers are a charge (+= the segment sum,
 * zero off segment leaders), the operation itself, and an indirect
 * jump — no per-instruction decode, cost lookup, leader test, or
 * park check. All boundary work (edges, yieldpoints, frame push/pop,
 * OSR) funnels through the same helpers as the switch backend, which
 * is what makes the two engines byte-identical on profiles, samples,
 * and simulated cycles.
 *
 * Fused superinstruction handlers (PEP_FUSE=pairs) execute two or
 * three constituent instructions per dispatch with their operands
 * burned into the template; trace handlers (PEP_FUSE=traces) run
 * straightened multi-block segments whose whole charge was prepaid on
 * the trace head — interior guards refund the unexecuted suffix on a
 * mispredicted exit *before* the edge event can fire a back-edge
 * yieldpoint, so the clock is byte-exact at every observation point
 * (see decoded_method.hh for the invariants that make interiors
 * yieldpoint-free).
 *
 * Dispatch is computed goto on GCC/Clang; defining
 * PEP_THREADED_FORCE_SWITCH selects the portable switch fallback
 * (same templates, same behaviour).
 */

#if (defined(__GNUC__) || defined(__clang__)) && \
    !defined(PEP_THREADED_FORCE_SWITCH)
#define PEP_THREADED_COMPUTED_GOTO 1
#else
#define PEP_THREADED_COMPUTED_GOTO 0
#endif

namespace pep::vm {

#if PEP_THREADED_COMPUTED_GOTO
#define PEP_OP(name) L_##name:
#define PEP_TOP_AT(label, VALUE) L_##label:
#define PEP_DISPATCH() goto *kLabels[ts[tp].op]
#else
#define PEP_OP(name) case static_cast<std::uint8_t>(bytecode::Opcode::name):
#define PEP_TOP_AT(label, VALUE) case (VALUE):
#define PEP_DISPATCH() goto dispatch_top
#endif

/** Offsets of an opcode within its fused-top family. */
#define PEP_ARITH_OFF(name)                                            \
    (static_cast<std::uint8_t>(bytecode::Opcode::name) -               \
     static_cast<std::uint8_t>(bytecode::Opcode::Iadd))
#define PEP_ZBR_OFF(name)                                              \
    (static_cast<std::uint8_t>(bytecode::Opcode::name) -               \
     static_cast<std::uint8_t>(bytecode::Opcode::Ifeq))
#define PEP_CBR_OFF(name)                                              \
    (static_cast<std::uint8_t>(bytecode::Opcode::name) -               \
     static_cast<std::uint8_t>(bytecode::Opcode::IfIcmpeq))

/**
 * The single source of truth for binary-arithmetic semantics in this
 * backend: each X(name, EXPR) sees lhs `a` / rhs `b` and their
 * unsigned views `ua` / `ub`. The plain handlers and all four fused
 * families expand from this list, so fused results are the switch
 * engine's results by construction.
 */
#define PEP_FOR_EACH_ARITH(X)                                          \
    X(Iadd, static_cast<std::int32_t>(ua + ub))                        \
    X(Isub, static_cast<std::int32_t>(ua - ub))                        \
    X(Imul, static_cast<std::int32_t>(ua * ub))                        \
    X(Idiv, b == 0 ? 0 : (a == INT32_MIN && b == -1) ? a : a / b)      \
    X(Irem, b == 0 ? 0 : (a == INT32_MIN && b == -1) ? 0 : a % b)      \
    X(Iand, static_cast<std::int32_t>(ua & ub))                        \
    X(Ior, static_cast<std::int32_t>(ua | ub))                         \
    X(Ixor, static_cast<std::int32_t>(ua ^ ub))                        \
    X(Ishl, static_cast<std::int32_t>(ua << (ub & 31)))                \
    X(Ishr, a >> (ub & 31))

/** The conditional-branch comparison operators, per family. */
#define PEP_FOR_EACH_ZEROBR(X)                                         \
    X(Ifeq, ==) X(Ifne, !=) X(Iflt, <) X(Ifge, >=) X(Ifgt, >)          \
    X(Ifle, <=)
#define PEP_FOR_EACH_CMPBR(X)                                          \
    X(IfIcmpeq, ==) X(IfIcmpne, !=) X(IfIcmplt, <) X(IfIcmpge, >=)     \
    X(IfIcmpgt, >) X(IfIcmple, <=)

/** Charge the segment (or trace) sums carried by template `t` (zero
 *  off segment leaders: a branch-free no-op). */
#define PEP_CHARGE(t)                                                  \
    vm_.cycles_ += (t).cost;                                           \
    vm_.stats_.instructionsExecuted += (t).ninstr

/**
 * Transfer control to a pre-resolved target: set the resume pc, fire
 * header events (and the header yieldpoint under the default
 * placement, where OSR may swap the frame's version — then everything
 * cached is stale and we rebind from f->pc), honour a pending park
 * request, and dispatch the target template.
 */
#define PEP_TRANSFER(TGT_TPL, TGT_PC, HDR, TGT_BLOCK)                  \
    do {                                                               \
        f->pc = (TGT_PC);                                              \
        if (HDR) {                                                     \
            const FrameView fv = view(*f);                             \
            for (ExecutionHooks *hooks : vm_.hooks_)                   \
                hooks->onLoopHeader(fv, (TGT_BLOCK));                  \
            if (!yp_on_backedges) {                                    \
                const CompiledMethod *before = f->version;             \
                yieldpoint(YieldpointKind::LoopHeader, (TGT_BLOCK));   \
                if (f->version != before)                              \
                    goto rebind;                                       \
            }                                                          \
        }                                                              \
        if (switchRequested_) {                                        \
            switchRequested_ = false;                                  \
            return;                                                    \
        }                                                              \
        tp = (TGT_TPL);                                                \
    } while (0);                                                       \
    PEP_DISPATCH()

/** Shared body of the conditional-branch handlers (plain and fused). */
#define PEP_COND_TAIL(TAKEN_EXPR)                                      \
    const bool taken = (TAKEN_EXPR);                                   \
    ++vm_.stats_.branchesExecuted;                                     \
    if (taken != (t.layout == 1)) {                                    \
        vm_.cycles_ += cost.layoutMissPenalty;                         \
        ++vm_.stats_.layoutMisses;                                     \
    }                                                                  \
    const std::uint32_t succ = taken ? 0u : 1u;                        \
    if (t.flags & kTplBaselineEdge) {                                  \
        vm_.cycles_ += cost.edgeCounterCost;                           \
        vm_.oneTime_.perMethod[f->method].addEdge(                     \
            cfg::EdgeRef{t.block, succ});                              \
    }                                                                  \
    edgeTakenFast(*f, cfg::EdgeRef{t.block, succ}, t.flatBase + succ); \
    if (taken) {                                                       \
        PEP_TRANSFER(t.taken, t.takenPc, t.flags & kTplTakenHeader,    \
                     t.takenBlock);                                    \
    } else {                                                           \
        PEP_TRANSFER(t.fall, t.fallPc, t.flags & kTplFallHeader,       \
                     t.fallBlock);                                     \
    }

/**
 * Shared body of the trace-guard handlers. Guards only exist on
 * blocks whose layout predicts fall-through (layout != 1), so the
 * taken exit is always the mispredicted one: refund the trace suffix
 * prepaid on the head — *before* the edge event, whose back-edge
 * yieldpoint may read the clock — charge the miss penalty, and leave
 * through a full transfer. The fall exit stays inside the trace:
 * the next block is a non-header single-predecessor member, so no
 * header event, yieldpoint, OSR, or park can occur — a direct jump.
 */
#define PEP_GUARD_TAIL(TAKEN_EXPR)                                     \
    const bool taken = (TAKEN_EXPR);                                   \
    ++vm_.stats_.branchesExecuted;                                     \
    if (taken) {                                                       \
        vm_.cycles_ -= t.swFirst;                                      \
        vm_.stats_.instructionsExecuted -= t.swCount;                  \
        vm_.cycles_ += cost.layoutMissPenalty;                         \
        ++vm_.stats_.layoutMisses;                                     \
    }                                                                  \
    const std::uint32_t succ = taken ? 0u : 1u;                        \
    if (t.flags & kTplBaselineEdge) {                                  \
        vm_.cycles_ += cost.edgeCounterCost;                           \
        vm_.oneTime_.perMethod[f->method].addEdge(                     \
            cfg::EdgeRef{t.block, succ});                              \
    }                                                                  \
    edgeTakenFast(*f, cfg::EdgeRef{t.block, succ}, t.flatBase + succ); \
    if (taken) {                                                       \
        PEP_TRANSFER(t.taken, t.takenPc, t.flags & kTplTakenHeader,    \
                     t.takenBlock);                                    \
    } else {                                                           \
        f->pc = t.fallPc;                                              \
        tp = t.fall;                                                   \
        PEP_DISPATCH();                                                \
    }

/** Zero-compare branch: pop one operand. */
#define PEP_COND_ZERO(name, CMP)                                       \
    PEP_OP(name)                                                       \
    {                                                                  \
        const Template &t = ts[tp];                                    \
        PEP_CHARGE(t);                                                 \
        const std::int32_t v = f->stack.back();                        \
        f->stack.pop_back();                                           \
        PEP_COND_TAIL(v CMP 0)                                         \
    }

/** Two-operand compare branch: pop two (lhs pushed first). */
#define PEP_COND_CMP(name, CMP)                                        \
    PEP_OP(name)                                                       \
    {                                                                  \
        const Template &t = ts[tp];                                    \
        PEP_CHARGE(t);                                                 \
        const std::int32_t b = f->stack.back();                        \
        f->stack.pop_back();                                           \
        const std::int32_t a = f->stack.back();                        \
        f->stack.pop_back();                                           \
        PEP_COND_TAIL(a CMP b)                                         \
    }

/** Wrapping binary arithmetic on the top two stack slots. */
#define PEP_BINOP(name, EXPR)                                          \
    PEP_OP(name)                                                       \
    {                                                                  \
        const Template &t = ts[tp];                                    \
        PEP_CHARGE(t);                                                 \
        const std::int32_t b = f->stack.back();                        \
        f->stack.pop_back();                                           \
        const std::int32_t a = f->stack.back();                        \
        const auto ua = static_cast<std::uint32_t>(a);                 \
        const auto ub = static_cast<std::uint32_t>(b);                 \
        (void)ua;                                                      \
        (void)ub;                                                      \
        f->stack.back() = (EXPR);                                      \
        ++tp;                                                          \
        PEP_DISPATCH();                                                \
    }

/** Trace guard, zero-compare / two-operand families. */
#define PEP_GUARD_ZERO(name, CMP)                                      \
    PEP_TOP_AT(GuardZero_##name,                                       \
               kTopGuardZeroBase + PEP_ZBR_OFF(name))                  \
    {                                                                  \
        const Template &t = ts[tp];                                    \
        PEP_CHARGE(t);                                                 \
        const std::int32_t v = f->stack.back();                        \
        f->stack.pop_back();                                           \
        PEP_GUARD_TAIL(v CMP 0)                                        \
    }
#define PEP_GUARD_CMP(name, CMP)                                       \
    PEP_TOP_AT(GuardCmp_##name, kTopGuardCmpBase + PEP_CBR_OFF(name))  \
    {                                                                  \
        const Template &t = ts[tp];                                    \
        PEP_CHARGE(t);                                                 \
        const std::int32_t b = f->stack.back();                        \
        f->stack.pop_back();                                           \
        const std::int32_t a = f->stack.back();                        \
        f->stack.pop_back();                                           \
        PEP_GUARD_TAIL(a CMP b)                                        \
    }

/** [Iconst k, arith]: burned-in rhs, lhs replaced on the stack. */
#define PEP_CONST_ARITH(name, EXPR)                                    \
    PEP_TOP_AT(ConstArith_##name,                                      \
               kTopConstArithBase + PEP_ARITH_OFF(name))               \
    {                                                                  \
        const Template &t = ts[tp];                                    \
        PEP_CHARGE(t);                                                 \
        const std::int32_t b = t.a;                                    \
        const std::int32_t a = f->stack.back();                        \
        const auto ua = static_cast<std::uint32_t>(a);                 \
        const auto ub = static_cast<std::uint32_t>(b);                 \
        (void)ua;                                                      \
        (void)ub;                                                      \
        f->stack.back() = (EXPR);                                      \
        ++tp;                                                          \
        PEP_DISPATCH();                                                \
    }

/** [Iload x, arith]: burned-in rhs local, lhs replaced on the stack. */
#define PEP_LOAD_ARITH(name, EXPR)                                     \
    PEP_TOP_AT(LoadArith_##name,                                       \
               kTopLoadArithBase + PEP_ARITH_OFF(name))                \
    {                                                                  \
        const Template &t = ts[tp];                                    \
        PEP_CHARGE(t);                                                 \
        const std::int32_t b = locals[t.a];                            \
        const std::int32_t a = f->stack.back();                        \
        const auto ua = static_cast<std::uint32_t>(a);                 \
        const auto ub = static_cast<std::uint32_t>(b);                 \
        (void)ua;                                                      \
        (void)ub;                                                      \
        f->stack.back() = (EXPR);                                      \
        ++tp;                                                          \
        PEP_DISPATCH();                                                \
    }

/** [Iload x, Iload y, arith]: no stack traffic at all. */
#define PEP_LOADLOAD_ARITH(name, EXPR)                                 \
    PEP_TOP_AT(LoadLoadArith_##name,                                   \
               kTopLoadLoadArithBase + PEP_ARITH_OFF(name))            \
    {                                                                  \
        const Template &t = ts[tp];                                    \
        PEP_CHARGE(t);                                                 \
        const std::int32_t a = locals[t.a];                            \
        const std::int32_t b = locals[t.b];                            \
        const auto ua = static_cast<std::uint32_t>(a);                 \
        const auto ub = static_cast<std::uint32_t>(b);                 \
        (void)ua;                                                      \
        (void)ub;                                                      \
        f->stack.push_back(EXPR);                                      \
        ++tp;                                                          \
        PEP_DISPATCH();                                                \
    }

/** [Iload x, Iconst k, arith]. */
#define PEP_LOADCONST_ARITH(name, EXPR)                                \
    PEP_TOP_AT(LoadConstArith_##name,                                  \
               kTopLoadConstArithBase + PEP_ARITH_OFF(name))           \
    {                                                                  \
        const Template &t = ts[tp];                                    \
        PEP_CHARGE(t);                                                 \
        const std::int32_t a = locals[t.a];                            \
        const std::int32_t b = t.b;                                    \
        const auto ua = static_cast<std::uint32_t>(a);                 \
        const auto ub = static_cast<std::uint32_t>(b);                 \
        (void)ua;                                                      \
        (void)ub;                                                      \
        f->stack.push_back(EXPR);                                      \
        ++tp;                                                          \
        PEP_DISPATCH();                                                \
    }

/** [Iload x, ifXX]: operand straight from the local. */
#define PEP_LOAD_ZEROBR(name, CMP)                                     \
    PEP_TOP_AT(LoadZeroBr_##name,                                      \
               kTopLoadZeroBrBase + PEP_ZBR_OFF(name))                 \
    {                                                                  \
        const Template &t = ts[tp];                                    \
        PEP_CHARGE(t);                                                 \
        const std::int32_t v = locals[t.a];                            \
        PEP_COND_TAIL(v CMP 0)                                         \
    }

/** [Iload x, Iload y, if_icmpXX]. */
#define PEP_LOADLOAD_CMPBR(name, CMP)                                  \
    PEP_TOP_AT(LoadLoadCmpBr_##name,                                   \
               kTopLoadLoadCmpBrBase + PEP_CBR_OFF(name))              \
    {                                                                  \
        const Template &t = ts[tp];                                    \
        PEP_CHARGE(t);                                                 \
        const std::int32_t a = locals[t.a];                            \
        const std::int32_t b = locals[t.b];                            \
        PEP_COND_TAIL(a CMP b)                                         \
    }

/** [Iload x, Iconst k, if_icmpXX]. */
#define PEP_LOADCONST_CMPBR(name, CMP)                                 \
    PEP_TOP_AT(LoadConstCmpBr_##name,                                  \
               kTopLoadConstCmpBrBase + PEP_CBR_OFF(name))             \
    {                                                                  \
        const Template &t = ts[tp];                                    \
        PEP_CHARGE(t);                                                 \
        const std::int32_t a = locals[t.a];                            \
        const std::int32_t b = t.b;                                    \
        PEP_COND_TAIL(a CMP b)                                         \
    }

/** Method return (shared by Return/Ireturn). */
#define PEP_RETURN_BODY(HAS_RESULT)                                    \
    const Template &t = ts[tp];                                        \
    PEP_CHARGE(t);                                                     \
    std::int32_t result = 0;                                           \
    if (HAS_RESULT) {                                                  \
        result = f->stack.back();                                      \
        f->stack.pop_back();                                           \
    }                                                                  \
    edgeTakenFast(*f, cfg::EdgeRef{t.block, 0}, t.flatBase);           \
    {                                                                  \
        const FrameView fv = view(*f);                                 \
        for (ExecutionHooks *hooks : vm_.hooks_)                       \
            hooks->onMethodExit(fv);                                   \
    }                                                                  \
    yieldpoint(YieldpointKind::MethodExit);                            \
    frames_.pop_back();                                                \
    if (!frames_.empty() && (HAS_RESULT))                              \
        frames_.back().stack.push_back(result);                        \
    goto rebind

void
Interpreter::loopThreaded()
{
    const CostModel &cost = vm_.params_.cost;
    const bool yp_on_backedges = vm_.params_.yieldpointsOnBackEdges;

    Frame *f = nullptr;
    const Template *ts = nullptr;
    const SwitchCase *sw = nullptr;
    std::int32_t *locals = nullptr;
    std::uint32_t tp = 0;

#if PEP_THREADED_COMPUTED_GOTO
    // Indexed by TOp: bytecode::Opcode values, then the synthetic
    // entries in the order decoded_method.hh lays out the top space.
#define PEP_LBL_GZ(name, CMP) &&L_GuardZero_##name,
#define PEP_LBL_GC(name, CMP) &&L_GuardCmp_##name,
#define PEP_LBL_CA(name, EXPR) &&L_ConstArith_##name,
#define PEP_LBL_LA(name, EXPR) &&L_LoadArith_##name,
#define PEP_LBL_LLA(name, EXPR) &&L_LoadLoadArith_##name,
#define PEP_LBL_LCA(name, EXPR) &&L_LoadConstArith_##name,
#define PEP_LBL_LZB(name, CMP) &&L_LoadZeroBr_##name,
#define PEP_LBL_LLC(name, CMP) &&L_LoadLoadCmpBr_##name,
#define PEP_LBL_LCC(name, CMP) &&L_LoadConstCmpBr_##name,
    static const void *const kLabels[kNumTops] = {
        &&L_Iconst,      &&L_Iload,    &&L_Istore,   &&L_Iinc,
        &&L_Dup,         &&L_Pop,      &&L_Swap,     &&L_Iadd,
        &&L_Isub,        &&L_Imul,     &&L_Idiv,     &&L_Irem,
        &&L_Iand,        &&L_Ior,      &&L_Ixor,     &&L_Ishl,
        &&L_Ishr,        &&L_Ineg,     &&L_Gload,    &&L_Gstore,
        &&L_Irnd,        &&L_Goto,     &&L_Ifeq,     &&L_Ifne,
        &&L_Iflt,        &&L_Ifge,     &&L_Ifgt,     &&L_Ifle,
        &&L_IfIcmpeq,    &&L_IfIcmpne, &&L_IfIcmplt, &&L_IfIcmpge,
        &&L_IfIcmpgt,    &&L_IfIcmple, &&L_Tableswitch, &&L_Invoke,
        &&L_Return,      &&L_Ireturn,  &&L_FallEdge,
        &&L_TraceFall,
        PEP_FOR_EACH_ZEROBR(PEP_LBL_GZ)
        PEP_FOR_EACH_CMPBR(PEP_LBL_GC)
        &&L_ConstStore,  &&L_LoadStore, &&L_LoadLoad,
        PEP_FOR_EACH_ARITH(PEP_LBL_CA)
        PEP_FOR_EACH_ARITH(PEP_LBL_LA)
        PEP_FOR_EACH_ARITH(PEP_LBL_LLA)
        PEP_FOR_EACH_ARITH(PEP_LBL_LCA)
        PEP_FOR_EACH_ZEROBR(PEP_LBL_LZB)
        PEP_FOR_EACH_CMPBR(PEP_LBL_LLC)
        PEP_FOR_EACH_CMPBR(PEP_LBL_LCC)
    };
#undef PEP_LBL_GZ
#undef PEP_LBL_GC
#undef PEP_LBL_CA
#undef PEP_LBL_LA
#undef PEP_LBL_LLA
#undef PEP_LBL_LCA
#undef PEP_LBL_LZB
#undef PEP_LBL_LLC
#undef PEP_LBL_LCC
#endif

rebind:
    // Boundary state: derive everything from the top frame's
    // (version, pc). Parks land here with the frame stack intact, and
    // every parkable pc is a segment leader, so pcToTemplate resumes
    // the stream exactly where the switch engine would — under fusion
    // a segment-leader pc is always the first constituent of its
    // template, so resumption never lands mid-superinstruction.
    if (frames_.empty())
        return;
    if (switchRequested_) {
        switchRequested_ = false;
        return;
    }
    {
        f = &frames_.back();
        const DecodedMethod &dm = vm_.decodedFor(*f->version);
        ts = dm.stream.data();
        sw = dm.switchCases.data();
        locals = f->locals.data();
        tp = dm.pcToTemplate[f->pc];
    }
    PEP_DISPATCH();

#if !PEP_THREADED_COMPUTED_GOTO
dispatch_top:
    switch (ts[tp].op) {
#endif

    PEP_OP(Iconst)
    {
        const Template &t = ts[tp];
        PEP_CHARGE(t);
        f->stack.push_back(t.a);
        ++tp;
        PEP_DISPATCH();
    }
    PEP_OP(Iload)
    {
        const Template &t = ts[tp];
        PEP_CHARGE(t);
        f->stack.push_back(locals[t.a]);
        ++tp;
        PEP_DISPATCH();
    }
    PEP_OP(Istore)
    {
        const Template &t = ts[tp];
        PEP_CHARGE(t);
        locals[t.a] = f->stack.back();
        f->stack.pop_back();
        ++tp;
        PEP_DISPATCH();
    }
    PEP_OP(Iinc)
    {
        const Template &t = ts[tp];
        PEP_CHARGE(t);
        locals[t.a] = static_cast<std::int32_t>(
            static_cast<std::uint32_t>(locals[t.a]) +
            static_cast<std::uint32_t>(t.b));
        ++tp;
        PEP_DISPATCH();
    }
    PEP_OP(Dup)
    {
        const Template &t = ts[tp];
        PEP_CHARGE(t);
        f->stack.push_back(f->stack.back());
        ++tp;
        PEP_DISPATCH();
    }
    PEP_OP(Pop)
    {
        const Template &t = ts[tp];
        PEP_CHARGE(t);
        f->stack.pop_back();
        ++tp;
        PEP_DISPATCH();
    }
    PEP_OP(Swap)
    {
        const Template &t = ts[tp];
        PEP_CHARGE(t);
        std::swap(f->stack[f->stack.size() - 1],
                  f->stack[f->stack.size() - 2]);
        ++tp;
        PEP_DISPATCH();
    }
    PEP_FOR_EACH_ARITH(PEP_BINOP)
    PEP_OP(Ineg)
    {
        const Template &t = ts[tp];
        PEP_CHARGE(t);
        f->stack.back() = static_cast<std::int32_t>(
            -static_cast<std::uint32_t>(f->stack.back()));
        ++tp;
        PEP_DISPATCH();
    }
    PEP_OP(Gload)
    {
        const Template &t = ts[tp];
        PEP_CHARGE(t);
        const std::int32_t idx = f->stack.back();
        if (idx < 0 ||
            static_cast<std::size_t>(idx) >= vm_.globals_.size()) {
            support::fatal("gload index out of bounds");
        }
        f->stack.back() = vm_.globals_[idx];
        ++tp;
        PEP_DISPATCH();
    }
    PEP_OP(Gstore)
    {
        const Template &t = ts[tp];
        PEP_CHARGE(t);
        const std::int32_t idx = f->stack.back();
        f->stack.pop_back();
        const std::int32_t value = f->stack.back();
        f->stack.pop_back();
        if (idx < 0 ||
            static_cast<std::size_t>(idx) >= vm_.globals_.size()) {
            support::fatal("gstore index out of bounds");
        }
        vm_.globals_[idx] = value;
        ++tp;
        PEP_DISPATCH();
    }
    PEP_OP(Irnd)
    {
        const Template &t = ts[tp];
        PEP_CHARGE(t);
        f->stack.push_back(static_cast<std::int32_t>(rng_->next()));
        ++tp;
        PEP_DISPATCH();
    }
    PEP_OP(Goto)
    {
        const Template &t = ts[tp];
        PEP_CHARGE(t);
        edgeTakenFast(*f, cfg::EdgeRef{t.block, 0}, t.flatBase);
        PEP_TRANSFER(t.taken, t.takenPc, t.flags & kTplTakenHeader,
                     t.takenBlock);
    }
    PEP_FOR_EACH_ZEROBR(PEP_COND_ZERO)
    PEP_FOR_EACH_CMPBR(PEP_COND_CMP)
    PEP_OP(Tableswitch)
    {
        const Template &t = ts[tp];
        PEP_CHARGE(t);
        const std::int32_t v = f->stack.back();
        f->stack.pop_back();
        const std::int64_t rel = static_cast<std::int64_t>(v) - t.a;
        const std::uint32_t succ =
            (rel >= 0 && rel < static_cast<std::int64_t>(t.swCount))
                ? static_cast<std::uint32_t>(rel)
                : t.swCount;
        ++vm_.stats_.branchesExecuted;
        const std::uint32_t predicted =
            t.layout >= 0 ? static_cast<std::uint32_t>(t.layout)
                          : t.swCount;
        if (succ != predicted) {
            vm_.cycles_ += cost.layoutMissPenalty;
            ++vm_.stats_.layoutMisses;
        }
        if (t.flags & kTplBaselineEdge) {
            vm_.cycles_ += cost.edgeCounterCost;
            vm_.oneTime_.perMethod[f->method].addEdge(
                cfg::EdgeRef{t.block, succ});
        }
        const SwitchCase &c = sw[t.swFirst + succ];
        edgeTakenFast(*f, cfg::EdgeRef{t.block, succ},
                      t.flatBase + succ);
        PEP_TRANSFER(c.tpl, c.pc, c.isHeader, c.block);
    }
    PEP_OP(Invoke)
    {
        const Template &t = ts[tp];
        PEP_CHARGE(t);
        const auto callee = static_cast<bytecode::MethodId>(t.a);
        vm_.truthCalls_.addCall(f->method, callee);
        // Resume point for the caller; when the Invoke ends its block,
        // its fall-through is a CFG edge (possibly into a header, whose
        // yieldpoint may OSR this frame — pushFrame then proceeds
        // against the remapped pc, and the post-return rebind re-derives
        // the template from it).
        f->pc = t.fallPc;
        if (t.flags & kTplEndsBlock) {
            edgeTakenFast(*f, cfg::EdgeRef{t.block, 0}, t.flatBase);
            if (t.flags & kTplFallHeader) {
                const FrameView fv = view(*f);
                for (ExecutionHooks *hooks : vm_.hooks_)
                    hooks->onLoopHeader(fv, t.fallBlock);
                if (!yp_on_backedges)
                    yieldpoint(YieldpointKind::LoopHeader, t.fallBlock);
            }
        }
        pushFrame(callee, f);
        goto rebind;
    }
    PEP_OP(Return)
    {
        PEP_RETURN_BODY(false);
    }
    PEP_OP(Ireturn)
    {
        PEP_RETURN_BODY(true);
    }
    PEP_TOP_AT(FallEdge, kTopFallEdge)
    {
        // Injected fall-through block end: the block's single CFG edge
        // plus the transfer (cost/ninstr are zero — no instruction).
        const Template &t = ts[tp];
        edgeTakenFast(*f, cfg::EdgeRef{t.block, 0}, t.flatBase);
        PEP_TRANSFER(t.fall, t.fallPc, t.flags & kTplFallHeader,
                     t.fallBlock);
    }
    PEP_TOP_AT(TraceFall, kTopTraceFall)
    {
        // Trace-interior fall-through block end: the edge event plus a
        // direct jump — the target is a non-header single-predecessor
        // trace member, so no header event, yieldpoint, or park can
        // fire here (the edge is never a back edge: back edges target
        // headers).
        const Template &t = ts[tp];
        edgeTakenFast(*f, cfg::EdgeRef{t.block, 0}, t.flatBase);
        f->pc = t.fallPc;
        tp = t.fall;
        PEP_DISPATCH();
    }
    PEP_FOR_EACH_ZEROBR(PEP_GUARD_ZERO)
    PEP_FOR_EACH_CMPBR(PEP_GUARD_CMP)
    PEP_TOP_AT(ConstStore, kTopConstStore)
    {
        const Template &t = ts[tp];
        PEP_CHARGE(t);
        locals[t.b] = t.a;
        ++tp;
        PEP_DISPATCH();
    }
    PEP_TOP_AT(LoadStore, kTopLoadStore)
    {
        const Template &t = ts[tp];
        PEP_CHARGE(t);
        locals[t.b] = locals[t.a];
        ++tp;
        PEP_DISPATCH();
    }
    PEP_TOP_AT(LoadLoad, kTopLoadLoad)
    {
        const Template &t = ts[tp];
        PEP_CHARGE(t);
        f->stack.push_back(locals[t.a]);
        f->stack.push_back(locals[t.b]);
        ++tp;
        PEP_DISPATCH();
    }
    PEP_FOR_EACH_ARITH(PEP_CONST_ARITH)
    PEP_FOR_EACH_ARITH(PEP_LOAD_ARITH)
    PEP_FOR_EACH_ARITH(PEP_LOADLOAD_ARITH)
    PEP_FOR_EACH_ARITH(PEP_LOADCONST_ARITH)
    PEP_FOR_EACH_ZEROBR(PEP_LOAD_ZEROBR)
    PEP_FOR_EACH_CMPBR(PEP_LOADLOAD_CMPBR)
    PEP_FOR_EACH_CMPBR(PEP_LOADCONST_CMPBR)

#if !PEP_THREADED_COMPUTED_GOTO
      default:
        PEP_PANIC("bad template opcode");
    }
#endif
}

#undef PEP_OP
#undef PEP_TOP_AT
#undef PEP_DISPATCH
#undef PEP_ARITH_OFF
#undef PEP_ZBR_OFF
#undef PEP_CBR_OFF
#undef PEP_FOR_EACH_ARITH
#undef PEP_FOR_EACH_ZEROBR
#undef PEP_FOR_EACH_CMPBR
#undef PEP_CHARGE
#undef PEP_TRANSFER
#undef PEP_COND_TAIL
#undef PEP_GUARD_TAIL
#undef PEP_COND_ZERO
#undef PEP_COND_CMP
#undef PEP_BINOP
#undef PEP_GUARD_ZERO
#undef PEP_GUARD_CMP
#undef PEP_CONST_ARITH
#undef PEP_LOAD_ARITH
#undef PEP_LOADLOAD_ARITH
#undef PEP_LOADCONST_ARITH
#undef PEP_LOAD_ZEROBR
#undef PEP_LOADLOAD_CMPBR
#undef PEP_LOADCONST_CMPBR
#undef PEP_RETURN_BODY

} // namespace pep::vm
