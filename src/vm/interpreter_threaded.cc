#include "vm/interpreter.hh"

#include "vm/decoded_method.hh"
#include "vm/inliner.hh"

#include "support/panic.hh"

/**
 * @file
 * The threaded execution backend (docs/ENGINE.md): executes the
 * pre-decoded template stream of each frame's compiled version.
 * Straight-line template handlers are a charge (+= the segment sum,
 * zero off segment leaders), the operation itself, and an indirect
 * jump — no per-instruction decode, cost lookup, leader test, or
 * park check. All boundary work (edges, yieldpoints, frame push/pop,
 * OSR) funnels through the same helpers as the switch backend, which
 * is what makes the two engines byte-identical on profiles, samples,
 * and simulated cycles.
 *
 * Dispatch is computed goto on GCC/Clang; defining
 * PEP_THREADED_FORCE_SWITCH selects the portable switch fallback
 * (same templates, same behaviour).
 */

#if (defined(__GNUC__) || defined(__clang__)) && \
    !defined(PEP_THREADED_FORCE_SWITCH)
#define PEP_THREADED_COMPUTED_GOTO 1
#else
#define PEP_THREADED_COMPUTED_GOTO 0
#endif

namespace pep::vm {

#if PEP_THREADED_COMPUTED_GOTO
#define PEP_OP(name) L_##name:
#define PEP_OP_FALLEDGE() L_FallEdge:
#define PEP_DISPATCH() goto *kLabels[ts[tp].op]
#else
#define PEP_OP(name) case static_cast<std::uint8_t>(bytecode::Opcode::name):
#define PEP_OP_FALLEDGE() case kTopFallEdge:
#define PEP_DISPATCH() goto dispatch_top
#endif

/** Charge the segment sums carried by template `t` (zero off segment
 *  leaders: a branch-free no-op). */
#define PEP_CHARGE(t)                                                  \
    vm_.cycles_ += (t).cost;                                           \
    vm_.stats_.instructionsExecuted += (t).ninstr

/**
 * Transfer control to a pre-resolved target: set the resume pc, fire
 * header events (and the header yieldpoint under the default
 * placement, where OSR may swap the frame's version — then everything
 * cached is stale and we rebind from f->pc), honour a pending park
 * request, and dispatch the target template.
 */
#define PEP_TRANSFER(TGT_TPL, TGT_PC, HDR, TGT_BLOCK)                  \
    do {                                                               \
        f->pc = (TGT_PC);                                              \
        if (HDR) {                                                     \
            const FrameView fv = view(*f);                             \
            for (ExecutionHooks *hooks : vm_.hooks_)                   \
                hooks->onLoopHeader(fv, (TGT_BLOCK));                  \
            if (!yp_on_backedges) {                                    \
                const CompiledMethod *before = f->version;             \
                yieldpoint(YieldpointKind::LoopHeader, (TGT_BLOCK));   \
                if (f->version != before)                              \
                    goto rebind;                                       \
            }                                                          \
        }                                                              \
        if (switchRequested_) {                                        \
            switchRequested_ = false;                                  \
            return;                                                    \
        }                                                              \
        tp = (TGT_TPL);                                                \
    } while (0);                                                       \
    PEP_DISPATCH()

/** Shared body of the twelve conditional-branch handlers. */
#define PEP_COND_TAIL(TAKEN_EXPR)                                      \
    const bool taken = (TAKEN_EXPR);                                   \
    ++vm_.stats_.branchesExecuted;                                     \
    if (taken != (t.layout == 1)) {                                    \
        vm_.cycles_ += cost.layoutMissPenalty;                         \
        ++vm_.stats_.layoutMisses;                                     \
    }                                                                  \
    const std::uint32_t succ = taken ? 0u : 1u;                        \
    if (t.flags & kTplBaselineEdge) {                                  \
        vm_.cycles_ += cost.edgeCounterCost;                           \
        vm_.oneTime_.perMethod[f->method].addEdge(                     \
            cfg::EdgeRef{t.block, succ});                              \
    }                                                                  \
    edgeTakenFast(*f, cfg::EdgeRef{t.block, succ}, t.flatBase + succ); \
    if (taken) {                                                       \
        PEP_TRANSFER(t.taken, t.takenPc, t.flags & kTplTakenHeader,    \
                     t.takenBlock);                                    \
    } else {                                                           \
        PEP_TRANSFER(t.fall, t.fallPc, t.flags & kTplFallHeader,       \
                     t.fallBlock);                                     \
    }

/** Zero-compare branch: pop one operand. */
#define PEP_COND_ZERO(name, CMP)                                       \
    PEP_OP(name)                                                       \
    {                                                                  \
        const Template &t = ts[tp];                                    \
        PEP_CHARGE(t);                                                 \
        const std::int32_t v = f->stack.back();                        \
        f->stack.pop_back();                                           \
        PEP_COND_TAIL(v CMP 0)                                         \
    }

/** Two-operand compare branch: pop two (lhs pushed first). */
#define PEP_COND_CMP(name, CMP)                                        \
    PEP_OP(name)                                                       \
    {                                                                  \
        const Template &t = ts[tp];                                    \
        PEP_CHARGE(t);                                                 \
        const std::int32_t b = f->stack.back();                        \
        f->stack.pop_back();                                           \
        const std::int32_t a = f->stack.back();                        \
        f->stack.pop_back();                                           \
        PEP_COND_TAIL(a CMP b)                                         \
    }

/** Wrapping binary arithmetic on the top two stack slots. */
#define PEP_BINOP(name, EXPR)                                          \
    PEP_OP(name)                                                       \
    {                                                                  \
        const Template &t = ts[tp];                                    \
        PEP_CHARGE(t);                                                 \
        const std::int32_t b = f->stack.back();                        \
        f->stack.pop_back();                                           \
        const std::int32_t a = f->stack.back();                        \
        const auto ua = static_cast<std::uint32_t>(a);                 \
        const auto ub = static_cast<std::uint32_t>(b);                 \
        (void)ua;                                                      \
        (void)ub;                                                      \
        f->stack.back() = (EXPR);                                      \
        ++tp;                                                          \
        PEP_DISPATCH();                                                \
    }

/** Method return (shared by Return/Ireturn). */
#define PEP_RETURN_BODY(HAS_RESULT)                                    \
    const Template &t = ts[tp];                                        \
    PEP_CHARGE(t);                                                     \
    std::int32_t result = 0;                                           \
    if (HAS_RESULT) {                                                  \
        result = f->stack.back();                                      \
        f->stack.pop_back();                                           \
    }                                                                  \
    edgeTakenFast(*f, cfg::EdgeRef{t.block, 0}, t.flatBase);           \
    {                                                                  \
        const FrameView fv = view(*f);                                 \
        for (ExecutionHooks *hooks : vm_.hooks_)                       \
            hooks->onMethodExit(fv);                                   \
    }                                                                  \
    yieldpoint(YieldpointKind::MethodExit);                            \
    frames_.pop_back();                                                \
    if (!frames_.empty() && (HAS_RESULT))                              \
        frames_.back().stack.push_back(result);                        \
    goto rebind

void
Interpreter::loopThreaded()
{
    const CostModel &cost = vm_.params_.cost;
    const bool yp_on_backedges = vm_.params_.yieldpointsOnBackEdges;

    Frame *f = nullptr;
    const Template *ts = nullptr;
    const SwitchCase *sw = nullptr;
    std::int32_t *locals = nullptr;
    std::uint32_t tp = 0;

#if PEP_THREADED_COMPUTED_GOTO
    // Indexed by TOp: bytecode::Opcode values, then kTopFallEdge.
    static const void *const kLabels[kNumTops] = {
        &&L_Iconst,      &&L_Iload,    &&L_Istore,   &&L_Iinc,
        &&L_Dup,         &&L_Pop,      &&L_Swap,     &&L_Iadd,
        &&L_Isub,        &&L_Imul,     &&L_Idiv,     &&L_Irem,
        &&L_Iand,        &&L_Ior,      &&L_Ixor,     &&L_Ishl,
        &&L_Ishr,        &&L_Ineg,     &&L_Gload,    &&L_Gstore,
        &&L_Irnd,        &&L_Goto,     &&L_Ifeq,     &&L_Ifne,
        &&L_Iflt,        &&L_Ifge,     &&L_Ifgt,     &&L_Ifle,
        &&L_IfIcmpeq,    &&L_IfIcmpne, &&L_IfIcmplt, &&L_IfIcmpge,
        &&L_IfIcmpgt,    &&L_IfIcmple, &&L_Tableswitch, &&L_Invoke,
        &&L_Return,      &&L_Ireturn,  &&L_FallEdge,
    };
#endif

rebind:
    // Boundary state: derive everything from the top frame's
    // (version, pc). Parks land here with the frame stack intact, and
    // every parkable pc is a segment leader, so pcToTemplate resumes
    // the stream exactly where the switch engine would.
    if (frames_.empty())
        return;
    if (switchRequested_) {
        switchRequested_ = false;
        return;
    }
    {
        f = &frames_.back();
        const DecodedMethod &dm = vm_.decodedFor(*f->version);
        ts = dm.stream.data();
        sw = dm.switchCases.data();
        locals = f->locals.data();
        tp = dm.pcToTemplate[f->pc];
    }
    PEP_DISPATCH();

#if !PEP_THREADED_COMPUTED_GOTO
dispatch_top:
    switch (ts[tp].op) {
#endif

    PEP_OP(Iconst)
    {
        const Template &t = ts[tp];
        PEP_CHARGE(t);
        f->stack.push_back(t.a);
        ++tp;
        PEP_DISPATCH();
    }
    PEP_OP(Iload)
    {
        const Template &t = ts[tp];
        PEP_CHARGE(t);
        f->stack.push_back(locals[t.a]);
        ++tp;
        PEP_DISPATCH();
    }
    PEP_OP(Istore)
    {
        const Template &t = ts[tp];
        PEP_CHARGE(t);
        locals[t.a] = f->stack.back();
        f->stack.pop_back();
        ++tp;
        PEP_DISPATCH();
    }
    PEP_OP(Iinc)
    {
        const Template &t = ts[tp];
        PEP_CHARGE(t);
        locals[t.a] = static_cast<std::int32_t>(
            static_cast<std::uint32_t>(locals[t.a]) +
            static_cast<std::uint32_t>(t.b));
        ++tp;
        PEP_DISPATCH();
    }
    PEP_OP(Dup)
    {
        const Template &t = ts[tp];
        PEP_CHARGE(t);
        f->stack.push_back(f->stack.back());
        ++tp;
        PEP_DISPATCH();
    }
    PEP_OP(Pop)
    {
        const Template &t = ts[tp];
        PEP_CHARGE(t);
        f->stack.pop_back();
        ++tp;
        PEP_DISPATCH();
    }
    PEP_OP(Swap)
    {
        const Template &t = ts[tp];
        PEP_CHARGE(t);
        std::swap(f->stack[f->stack.size() - 1],
                  f->stack[f->stack.size() - 2]);
        ++tp;
        PEP_DISPATCH();
    }
    PEP_BINOP(Iadd, static_cast<std::int32_t>(ua + ub))
    PEP_BINOP(Isub, static_cast<std::int32_t>(ua - ub))
    PEP_BINOP(Imul, static_cast<std::int32_t>(ua * ub))
    PEP_BINOP(Idiv, b == 0                          ? 0
                    : (a == INT32_MIN && b == -1)   ? a
                                                    : a / b)
    PEP_BINOP(Irem, b == 0                          ? 0
                    : (a == INT32_MIN && b == -1)   ? 0
                                                    : a % b)
    PEP_BINOP(Iand, static_cast<std::int32_t>(ua & ub))
    PEP_BINOP(Ior, static_cast<std::int32_t>(ua | ub))
    PEP_BINOP(Ixor, static_cast<std::int32_t>(ua ^ ub))
    PEP_BINOP(Ishl, static_cast<std::int32_t>(ua << (ub & 31)))
    PEP_BINOP(Ishr, a >> (ub & 31))
    PEP_OP(Ineg)
    {
        const Template &t = ts[tp];
        PEP_CHARGE(t);
        f->stack.back() = static_cast<std::int32_t>(
            -static_cast<std::uint32_t>(f->stack.back()));
        ++tp;
        PEP_DISPATCH();
    }
    PEP_OP(Gload)
    {
        const Template &t = ts[tp];
        PEP_CHARGE(t);
        const std::int32_t idx = f->stack.back();
        if (idx < 0 ||
            static_cast<std::size_t>(idx) >= vm_.globals_.size()) {
            support::fatal("gload index out of bounds");
        }
        f->stack.back() = vm_.globals_[idx];
        ++tp;
        PEP_DISPATCH();
    }
    PEP_OP(Gstore)
    {
        const Template &t = ts[tp];
        PEP_CHARGE(t);
        const std::int32_t idx = f->stack.back();
        f->stack.pop_back();
        const std::int32_t value = f->stack.back();
        f->stack.pop_back();
        if (idx < 0 ||
            static_cast<std::size_t>(idx) >= vm_.globals_.size()) {
            support::fatal("gstore index out of bounds");
        }
        vm_.globals_[idx] = value;
        ++tp;
        PEP_DISPATCH();
    }
    PEP_OP(Irnd)
    {
        const Template &t = ts[tp];
        PEP_CHARGE(t);
        f->stack.push_back(static_cast<std::int32_t>(rng_->next()));
        ++tp;
        PEP_DISPATCH();
    }
    PEP_OP(Goto)
    {
        const Template &t = ts[tp];
        PEP_CHARGE(t);
        edgeTakenFast(*f, cfg::EdgeRef{t.block, 0}, t.flatBase);
        PEP_TRANSFER(t.taken, t.takenPc, t.flags & kTplTakenHeader,
                     t.takenBlock);
    }
    PEP_COND_ZERO(Ifeq, ==)
    PEP_COND_ZERO(Ifne, !=)
    PEP_COND_ZERO(Iflt, <)
    PEP_COND_ZERO(Ifge, >=)
    PEP_COND_ZERO(Ifgt, >)
    PEP_COND_ZERO(Ifle, <=)
    PEP_COND_CMP(IfIcmpeq, ==)
    PEP_COND_CMP(IfIcmpne, !=)
    PEP_COND_CMP(IfIcmplt, <)
    PEP_COND_CMP(IfIcmpge, >=)
    PEP_COND_CMP(IfIcmpgt, >)
    PEP_COND_CMP(IfIcmple, <=)
    PEP_OP(Tableswitch)
    {
        const Template &t = ts[tp];
        PEP_CHARGE(t);
        const std::int32_t v = f->stack.back();
        f->stack.pop_back();
        const std::int64_t rel = static_cast<std::int64_t>(v) - t.a;
        const std::uint32_t succ =
            (rel >= 0 && rel < static_cast<std::int64_t>(t.swCount))
                ? static_cast<std::uint32_t>(rel)
                : t.swCount;
        ++vm_.stats_.branchesExecuted;
        const std::uint32_t predicted =
            t.layout >= 0 ? static_cast<std::uint32_t>(t.layout)
                          : t.swCount;
        if (succ != predicted) {
            vm_.cycles_ += cost.layoutMissPenalty;
            ++vm_.stats_.layoutMisses;
        }
        if (t.flags & kTplBaselineEdge) {
            vm_.cycles_ += cost.edgeCounterCost;
            vm_.oneTime_.perMethod[f->method].addEdge(
                cfg::EdgeRef{t.block, succ});
        }
        const SwitchCase &c = sw[t.swFirst + succ];
        edgeTakenFast(*f, cfg::EdgeRef{t.block, succ},
                      t.flatBase + succ);
        PEP_TRANSFER(c.tpl, c.pc, c.isHeader, c.block);
    }
    PEP_OP(Invoke)
    {
        const Template &t = ts[tp];
        PEP_CHARGE(t);
        const auto callee = static_cast<bytecode::MethodId>(t.a);
        vm_.truthCalls_.addCall(f->method, callee);
        // Resume point for the caller; when the Invoke ends its block,
        // its fall-through is a CFG edge (possibly into a header, whose
        // yieldpoint may OSR this frame — pushFrame then proceeds
        // against the remapped pc, and the post-return rebind re-derives
        // the template from it).
        f->pc = t.fallPc;
        if (t.flags & kTplEndsBlock) {
            edgeTakenFast(*f, cfg::EdgeRef{t.block, 0}, t.flatBase);
            if (t.flags & kTplFallHeader) {
                const FrameView fv = view(*f);
                for (ExecutionHooks *hooks : vm_.hooks_)
                    hooks->onLoopHeader(fv, t.fallBlock);
                if (!yp_on_backedges)
                    yieldpoint(YieldpointKind::LoopHeader, t.fallBlock);
            }
        }
        pushFrame(callee, f);
        goto rebind;
    }
    PEP_OP(Return)
    {
        PEP_RETURN_BODY(false);
    }
    PEP_OP(Ireturn)
    {
        PEP_RETURN_BODY(true);
    }
    PEP_OP_FALLEDGE()
    {
        // Injected fall-through block end: the block's single CFG edge
        // plus the transfer (cost/ninstr are zero — no instruction).
        const Template &t = ts[tp];
        edgeTakenFast(*f, cfg::EdgeRef{t.block, 0}, t.flatBase);
        PEP_TRANSFER(t.fall, t.fallPc, t.flags & kTplFallHeader,
                     t.fallBlock);
    }

#if !PEP_THREADED_COMPUTED_GOTO
      default:
        PEP_PANIC("bad template opcode");
    }
#endif
}

#undef PEP_OP
#undef PEP_OP_FALLEDGE
#undef PEP_DISPATCH
#undef PEP_CHARGE
#undef PEP_TRANSFER
#undef PEP_COND_TAIL
#undef PEP_COND_ZERO
#undef PEP_COND_CMP
#undef PEP_BINOP
#undef PEP_RETURN_BODY

} // namespace pep::vm
