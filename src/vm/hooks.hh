#ifndef PEP_VM_HOOKS_HH
#define PEP_VM_HOOKS_HH

/**
 * @file
 * Interfaces between the interpreter and the profiling layer. The
 * interpreter fires control-flow and yieldpoint events; profilers (in
 * src/core) implement ExecutionHooks and keep their own per-frame state
 * (e.g., the path register) keyed by call depth. Multiple hooks can be
 * attached to one machine — e.g., PEP plus a zero-cost ground-truth
 * recorder for accuracy evaluation.
 */

#include <cstdint>

#include "bytecode/instr.hh"
#include "cfg/graph.hh"

namespace pep::vm {

class CompiledMethod;

/** Where a yieldpoint sits (Jikes RVM places them at exactly these). */
enum class YieldpointKind : std::uint8_t
{
    MethodEntry,
    LoopHeader,
    MethodExit,
    BackEdge, ///< only with SimParams::yieldpointsOnBackEdges
};

/** A frame as seen by hooks. */
struct FrameView
{
    bytecode::MethodId method = 0;

    /** Compiled version executing in this frame. */
    const CompiledMethod *version = nullptr;

    /** Call depth (0 = main); hooks key per-frame state off this. */
    std::uint32_t depth = 0;

    /** Virtual mutator thread executing the frame (0 when the machine
     *  runs single-threaded). Hooks that keep per-frame state must key
     *  it by (thread, depth), not depth alone. */
    std::uint32_t thread = 0;
};

/**
 * Scheduler hook point (src/runtime's cooperative scheduler implements
 * this). The interpreter consults it at every yieldpoint — the only
 * places Jikes RVM's quasi-preemptive scheduler switches threads. A
 * `true` return requests a context switch: the interpreter finishes the
 * current instruction and returns control from Interpreter::resume().
 */
class ThreadScheduler
{
  public:
    virtual ~ThreadScheduler() = default;

    /**
     * A yieldpoint executed on `thread`. `tick_fired` mirrors the timer
     * interrupt's thread-switch flag; schedulers normally switch
     * exactly when it is set.
     */
    virtual bool onYieldpoint(std::uint32_t thread, YieldpointKind kind,
                              bool tick_fired) = 0;
};

/** Receiver of interpreter events. All events refer to the top frame. */
class ExecutionHooks
{
  public:
    virtual ~ExecutionHooks() = default;

    /** Frame pushed; fired before any code of the method runs. */
    virtual void onMethodEntry(const FrameView &frame) { (void)frame; }

    /** Method returning; fired after the return edge's onEdge. The
     *  frame is popped after this event. */
    virtual void onMethodExit(const FrameView &frame) { (void)frame; }

    /** A CFG edge of the frame's method was taken (includes the
     *  entry->firstBlock edge and returnBlock->exit edges). */
    virtual void
    onEdge(const FrameView &frame, cfg::EdgeRef edge)
    {
        (void)frame;
        (void)edge;
    }

    /**
     * Same event with the edge's dense flat id (edgeBase[src] + index,
     * the structural numbering every InstrumentationPlan's flat tables
     * use) precomputed by the threaded engine's templates. The default
     * forwards to onEdge; hooks that dispatch on flat tables override
     * it to skip the base lookup. Overriders MUST behave identically to
     * their onEdge — the engines' byte-identity contract depends on it.
     */
    virtual void
    onEdgeFast(const FrameView &frame, cfg::EdgeRef edge,
               std::uint32_t flat_id)
    {
        (void)flat_id;
        onEdge(frame, edge);
    }

    /** Control entered a loop-header block (fired after the incoming
     *  edge's onEdge, before the header yieldpoint). */
    virtual void
    onLoopHeader(const FrameView &frame, cfg::BlockId block)
    {
        (void)frame;
        (void)block;
    }

    /**
     * A yieldpoint executed. `tick_fired` is true if a timer tick
     * occurred since the previous yieldpoint (the interrupt handler set
     * the thread-switch flag). Sampling controllers keep their own
     * multi-sample state across yieldpoints.
     */
    virtual void
    onYieldpoint(const FrameView &frame, YieldpointKind kind,
                 bool tick_fired)
    {
        (void)frame;
        (void)kind;
        (void)tick_fired;
    }

    /**
     * On-stack replacement: the top frame switched to a freshly
     * compiled version at a loop-header yieldpoint (fired after the
     * header's onLoopHeader/onYieldpoint, with frame.version already
     * the new version). Path profilers rebind their per-frame state
     * here; header splitting makes this safe — the old version's path
     * just ended at this header, and the new path begins with the new
     * plan's restart value.
     */
    virtual void
    onOsr(const FrameView &frame, cfg::BlockId header)
    {
        (void)frame;
        (void)header;
    }
};

/** Notified when the machine (re)compiles a method. */
class CompileObserver
{
  public:
    virtual ~CompileObserver() = default;

    /** `version` is the freshly created compiled version. */
    virtual void onCompile(bytecode::MethodId method,
                           const CompiledMethod &version) = 0;
};

} // namespace pep::vm

#endif // PEP_VM_HOOKS_HH
