#ifndef PEP_VM_COMPILED_METHOD_HH
#define PEP_VM_COMPILED_METHOD_HH

/**
 * @file
 * A compiled version of a method. The simulator does not generate
 * native code; a "compiled version" is the set of properties that
 * affect simulated cost and profiling behaviour: the tier (which sets
 * the speed multiplier), whether baseline edge instrumentation is
 * present, and the branch layout chosen from the edge profile available
 * at compile time.
 */

#include <cstdint>
#include <vector>

#include "bytecode/instr.hh"
#include "cfg/graph.hh"

#include <memory>

namespace pep::vm {

struct InlinedBody;

/** Compiler tiers (Jikes RVM: baseline + optimizing levels). */
enum class OptLevel : std::uint8_t
{
    Baseline,
    Opt1,
    Opt2,
};

/** Human-readable tier name. */
const char *optLevelName(OptLevel level);

/** One compiled version of one method. */
class CompiledMethod
{
  public:
    CompiledMethod();
    ~CompiledMethod();
    CompiledMethod(CompiledMethod &&) noexcept;
    CompiledMethod &operator=(CompiledMethod &&) noexcept;

    bytecode::MethodId method = 0;

    /** Monotonic per-method version number (0 = first compile). */
    std::uint32_t version = 0;

    OptLevel level = OptLevel::Baseline;

    /** Cycle multiplier applied to base instruction costs. */
    double speedMultiplier = 1.0;

    /** Baseline tier collects the one-time edge profile. */
    bool baselineEdgeInstr = false;

    /**
     * Branch layout per block: 1 = laid out for taken, 0 = laid out for
     * fall-through, -1 = no information (treated as fall-through).
     * For Switch blocks the value is the successor index predicted hot,
     * or -1. Indexed by CFG BlockId.
     */
    std::vector<std::int16_t> branchLayout;

    /**
     * Per-opcode cycle cost with the tier's speed multiplier applied;
     * precomputed at compile time so the interpreter's hot loop is a
     * table lookup.
     */
    std::vector<std::uint32_t> scaledCost;

    /**
     * Synthesized body with leaf calls inlined (optimizing tiers with
     * SimParams::enableInlining; nullptr otherwise) or with a hot path
     * cloned (src/opt/path_clone.hh). When present, the frame executes
     * this code and all block ids (branchLayout, instrumentation
     * plans) refer to its CFG; bytecode-level branch counters are
     * reached through its BlockOrigin map.
     */
    std::unique_ptr<InlinedBody> inlinedBody;

    /**
     * Block order chosen by the chain-layout pass (src/opt/), empty
     * when no layout pass ran. Pure metadata for tests and tools:
     * cycle charging reads branchLayout, never this.
     */
    std::vector<cfg::BlockId> layoutOrder;

    /** True when the path-cloning pass synthesized this version's
     *  inlinedBody (recorded in the Machine's compile journal and
     *  audited by analysis/verify/invariants.hh). */
    bool cloneApplied = false;

    /** Layout choice for a block (-1 when unknown). */
    std::int16_t
    layoutFor(cfg::BlockId block) const
    {
        return block < branchLayout.size() ? branchLayout[block] : -1;
    }
};

} // namespace pep::vm

#endif // PEP_VM_COMPILED_METHOD_HH
