#ifndef PEP_VM_ADVICE_IO_HH
#define PEP_VM_ADVICE_IO_HH

/**
 * @file
 * Advice-file serialization. The paper's replay methodology stores a
 * run's compilation decisions and baseline edge profile in *advice
 * files* produced by a previous well-performing adaptive run
 * (Section 5). This module provides a line-oriented text format:
 *
 *   pep-advice 1
 *   methods <count>
 *   level <methodId> <0|1|2>          ; final optimization level
 *   edge <methodId> <block> <succ> <count>   ; one-time edge profile,
 *                                             ; nonzero entries only
 *   end
 *
 * Parsing validates method ids and edge coordinates against the
 * program's CFGs, so stale advice for a different program is rejected
 * instead of corrupting a run.
 */

#include <string>
#include <vector>

#include "bytecode/cfg_builder.hh"
#include "vm/machine.hh"

namespace pep::vm {

/** Render advice to the text format. */
std::string serializeAdvice(const ReplayAdvice &advice);

/** Result of parsing advice text. */
struct ParseAdviceResult
{
    bool ok = true;
    std::string error;
    ReplayAdvice advice;
};

/**
 * Parse advice text. `cfgs` (one per method, in method order) provides
 * the CFG shapes the edge profile is validated and sized against.
 */
ParseAdviceResult
parseAdvice(const std::string &text,
            const std::vector<bytecode::MethodCfg> &cfgs);

/** Write advice to a file; returns false (with a warning) on I/O
 *  failure. */
bool saveAdviceFile(const std::string &path, const ReplayAdvice &advice);

/** Read and parse advice from a file. */
ParseAdviceResult
loadAdviceFile(const std::string &path,
               const std::vector<bytecode::MethodCfg> &cfgs);

} // namespace pep::vm

#endif // PEP_VM_ADVICE_IO_HH
