#include "vm/advice_io.hh"

#include <fstream>
#include <sstream>

#include "support/panic.hh"
#include "support/strings.hh"

namespace pep::vm {

namespace {

constexpr const char *kMagic = "pep-advice";
constexpr int kVersion = 1;

ParseAdviceResult
fail(int line, const std::string &message)
{
    ParseAdviceResult result;
    result.ok = false;
    std::ostringstream os;
    os << "advice line " << line << ": " << message;
    result.error = os.str();
    return result;
}

} // namespace

std::string
serializeAdvice(const ReplayAdvice &advice)
{
    std::ostringstream os;
    os << kMagic << ' ' << kVersion << '\n';
    os << "methods " << advice.finalLevel.size() << '\n';
    for (std::size_t m = 0; m < advice.finalLevel.size(); ++m) {
        os << "level " << m << ' '
           << static_cast<int>(advice.finalLevel[m]) << '\n';
    }
    for (std::size_t m = 0; m < advice.oneTimeEdges.perMethod.size();
         ++m) {
        const auto &counts = advice.oneTimeEdges.perMethod[m].counts();
        for (std::size_t b = 0; b < counts.size(); ++b) {
            for (std::size_t i = 0; i < counts[b].size(); ++i) {
                if (counts[b][i] != 0) {
                    os << "edge " << m << ' ' << b << ' ' << i << ' '
                       << counts[b][i] << '\n';
                }
            }
        }
    }
    os << "end\n";
    return os.str();
}

ParseAdviceResult
parseAdvice(const std::string &text,
            const std::vector<bytecode::MethodCfg> &cfgs)
{
    ParseAdviceResult result;
    result.advice.finalLevel.assign(cfgs.size(), OptLevel::Baseline);
    result.advice.oneTimeEdges = profile::EdgeProfileSet(cfgs);

    const auto lines = support::splitChar(text, '\n');
    bool saw_magic = false;
    bool saw_end = false;
    int line_number = 0;

    for (const std::string &raw : lines) {
        ++line_number;
        const auto tokens = support::splitWhitespace(raw);
        if (tokens.empty())
            continue;
        if (saw_end)
            return fail(line_number, "content after 'end'");

        if (!saw_magic) {
            if (tokens.size() != 2 || tokens[0] != kMagic)
                return fail(line_number, "missing pep-advice header");
            std::int64_t version = 0;
            if (!support::parseInt(tokens[1], version) ||
                version != kVersion) {
                return fail(line_number, "unsupported version");
            }
            saw_magic = true;
            continue;
        }

        if (tokens[0] == "methods") {
            std::int64_t count = 0;
            if (tokens.size() != 2 ||
                !support::parseInt(tokens[1], count)) {
                return fail(line_number, "bad methods line");
            }
            if (count != static_cast<std::int64_t>(cfgs.size())) {
                return fail(line_number,
                            "advice is for a different program "
                            "(method count mismatch)");
            }
            continue;
        }

        if (tokens[0] == "level") {
            std::int64_t m = 0;
            std::int64_t level = 0;
            if (tokens.size() != 3 ||
                !support::parseInt(tokens[1], m) ||
                !support::parseInt(tokens[2], level)) {
                return fail(line_number, "bad level line");
            }
            if (m < 0 || m >= static_cast<std::int64_t>(cfgs.size()))
                return fail(line_number, "method id out of range");
            if (level < 0 || level > 2)
                return fail(line_number, "bad optimization level");
            result.advice.finalLevel[static_cast<std::size_t>(m)] =
                static_cast<OptLevel>(level);
            continue;
        }

        if (tokens[0] == "edge") {
            std::int64_t m = 0;
            std::int64_t b = 0;
            std::int64_t i = 0;
            std::int64_t count = 0;
            if (tokens.size() != 5 ||
                !support::parseInt(tokens[1], m) ||
                !support::parseInt(tokens[2], b) ||
                !support::parseInt(tokens[3], i) ||
                !support::parseInt(tokens[4], count)) {
                return fail(line_number, "bad edge line");
            }
            if (m < 0 || m >= static_cast<std::int64_t>(cfgs.size()))
                return fail(line_number, "method id out of range");
            const cfg::Graph &graph =
                cfgs[static_cast<std::size_t>(m)].graph;
            if (b < 0 ||
                b >= static_cast<std::int64_t>(graph.numBlocks())) {
                return fail(line_number, "block id out of range");
            }
            const auto block = static_cast<cfg::BlockId>(b);
            if (i < 0 || i >= static_cast<std::int64_t>(
                                  graph.succs(block).size())) {
                return fail(line_number,
                            "successor index out of range");
            }
            if (count < 0)
                return fail(line_number, "negative edge count");
            result.advice.oneTimeEdges
                .perMethod[static_cast<std::size_t>(m)]
                .addEdge(cfg::EdgeRef{block,
                                      static_cast<std::uint32_t>(i)},
                         static_cast<std::uint64_t>(count));
            continue;
        }

        if (tokens[0] == "end") {
            saw_end = true;
            continue;
        }
        return fail(line_number,
                    "unknown directive '" + tokens[0] + "'");
    }

    if (!saw_magic)
        return fail(line_number, "empty advice");
    if (!saw_end)
        return fail(line_number, "missing 'end'");
    return result;
}

bool
saveAdviceFile(const std::string &path, const ReplayAdvice &advice)
{
    std::ofstream out(path);
    if (!out) {
        support::warn("cannot write advice file " + path);
        return false;
    }
    out << serializeAdvice(advice);
    return static_cast<bool>(out);
}

ParseAdviceResult
loadAdviceFile(const std::string &path,
               const std::vector<bytecode::MethodCfg> &cfgs)
{
    std::ifstream in(path);
    if (!in) {
        ParseAdviceResult result;
        result.ok = false;
        result.error = "cannot open advice file " + path;
        return result;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parseAdvice(buffer.str(), cfgs);
}

} // namespace pep::vm
