#include "vm/inliner.hh"

#include <map>

#include "bytecode/verifier.hh"
#include "support/panic.hh"

namespace pep::vm {

namespace {

using bytecode::Instr;
using bytecode::Method;
using bytecode::Opcode;
using bytecode::Pc;

/** True if the callee may be spliced into `root`. */
bool
eligible(const bytecode::Program &program, bytecode::MethodId root,
         bytecode::MethodId callee, const InlineOptions &options)
{
    if (callee == root)
        return false;
    const Method &method = program.methods[callee];
    if (method.code.size() > options.maxCalleeSize)
        return false;
    for (const Instr &instr : method.code) {
        if (instr.op == Opcode::Invoke)
            return false; // leaves only
    }
    return true;
}

/** Per-instruction provenance collected while splicing. */
struct InstrOrigin
{
    bytecode::MethodId method = BlockOrigin::kInvalidOriginMethod;
    Pc pc = 0;
};

} // namespace

std::unique_ptr<InlinedBody>
inlineLeafCalls(const bytecode::Program &program,
                bytecode::MethodId root, const InlineOptions &options)
{
    const Method &root_method = program.methods[root];

    // First scan: anything to do?
    bool any = false;
    for (const Instr &instr : root_method.code) {
        if (instr.op == Opcode::Invoke &&
            eligible(program,
                     root,
                     static_cast<bytecode::MethodId>(instr.a),
                     options)) {
            any = true;
            break;
        }
    }
    if (!any)
        return nullptr;

    auto body = std::make_unique<InlinedBody>();
    Method &out = body->method;
    out.name = root_method.name + "$inl";
    out.numArgs = root_method.numArgs;
    out.returnsValue = root_method.returnsValue;

    std::vector<Instr> code;
    std::vector<InstrOrigin> origin;
    body->rootPcMap.assign(root_method.code.size(), 0);

    std::uint32_t next_local = root_method.numLocals;
    std::uint32_t sites = 0;

    // Returns inside spliced callees become gotos to the join point
    // (the instruction following the splice); their targets are only
    // known once the splice ends.
    struct ReturnPatch
    {
        Pc pc; // the synthesized Goto to patch
    };

    for (Pc root_pc = 0; root_pc < root_method.code.size();
         ++root_pc) {
        const Instr &instr = root_method.code[root_pc];
        body->rootPcMap[root_pc] = static_cast<Pc>(code.size());

        const bool splice =
            instr.op == Opcode::Invoke && sites < options.maxSites &&
            eligible(program, root,
                     static_cast<bytecode::MethodId>(instr.a),
                     options);
        if (!splice) {
            code.push_back(instr);
            origin.push_back(InstrOrigin{root, root_pc});
            continue;
        }

        ++sites;
        const auto callee_id =
            static_cast<bytecode::MethodId>(instr.a);
        const Method &callee = program.methods[callee_id];
        const std::uint32_t base = next_local;
        next_local += callee.numLocals;

        // Prologue: pop arguments (last argument is on top) into the
        // remapped argument slots, then zero the callee's remaining
        // locals — the semantics of a fresh frame, which matters when
        // the call site sits in a loop.
        for (std::uint32_t i = callee.numArgs; i > 0; --i) {
            code.push_back(Instr{Opcode::Istore,
                                 static_cast<std::int32_t>(
                                     base + i - 1),
                                 0,
                                 {}});
            origin.push_back(InstrOrigin{});
        }
        for (std::uint32_t s = callee.numArgs; s < callee.numLocals;
             ++s) {
            code.push_back(Instr{Opcode::Iconst, 0, 0, {}});
            origin.push_back(InstrOrigin{});
            code.push_back(Instr{Opcode::Istore,
                                 static_cast<std::int32_t>(base + s),
                                 0,
                                 {}});
            origin.push_back(InstrOrigin{});
        }

        // Body: one synthesized instruction per callee instruction, so
        // internal branch targets remap linearly.
        const Pc callee_start = static_cast<Pc>(code.size());
        std::vector<ReturnPatch> returns;
        for (Pc cpc = 0; cpc < callee.code.size(); ++cpc) {
            Instr copy = callee.code[cpc];
            switch (copy.op) {
              case Opcode::Iload:
              case Opcode::Istore:
              case Opcode::Iinc:
                copy.a += static_cast<std::int32_t>(base);
                break;
              case Opcode::Goto:
                copy.a += static_cast<std::int32_t>(callee_start);
                break;
              case Opcode::Tableswitch:
                copy.b += static_cast<std::int32_t>(callee_start);
                for (std::int32_t &target : copy.table)
                    target += static_cast<std::int32_t>(callee_start);
                break;
              case Opcode::Return:
              case Opcode::Ireturn:
                // An ireturn's result is already on the operand
                // stack, which is exactly what the caller expects.
                returns.push_back(
                    ReturnPatch{static_cast<Pc>(code.size())});
                copy = Instr{Opcode::Goto, 0, 0, {}};
                break;
              default:
                if (bytecode::isCondBranch(copy.op)) {
                    copy.a +=
                        static_cast<std::int32_t>(callee_start);
                }
                break;
            }
            code.push_back(std::move(copy));
            origin.push_back(InstrOrigin{callee_id, cpc});
        }

        // Patch callee returns to jump past the splice.
        const auto join = static_cast<std::int32_t>(code.size());
        for (const ReturnPatch &patch : returns)
            code[patch.pc].a = join;
        // The synthesized gotos are control transfers we fabricated;
        // they carry no original branch identity.
        for (const ReturnPatch &patch : returns)
            origin[patch.pc] = InstrOrigin{};
    }

    // Remap surviving root branch targets through rootPcMap.
    for (Pc pc = 0; pc < code.size(); ++pc) {
        if (origin[pc].method != root)
            continue;
        Instr &instr = code[pc];
        switch (instr.op) {
          case Opcode::Goto:
            instr.a = static_cast<std::int32_t>(
                body->rootPcMap[static_cast<Pc>(instr.a)]);
            break;
          case Opcode::Tableswitch:
            instr.b = static_cast<std::int32_t>(
                body->rootPcMap[static_cast<Pc>(instr.b)]);
            for (std::int32_t &target : instr.table) {
                target = static_cast<std::int32_t>(
                    body->rootPcMap[static_cast<Pc>(target)]);
            }
            break;
          default:
            if (bytecode::isCondBranch(instr.op)) {
                instr.a = static_cast<std::int32_t>(
                    body->rootPcMap[static_cast<Pc>(instr.a)]);
            }
            break;
        }
    }

    out.numLocals = next_local;
    out.code = std::move(code);
    body->inlinedSites = sites;

    // The synthesized method must still verify (against the program,
    // for any surviving call sites).
    {
        const bytecode::VerifyResult verified =
            bytecode::verifyMethod(program, out);
        PEP_ASSERT_MSG(verified.ok, "inlined body of "
                                        << root_method.name
                                        << " failed verification: "
                                        << verified.error);
    }

    // CFG + execution tables for the synthesized code.
    body->info = buildMethodInfo(out);
    const cfg::Graph &graph = body->info.cfg.graph;

    // Block origins: a block inherits the provenance of its
    // terminator instruction (what layout and branch counters key on).
    std::map<bytecode::MethodId, bytecode::MethodCfg> origin_cfgs;
    auto cfg_of = [&](bytecode::MethodId m)
        -> const bytecode::MethodCfg & {
        auto it = origin_cfgs.find(m);
        if (it == origin_cfgs.end()) {
            it = origin_cfgs
                     .emplace(m, bytecode::buildCfg(program.methods[m]))
                     .first;
        }
        return it->second;
    };
    body->blockOrigin.assign(graph.numBlocks(), BlockOrigin{});
    for (cfg::BlockId b = 2; b < graph.numBlocks(); ++b) {
        const Pc last = body->info.cfg.lastPc[b];
        const InstrOrigin &instr_origin = origin[last];
        if (instr_origin.method == BlockOrigin::kInvalidOriginMethod)
            continue;
        body->blockOrigin[b] = BlockOrigin{
            instr_origin.method,
            cfg_of(instr_origin.method).blockOfPc[instr_origin.pc]};
    }

    return body;
}

} // namespace pep::vm
