#include "vm/call_graph.hh"

#include <algorithm>

namespace pep::vm {

std::uint64_t
CallGraph::count(bytecode::MethodId caller,
                 bytecode::MethodId callee) const
{
    const auto it = edges_.find({caller, callee});
    return it == edges_.end() ? 0 : it->second;
}

std::uint64_t
CallGraph::totalCalls() const
{
    std::uint64_t total = 0;
    for (const auto &[edge, count] : edges_)
        total += count;
    return total;
}

std::vector<std::pair<bytecode::MethodId, std::uint64_t>>
CallGraph::calleesOf(bytecode::MethodId caller) const
{
    std::vector<std::pair<bytecode::MethodId, std::uint64_t>> result;
    for (const auto &[edge, count] : edges_) {
        if (edge.first == caller)
            result.emplace_back(edge.second, count);
    }
    std::stable_sort(result.begin(), result.end(),
                     [](const auto &a, const auto &b) {
                         return a.second > b.second;
                     });
    return result;
}

double
callGraphOverlap(const CallGraph &a, const CallGraph &b)
{
    const double total_a = static_cast<double>(a.totalCalls());
    const double total_b = static_cast<double>(b.totalCalls());
    if (total_a == 0.0 && total_b == 0.0)
        return 1.0;
    if (total_a == 0.0 || total_b == 0.0)
        return 0.0;
    double overlap = 0.0;
    for (const auto &[edge, count] : a.edges()) {
        const double share_a = static_cast<double>(count) / total_a;
        const double share_b =
            static_cast<double>(b.count(edge.first, edge.second)) /
            total_b;
        overlap += std::min(share_a, share_b);
    }
    return overlap;
}

} // namespace pep::vm
