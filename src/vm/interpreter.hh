#ifndef PEP_VM_INTERPRETER_HH
#define PEP_VM_INTERPRETER_HH

/**
 * @file
 * The execution engine. Interprets bytecode instruction by instruction,
 * charging the cost model, maintaining ground-truth edge counts, firing
 * profiler hooks (method entry/exit, edges, loop headers, yieldpoints),
 * polling the virtual timer at yieldpoints, and driving lazy/adaptive
 * compilation at call sites.
 */

#include <cstdint>
#include <vector>

#include "bytecode/method.hh"
#include "vm/machine.hh"

namespace pep::vm {

/** One invocation record. */
struct Frame
{
    bytecode::MethodId method = 0;
    const CompiledMethod *version = nullptr;

    /** Code this frame executes: the method's bytecode, or the
     *  version's inlined body. */
    const bytecode::Method *code = nullptr;

    /** Execution tables matching `code`. */
    const MethodInfo *info = nullptr;

    bytecode::Pc pc = 0;
    std::vector<std::int32_t> locals;
    std::vector<std::int32_t> stack;
};

/** Runs one iteration (one main() invocation) on a Machine. */
class Interpreter
{
  public:
    explicit Interpreter(Machine &machine);

    /** Execute main() to completion. */
    void run();

  private:
    /** Execute instructions until the frame stack empties. */
    void loop();

    /** Push a frame for `m`, taking numArgs arguments from `caller`'s
     *  operand stack (caller may be nullptr for main). */
    void pushFrame(bytecode::MethodId m, Frame *caller);

    /** Fire a yieldpoint: poll the timer, take adaptive method
     *  samples, notify hooks, and perform OSR at loop headers when
     *  enabled. `block` is the header block for LoopHeader
     *  yieldpoints. */
    void yieldpoint(YieldpointKind kind,
                    cfg::BlockId block = cfg::kInvalidBlock);

    /** Fire edge hooks + ground truth for a taken CFG edge (edge ids
     *  are in the frame's executing CFG; ground truth maps inlined
     *  branch edges back to their original bytecode branch). */
    void edgeTaken(const Frame &frame, cfg::EdgeRef edge);

    /** Transfer control to `target` pc, firing header events. */
    void transferTo(Frame &frame, bytecode::Pc target);

    /** Advance past a non-branch instruction at frame.pc, firing the
     *  fall-through edge when the block ends there. */
    void advance(Frame &frame);

    /** Ensure the method is compiled at its target level; returns the
     *  version new invocations should use. */
    const CompiledMethod *resolveVersion(bytecode::MethodId m);

    FrameView view(const Frame &frame) const;

    Machine &vm_;
    std::vector<Frame> frames_;
    std::uint64_t iterationStart_ = 0;
    std::uint64_t globalsBase_ = 0; // unused; reserved
};

} // namespace pep::vm

#endif // PEP_VM_INTERPRETER_HH
