#ifndef PEP_VM_INTERPRETER_HH
#define PEP_VM_INTERPRETER_HH

/**
 * @file
 * The execution engine. Interprets bytecode instruction by instruction,
 * charging the cost model, maintaining ground-truth edge counts, firing
 * profiler hooks (method entry/exit, edges, loop headers, yieldpoints),
 * polling the virtual timer at yieldpoints, and driving lazy/adaptive
 * compilation at call sites.
 */

#include <cstdint>
#include <vector>

#include "bytecode/method.hh"
#include "vm/machine.hh"

namespace pep::vm {

/** One invocation record. */
struct Frame
{
    bytecode::MethodId method = 0;
    const CompiledMethod *version = nullptr;

    /** Code this frame executes: the method's bytecode, or the
     *  version's inlined body. */
    const bytecode::Method *code = nullptr;

    /** Execution tables matching `code`. */
    const MethodInfo *info = nullptr;

    bytecode::Pc pc = 0;
    std::vector<std::int32_t> locals;
    std::vector<std::int32_t> stack;
};

/**
 * Runs invocations on a Machine. The classic use is one-shot (run()
 * executes main() to completion); the concurrent runtime instead keeps
 * one Interpreter per virtual mutator thread alive across requests,
 * using start() / resume() / done(): resume() executes until the frame
 * stack empties or the machine's ThreadScheduler requests a context
 * switch at a yieldpoint, at which point the interpreter parks with its
 * frame stack intact and can be resumed later.
 */
class Interpreter
{
  public:
    /** `thread` is the virtual mutator thread id this interpreter
     *  represents; it selects the Irnd stream and is reported to hooks
     *  in FrameView::thread. */
    explicit Interpreter(Machine &machine, std::uint32_t thread = 0);

    /** Execute main() to completion. */
    void run();

    /**
     * Begin an invocation of `entry` with the given arguments (the
     * request-stream workload's per-request variation). Only valid when
     * done(); does not execute any code yet — call resume().
     */
    void start(bytecode::MethodId entry,
               const std::vector<std::int32_t> &args = {});

    /**
     * Execute until the current invocation completes or the scheduler
     * requests a switch. Returns true if the invocation completed
     * (done() is true).
     */
    bool resume();

    /** No frames live: ready for the next start(). */
    bool done() const { return frames_.empty(); }

    std::uint32_t threadId() const { return thread_; }

  private:
    /** Execute instructions until the frame stack empties or a thread
     *  switch is requested (switch-dispatch backend). */
    void loop();

    /**
     * The threaded backend: same contract as loop(), executing each
     * frame's pre-decoded template stream (decoded_method.hh) with
     * computed-goto dispatch where the compiler supports it. Byte-
     * identical observable behaviour to loop() — see docs/ENGINE.md.
     */
    void loopThreaded();

    /** Push a frame for `m`, taking numArgs arguments from `caller`'s
     *  operand stack, or from `entry_args` when this is the root frame
     *  of an invocation (caller == nullptr). */
    void pushFrame(bytecode::MethodId m, Frame *caller,
                   const std::vector<std::int32_t> *entry_args = nullptr);

    /** Fire a yieldpoint: poll the timer, take adaptive method
     *  samples, notify hooks, and perform OSR at loop headers when
     *  enabled. `block` is the header block for LoopHeader
     *  yieldpoints. */
    void yieldpoint(YieldpointKind kind,
                    cfg::BlockId block = cfg::kInvalidBlock);

    /** Fire edge hooks + ground truth for a taken CFG edge (edge ids
     *  are in the frame's executing CFG; ground truth maps inlined
     *  branch edges back to their original bytecode branch). */
    void edgeTaken(const Frame &frame, cfg::EdgeRef edge);

    /** edgeTaken with the edge's dense flat id precomputed by the
     *  threaded engine's templates (fires onEdgeFast). */
    void edgeTakenFast(const Frame &frame, cfg::EdgeRef edge,
                       std::uint32_t flat_id);

    /** Ground-truth recording shared by edgeTaken/edgeTakenFast. */
    void recordEdgeTruth(const Frame &frame, cfg::EdgeRef edge);

    /** Transfer control to `target` pc, firing header events. */
    void transferTo(Frame &frame, bytecode::Pc target);

    /** Advance past a non-branch instruction at frame.pc, firing the
     *  fall-through edge when the block ends there. */
    void advance(Frame &frame);

    /** Ensure the method is compiled at its target level; returns the
     *  version new invocations should use. */
    const CompiledMethod *resolveVersion(bytecode::MethodId m);

    FrameView view(const Frame &frame) const;

    Machine &vm_;
    std::vector<Frame> frames_;
    std::uint32_t thread_ = 0;

    /** This thread's Irnd stream (owned by the machine). */
    support::Rng *rng_ = nullptr;

    /** Set at a yieldpoint when the scheduler wants this thread off
     *  the (virtual) processor; honoured at the next instruction
     *  boundary. */
    bool switchRequested_ = false;

    std::uint64_t iterationStart_ = 0;
};

} // namespace pep::vm

#endif // PEP_VM_INTERPRETER_HH
