#ifndef PEP_VM_DECODED_METHOD_HH
#define PEP_VM_DECODED_METHOD_HH

/**
 * @file
 * Pre-decoded template streams for the threaded execution engine
 * (docs/ENGINE.md). At install time each compiled version is translated
 * into a contiguous array of Templates: operands resolved, branch
 * targets turned into template indices, the version's branch layout and
 * the structural flat-edge base (`InstrumentationPlan::edgeBase`) burned
 * into block-boundary templates, and per-op scaled costs folded into
 * per-segment sums so straight-line block bodies execute with zero
 * profiling branches.
 *
 * A *segment* is a run of instructions charged as one unit: it starts
 * at a block-leader pc or immediately after an Invoke, and ends with
 * the block's terminator, an Invoke, or the block's fall-through end.
 * Cycles and the instruction counter are only observable at segment
 * boundaries (yieldpoints, hooks, and branch bookkeeping all fire
 * there), so charging the whole sum on the segment's first template is
 * indistinguishable from the switch engine's per-instruction charging —
 * and every park/resume pc the cooperative scheduler can produce is a
 * segment leader, so `pcToTemplate` round-trips frames exactly.
 *
 * Translation is a pure function of (code, tables, compiled version):
 * it charges no simulated cycles and consults no mutable VM state.
 * Whenever a version's plan mutates after install (recompilation
 * installs a fresh version naturally; relayout mutates in place), the
 * cached stream MUST be invalidated via Machine::invalidateDecoded —
 * the template-stream mirror of the PR-2 `rebuildFlat()` invariant.
 */

#include <cstdint>
#include <vector>

#include "bytecode/method.hh"
#include "cfg/graph.hh"

namespace pep::vm {

class CompiledMethod;
struct MethodInfo;

/**
 * Threaded-engine opcodes. Values 0..kNumOpcodes-1 are exactly
 * bytecode::Opcode (so translation of plain ops is a cast); the
 * synthetic entries follow.
 */
constexpr std::uint8_t kTopFallEdge =
    static_cast<std::uint8_t>(bytecode::kNumOpcodes);

/** Size of the threaded engine's dispatch table. */
constexpr std::size_t kNumTops = bytecode::kNumOpcodes + 1;

/** Template flag bits. */
enum : std::uint8_t
{
    /** The instruction is the last of its block (Invoke only: its
     *  fall-through is a block-end CFG edge). */
    kTplEndsBlock = 1u << 0,

    /** The taken / fall-through target is a loop-header leader. */
    kTplTakenHeader = 1u << 1,
    kTplFallHeader = 1u << 2,

    /** Version carries baseline one-time edge instrumentation. */
    kTplBaselineEdge = 1u << 3,
};

/** One Tableswitch case (or default) with its target pre-resolved. */
struct SwitchCase
{
    std::uint32_t tpl = 0;     ///< target template index
    bytecode::Pc pc = 0;       ///< target pc
    cfg::BlockId block = 0;    ///< target block
    std::uint8_t isHeader = 0; ///< target is a loop-header leader
};

/**
 * One pre-decoded instruction (or injected boundary op). Fields are
 * meaningful per kind; unused ones stay zero. `cost`/`ninstr` are the
 * segment sums, nonzero only on segment-leader templates and charged
 * unconditionally (a branch-free `+= 0` elsewhere).
 */
struct Template
{
    std::uint8_t op = 0;     ///< TOp (bytecode::Opcode value or synthetic)
    std::uint8_t flags = 0;
    std::int16_t layout = -1; ///< CompiledMethod::branchLayout[block]
    std::uint32_t cost = 0;   ///< segment scaled-cost sum
    std::uint32_t ninstr = 0; ///< segment instruction count

    std::int32_t a = 0; ///< operand (local / constant / callee / sw low)
    std::int32_t b = 0; ///< operand

    cfg::BlockId block = 0;    ///< block this instruction belongs to
    std::uint32_t flatBase = 0; ///< structural edgeBase[block]

    /** Taken target (branches/Goto) — template, pc, block. */
    std::uint32_t taken = 0;
    bytecode::Pc takenPc = 0;
    cfg::BlockId takenBlock = 0;

    /** Fall-through target (branches/FallEdge/Invoke). */
    std::uint32_t fall = 0;
    bytecode::Pc fallPc = 0;
    cfg::BlockId fallBlock = 0;

    /** Tableswitch slice into DecodedMethod::switchCases
     *  (swCount cases followed by the default entry). */
    std::uint32_t swFirst = 0;
    std::uint32_t swCount = 0;

    bytecode::Pc pc = 0; ///< source pc (FallEdge: pc of the block end)
};

/** The translated form of one compiled version. */
struct DecodedMethod
{
    /** Version this stream was translated from (not owned). */
    const CompiledMethod *source = nullptr;

    /** Code/tables the stream executes (the inlined body's when the
     *  version has one; not owned). */
    const bytecode::Method *code = nullptr;
    const MethodInfo *info = nullptr;

    std::vector<Template> stream;

    /** pc -> template index (injected FallEdge templates shift the
     *  stream, so the mapping is not the identity). */
    std::vector<std::uint32_t> pcToTemplate;

    std::vector<SwitchCase> switchCases;

    /**
     * Structural prefix sums of per-block CFG successor counts
     * (numBlocks + 1 entries). Identical to every enabled
     * InstrumentationPlan's `edgeBase` for this CFG — the plan
     * checker's template check proves it memberwise.
     */
    std::vector<std::uint32_t> edgeBase;
};

/**
 * Translate one compiled version into a template stream. `code` and
 * `info` must be the code the version executes (its inlined body's
 * when present) and must outlive the result; so must `cm`.
 */
DecodedMethod translateMethod(const bytecode::Method &code,
                              const MethodInfo &info,
                              const CompiledMethod &cm);

} // namespace pep::vm

#endif // PEP_VM_DECODED_METHOD_HH
