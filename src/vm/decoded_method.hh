#ifndef PEP_VM_DECODED_METHOD_HH
#define PEP_VM_DECODED_METHOD_HH

/**
 * @file
 * Pre-decoded template streams for the threaded execution engine
 * (docs/ENGINE.md). At install time each compiled version is translated
 * into a contiguous array of Templates: operands resolved, branch
 * targets turned into template indices, the version's branch layout and
 * the structural flat-edge base (`InstrumentationPlan::edgeBase`) burned
 * into block-boundary templates, and per-op scaled costs folded into
 * per-segment sums so straight-line block bodies execute with zero
 * profiling branches.
 *
 * A *segment* is a run of instructions charged as one unit: it starts
 * at a block-leader pc or immediately after an Invoke, and ends with
 * the block's terminator, an Invoke, or the block's fall-through end.
 * Cycles and the instruction counter are only observable at segment
 * boundaries (yieldpoints, hooks, and branch bookkeeping all fire
 * there), so charging the whole sum on the segment's first template is
 * indistinguishable from the switch engine's per-instruction charging —
 * and every park/resume pc the cooperative scheduler can produce is a
 * segment leader, so `pcToTemplate` round-trips frames exactly.
 *
 * On top of the plain per-opcode templates, translation can *fuse*
 * (FuseOptions, PEP_FUSE):
 *
 *  - `pairs`: common opcode pairs/triples collapse into one
 *    superinstruction template with burned-in operands (const+store,
 *    load+load+arith, load+cmp+branch, ...) — one dispatch instead of
 *    two or three. Every constituent pc still maps to the fused
 *    template in `pcToTemplate`, and fusion never crosses a segment
 *    boundary, so parks, OSR, and rebinds are unaffected.
 *
 *  - `traces`: runs of predicted-fall-through blocks (branch layout
 *    != 1, i.e. fall-through is the laid-out direction) straighten
 *    into a hot trace. The whole trace's cost/ninstr sum is prepaid on
 *    the head block's leader template (one add per trace); interior
 *    leaders carry zero. Each interior conditional branch becomes a
 *    *guard*: its taken ("mispredicted") exit refunds the unexecuted
 *    suffix sums — stashed in the guard's `swFirst`/`swCount` fields,
 *    which a conditional branch never uses — before the edge event can
 *    fire a back-edge yieldpoint, then transfers normally; its fall
 *    exit continues into the next trace block with no header, park, or
 *    yieldpoint checks (interior blocks are non-header single-
 *    predecessor blocks, so none can occur). Interior fall-through
 *    block ends become `kTopTraceFall`: the CFG edge event plus a
 *    direct template jump. Trace members never contain an Invoke, so
 *    no callee yieldpoint can observe the prepaid clock mid-trace.
 *
 * Fusion is a pure translation-time choice: the switch engine ignores
 * it and every observable stays byte-identical across the whole
 * PEP_ENGINE x PEP_FUSE matrix (differ check 7, plan-checker check 12,
 * the engine-equivalence verify pass).
 *
 * Translation is a pure function of (code, tables, compiled version,
 * fuse options): it charges no simulated cycles and consults no
 * mutable VM state — the edge profile enters only through the
 * version's installed `branchLayout`. Whenever a version's plan
 * mutates after install (recompilation installs a fresh version
 * naturally; relayout mutates in place), the cached stream MUST be
 * invalidated via Machine::invalidateDecoded — the template-stream
 * mirror of the PR-2 `rebuildFlat()` invariant.
 */

#include <cstdint>
#include <vector>

#include "bytecode/method.hh"
#include "cfg/graph.hh"
#include "vm/engine.hh"

namespace pep::vm {

class CompiledMethod;
struct MethodInfo;

/**
 * Threaded-engine opcodes. Values 0..kNumOpcodes-1 are exactly
 * bytecode::Opcode (so translation of plain ops is a cast); the
 * synthetic entries follow.
 */
constexpr std::uint8_t kTopFallEdge =
    static_cast<std::uint8_t>(bytecode::kNumOpcodes);

/** Trace-interior fall-through block end: edge event + direct jump
 *  (a FallEdge with the transfer checks proven away). */
constexpr std::uint8_t kTopTraceFall = kTopFallEdge + 1;

/** Trace guards: one top per conditional-branch opcode, split into the
 *  zero-compare family (Ifeq..Ifle) and the two-operand family
 *  (IfIcmpeq..IfIcmple), indexed by opcode offset within the family. */
constexpr std::uint8_t kTopGuardZeroBase = kTopTraceFall + 1;
constexpr std::uint8_t kTopGuardCmpBase = kTopGuardZeroBase + 6;

/** Fused pairs with burned-in operands (see Template field notes). */
constexpr std::uint8_t kTopConstStore = kTopGuardCmpBase + 6;
constexpr std::uint8_t kTopLoadStore = kTopConstStore + 1;
constexpr std::uint8_t kTopLoadLoad = kTopLoadStore + 1;

/** Fused arithmetic families: one top per Iadd..Ishr opcode, indexed
 *  by (op - Iadd). */
constexpr std::uint8_t kTopConstArithBase = kTopLoadLoad + 1;
constexpr std::uint8_t kTopLoadArithBase = kTopConstArithBase + 10;
constexpr std::uint8_t kTopLoadLoadArithBase = kTopLoadArithBase + 10;
constexpr std::uint8_t kTopLoadConstArithBase = kTopLoadLoadArithBase + 10;

/** Fused compare-and-branch families, indexed like the guards. */
constexpr std::uint8_t kTopLoadZeroBrBase = kTopLoadConstArithBase + 10;
constexpr std::uint8_t kTopLoadLoadCmpBrBase = kTopLoadZeroBrBase + 6;
constexpr std::uint8_t kTopLoadConstCmpBrBase = kTopLoadLoadCmpBrBase + 6;

/** Size of the threaded engine's dispatch table. */
constexpr std::size_t kNumTops = kTopLoadConstCmpBrBase + 6;

static_assert(kNumTops == 113, "dispatch table layout drifted");

/** Template flag bits. */
enum : std::uint8_t
{
    /** The instruction is the last of its block (Invoke only: its
     *  fall-through is a block-end CFG edge). */
    kTplEndsBlock = 1u << 0,

    /** The taken / fall-through target is a loop-header leader. */
    kTplTakenHeader = 1u << 1,
    kTplFallHeader = 1u << 2,

    /** Version carries baseline one-time edge instrumentation. */
    kTplBaselineEdge = 1u << 3,
};

/** One Tableswitch case (or default) with its target pre-resolved. */
struct SwitchCase
{
    std::uint32_t tpl = 0;     ///< target template index
    bytecode::Pc pc = 0;       ///< target pc
    cfg::BlockId block = 0;    ///< target block
    std::uint8_t isHeader = 0; ///< target is a loop-header leader
};

/**
 * One pre-decoded instruction (or injected boundary op, or fused
 * superinstruction). Fields are meaningful per kind; unused ones stay
 * zero. `cost`/`ninstr` are the segment sums (the whole trace's sums
 * on a trace-head leader), nonzero only on segment-leader templates
 * and charged unconditionally (a branch-free `+= 0` elsewhere).
 *
 * Fused templates burn their constituents' operands into `a`/`b`:
 *   ConstStore      a=const, b=dst local
 *   LoadStore       a=src local, b=dst local
 *   LoadLoad        a=first local, b=second local
 *   ConstArith      a=const rhs (lhs from the stack)
 *   LoadArith       a=rhs local (lhs from the stack)
 *   LoadLoadArith   a=lhs local, b=rhs local
 *   LoadConstArith  a=lhs local, b=const rhs
 *   LoadZeroBr      a=operand local
 *   LoadLoadCmpBr   a=lhs local, b=rhs local
 *   LoadConstCmpBr  a=lhs local, b=const rhs
 * Trace guards reuse `swFirst`/`swCount` (never used by a conditional
 * branch) as the suffix cost/ninstr refunded on the mispredicted exit.
 */
struct Template
{
    std::uint8_t op = 0;    ///< TOp (bytecode::Opcode value or synthetic)
    std::uint8_t flags = 0;
    std::uint8_t sub = 0;   ///< fused/guard selector opcode (else 0)
    std::uint8_t fuseLen = 1; ///< constituent instructions collapsed
    std::int16_t layout = -1; ///< CompiledMethod::branchLayout[block]
    std::uint32_t cost = 0;   ///< segment (or trace) scaled-cost sum
    std::uint32_t ninstr = 0; ///< segment (or trace) instruction count

    std::int32_t a = 0; ///< operand (local / constant / callee / sw low)
    std::int32_t b = 0; ///< operand

    cfg::BlockId block = 0;    ///< block this instruction belongs to
    std::uint32_t flatBase = 0; ///< structural edgeBase[block]

    /** Taken target (branches/Goto) — template, pc, block. */
    std::uint32_t taken = 0;
    bytecode::Pc takenPc = 0;
    cfg::BlockId takenBlock = 0;

    /** Fall-through target (branches/FallEdge/Invoke). */
    std::uint32_t fall = 0;
    bytecode::Pc fallPc = 0;
    cfg::BlockId fallBlock = 0;

    /** Tableswitch slice into DecodedMethod::switchCases
     *  (swCount cases followed by the default entry); trace guards:
     *  suffix cost (`swFirst`) / ninstr (`swCount`) refund. */
    std::uint32_t swFirst = 0;
    std::uint32_t swCount = 0;

    bytecode::Pc pc = 0; ///< source pc (fused: first constituent's;
                         ///< FallEdge: pc of the block end)
};

/** The translated form of one compiled version. */
struct DecodedMethod
{
    /** Version this stream was translated from (not owned). */
    const CompiledMethod *source = nullptr;

    /** Code/tables the stream executes (the inlined body's when the
     *  version has one; not owned). */
    const bytecode::Method *code = nullptr;
    const MethodInfo *info = nullptr;

    /** Fusion selection this stream was translated under — part of the
     *  cache key in Machine::decodedFor. */
    FuseOptions fuse;

    std::vector<Template> stream;

    /** pc -> template index (injected FallEdge templates shift the
     *  stream and fused templates cover several pcs, so the mapping is
     *  not the identity; every constituent pc maps to its fused
     *  template). */
    std::vector<std::uint32_t> pcToTemplate;

    std::vector<SwitchCase> switchCases;

    /** Straightened hot traces: member blocks in execution order
     *  (head first), plus block -> trace index (-1 when not in a
     *  trace). Empty / all -1 unless `fuse.traces`. */
    std::vector<std::vector<cfg::BlockId>> traces;
    std::vector<std::int32_t> blockTrace;

    /**
     * Structural prefix sums of per-block CFG successor counts
     * (numBlocks + 1 entries). Identical to every enabled
     * InstrumentationPlan's `edgeBase` for this CFG — the plan
     * checker's template check proves it memberwise.
     */
    std::vector<std::uint32_t> edgeBase;
};

// ---- Fusion introspection (shared by the translator, the threaded
//      engine, and the verification layer) ----------------------------

/** Arithmetic opcodes eligible for operand fusion (Iadd..Ishr; Ineg is
 *  unary and stays unfused). */
bool isFusibleArith(bytecode::Opcode op);

/** Zero-compare conditional branches (Ifeq..Ifle). */
bool isZeroBranch(bytecode::Opcode op);

/** One fusion-menu match. */
struct FusionMatch
{
    std::uint8_t top = 0; ///< fused TOp
    std::uint8_t len = 0; ///< constituent instructions (0: no match)
    std::uint8_t sub = 0; ///< selector constituent opcode
};

/**
 * Longest fusion-menu match starting at `pc` — a pure function of the
 * code bytes (triples before pairs, so selection is deterministic).
 * Callers gate on segment structure separately: a match is only
 * *applied* when no later constituent pc is a segment leader and the
 * terminator is not a trace guard.
 */
FusionMatch matchFusion(const bytecode::Method &code, bytecode::Pc pc);

/** Guard TOp for a conditional branch hoisted into a trace guard. */
std::uint8_t guardTopFor(bytecode::Opcode op);

/** True for trace-guard TOps. */
bool isGuardTop(std::uint8_t top);

/** True for fused superinstruction TOps (guards excluded). */
bool isFusedTop(std::uint8_t top);

/** True for fused TOps whose last constituent is a conditional
 *  branch. */
bool isFusedBranchTop(std::uint8_t top);

/**
 * The conditional-branch opcode a guard or fused-branch TOp encodes
 * (its `sub`, re-derived from the top value alone).
 */
bytecode::Opcode branchOpcodeOfTop(std::uint8_t top);

/**
 * The hot-trace chains translateMethod forms for this version under
 * `fuse` (empty unless fuse.traces): maximal runs of no-Invoke blocks
 * linked by predicted-fall-through transitions into non-header,
 * single-predecessor successors. Exposed for tests and the fused-
 * stream checker.
 */
std::vector<std::vector<cfg::BlockId>>
selectTraces(const bytecode::Method &code, const MethodInfo &info,
             const CompiledMethod &cm, const FuseOptions &fuse);

/**
 * Translate one compiled version into a template stream. `code` and
 * `info` must be the code the version executes (its inlined body's
 * when present) and must outlive the result; so must `cm`.
 */
DecodedMethod translateMethod(const bytecode::Method &code,
                              const MethodInfo &info,
                              const CompiledMethod &cm,
                              const FuseOptions &fuse = {});

} // namespace pep::vm

#endif // PEP_VM_DECODED_METHOD_HH
