#include "vm/interpreter.hh"

#include "vm/inliner.hh"

#include "support/panic.hh"

namespace pep::vm {

namespace {

/** Evaluate a compare-to-zero branch condition. */
bool
zeroCond(bytecode::Opcode op, std::int32_t v)
{
    using bytecode::Opcode;
    switch (op) {
      case Opcode::Ifeq:
        return v == 0;
      case Opcode::Ifne:
        return v != 0;
      case Opcode::Iflt:
        return v < 0;
      case Opcode::Ifge:
        return v >= 0;
      case Opcode::Ifgt:
        return v > 0;
      case Opcode::Ifle:
        return v <= 0;
      default:
        PEP_PANIC("not a zero-compare branch");
    }
}

/** Evaluate a two-operand compare branch condition. */
bool
cmpCond(bytecode::Opcode op, std::int32_t a, std::int32_t b)
{
    using bytecode::Opcode;
    switch (op) {
      case Opcode::IfIcmpeq:
        return a == b;
      case Opcode::IfIcmpne:
        return a != b;
      case Opcode::IfIcmplt:
        return a < b;
      case Opcode::IfIcmpge:
        return a >= b;
      case Opcode::IfIcmpgt:
        return a > b;
      case Opcode::IfIcmple:
        return a <= b;
      default:
        PEP_PANIC("not a compare branch");
    }
}

std::int32_t
wrapArith(bytecode::Opcode op, std::int32_t a, std::int32_t b)
{
    using bytecode::Opcode;
    const auto ua = static_cast<std::uint32_t>(a);
    const auto ub = static_cast<std::uint32_t>(b);
    switch (op) {
      case Opcode::Iadd:
        return static_cast<std::int32_t>(ua + ub);
      case Opcode::Isub:
        return static_cast<std::int32_t>(ua - ub);
      case Opcode::Imul:
        return static_cast<std::int32_t>(ua * ub);
      case Opcode::Idiv:
        return b == 0 ? 0
               : (a == INT32_MIN && b == -1) ? a
                                             : a / b;
      case Opcode::Irem:
        return b == 0 ? 0
               : (a == INT32_MIN && b == -1) ? 0
                                             : a % b;
      case Opcode::Iand:
        return static_cast<std::int32_t>(ua & ub);
      case Opcode::Ior:
        return static_cast<std::int32_t>(ua | ub);
      case Opcode::Ixor:
        return static_cast<std::int32_t>(ua ^ ub);
      case Opcode::Ishl:
        return static_cast<std::int32_t>(ua << (ub & 31));
      case Opcode::Ishr:
        return a >> (ub & 31);
      default:
        PEP_PANIC("not a binary arithmetic op");
    }
}

} // namespace

Interpreter::Interpreter(Machine &machine, std::uint32_t thread)
    : vm_(machine), thread_(thread),
      rng_(&machine.rngForThread(thread))
{
}

FrameView
Interpreter::view(const Frame &frame) const
{
    FrameView fv;
    fv.method = frame.method;
    fv.version = frame.version;
    fv.depth = static_cast<std::uint32_t>(frames_.size()) - 1;
    fv.thread = thread_;
    return fv;
}

const CompiledMethod *
Interpreter::resolveVersion(bytecode::MethodId m)
{
    const CompiledMethod *current = vm_.currentVersion(m);
    const OptLevel target = vm_.targetLevel(m);
    if (!current ||
        static_cast<int>(target) > static_cast<int>(current->level)) {
        return &vm_.compile(m, target);
    }
    return current;
}

void
Interpreter::pushFrame(bytecode::MethodId m, Frame *caller,
                       const std::vector<std::int32_t> *entry_args)
{
    if (frames_.size() >= vm_.params_.maxCallDepth)
        support::fatal("call stack overflow (depth limit)");

    const CompiledMethod *version = resolveVersion(m);

    Frame frame;
    frame.method = m;
    frame.version = version;
    if (version->inlinedBody) {
        frame.code = &version->inlinedBody->method;
        frame.info = &version->inlinedBody->info;
    } else {
        frame.code = &vm_.program_.methods[m];
        frame.info = &vm_.infos_[m];
    }
    frame.pc = 0;
    frame.locals.assign(frame.code->numLocals, 0);
    frame.stack.reserve(frame.code->maxStack);
    if (frame.code->numArgs > 0) {
        if (caller) {
            PEP_ASSERT(caller->stack.size() >= frame.code->numArgs);
            for (std::uint32_t i = frame.code->numArgs; i > 0; --i) {
                frame.locals[i - 1] = caller->stack.back();
                caller->stack.pop_back();
            }
        } else {
            // Root frame of a request: arguments come from the driver.
            PEP_ASSERT_MSG(entry_args && entry_args->size() ==
                                             frame.code->numArgs,
                           "entry method argument count mismatch");
            for (std::uint32_t i = 0; i < frame.code->numArgs; ++i)
                frame.locals[i] = (*entry_args)[i];
        }
    }
    frames_.push_back(std::move(frame));
    ++vm_.stats_.methodInvocations;

    Frame &f = frames_.back();
    const FrameView fv = view(f);
    for (ExecutionHooks *hooks : vm_.hooks_)
        hooks->onMethodEntry(fv);
    yieldpoint(YieldpointKind::MethodEntry);

    // The entry -> first-block edge is a real CFG (and DAG) edge.
    edgeTaken(f, cfg::EdgeRef{f.info->cfg.graph.entry(), 0});
    if (f.info->headerLeaderPc[0]) {
        const cfg::BlockId block = f.info->cfg.blockOfPc[0];
        for (ExecutionHooks *hooks : vm_.hooks_)
            hooks->onLoopHeader(fv, block);
        if (!vm_.params_.yieldpointsOnBackEdges)
            yieldpoint(YieldpointKind::LoopHeader, block);
    }
}

void
Interpreter::yieldpoint(YieldpointKind kind, cfg::BlockId block)
{
    Frame &f = frames_.back();
    ++vm_.stats_.yieldpointsExecuted;
    vm_.cycles_ += vm_.params_.cost.yieldpointCheckCost;

    // Poll the virtual timer; coalesce missed ticks like a real
    // interrupt flag would.
    bool tick_fired = false;
    while (vm_.cycles_ >= vm_.nextTickAt_) {
        vm_.nextTickAt_ += vm_.params_.tickCycles;
        ++vm_.stats_.timerTicks;
        tick_fired = true;
    }

    if (tick_fired) {
        // The handler examines the stack and updates method sample
        // counts (Jikes RVM's adaptive system). This cost exists with
        // or without PEP, so it never appears as PEP overhead.
        vm_.cycles_ += vm_.params_.cost.tickHandlerCost;
        vm_.methodSample(f.method);
        // The handler also samples the dynamic call graph: the
        // (caller, callee) pair at the top of the stack.
        if (frames_.size() >= 2) {
            vm_.sampledCalls_.addCall(
                frames_[frames_.size() - 2].method, f.method);
        }
        if (vm_.cycles_ - iterationStart_ >
            vm_.params_.maxCyclesPerIteration) {
            support::fatal("iteration exceeded cycle budget");
        }
    }

    const FrameView fv = view(f);
    for (ExecutionHooks *hooks : vm_.hooks_)
        hooks->onYieldpoint(fv, kind, tick_fired);

    // On-stack replacement: at a loop-header yieldpoint after a tick,
    // switch this frame to a pending higher-tier compilation instead
    // of waiting for the next invocation.
    if (kind == YieldpointKind::LoopHeader && tick_fired &&
        vm_.params_.enableOsr && !f.version->inlinedBody) {
        // (Frames already running an inlined body are not transferred
        // again — their pcs are not in the root-code coordinate space.)
        const OptLevel target = vm_.targetLevel(f.method);
        if (static_cast<int>(target) >
            static_cast<int>(f.version->level)) {
            const CompiledMethod &fresh = vm_.compile(f.method, target);
            f.version = &fresh;
            cfg::BlockId new_block = block;
            if (fresh.inlinedBody) {
                // Transfer the frame into the synthesized code: map
                // the pc, adopt the new tables, and make room for the
                // inlined callees' local slots.
                f.pc = fresh.inlinedBody->rootPcMap[f.pc];
                f.code = &fresh.inlinedBody->method;
                f.info = &fresh.inlinedBody->info;
                f.locals.resize(f.code->numLocals, 0);
                new_block = f.info->cfg.blockOfPc[f.pc];
            }
            vm_.cycles_ += vm_.params_.cost.osrTransitionCost;
            ++vm_.stats_.osrs;
            const FrameView swapped = view(f);
            for (ExecutionHooks *hooks : vm_.hooks_)
                hooks->onOsr(swapped, new_block);
        }
    }

    // Cooperative scheduling: yieldpoints are the only places a thread
    // switch can be requested (Jikes RVM's quasi-preemptive model).
    // The switch itself happens at the next instruction boundary.
    if (vm_.scheduler_ &&
        vm_.scheduler_->onYieldpoint(thread_, kind, tick_fired)) {
        switchRequested_ = true;
    }
}

void
Interpreter::recordEdgeTruth(const Frame &frame, cfg::EdgeRef edge)
{
    const InlinedBody *inlined = frame.version->inlinedBody.get();
    if (!inlined) {
        vm_.truth_.perMethod[frame.method].addEdge(edge);
    } else {
        // Ground truth is kept per bytecode-level branch of the
        // original methods; inlined branch edges map through their
        // block origin, other synthesized edges carry no original
        // identity.
        const auto kind = frame.info->cfg.terminator[edge.src];
        if (kind == bytecode::TerminatorKind::Cond ||
            kind == bytecode::TerminatorKind::Switch) {
            const BlockOrigin &origin = inlined->blockOrigin[edge.src];
            if (origin.valid()) {
                vm_.truth_.perMethod[origin.method].addEdge(
                    cfg::EdgeRef{origin.block, edge.index});
            }
        }
    }
}

void
Interpreter::edgeTaken(const Frame &frame, cfg::EdgeRef edge)
{
    recordEdgeTruth(frame, edge);
    const FrameView fv = view(frames_.back());
    for (ExecutionHooks *hooks : vm_.hooks_)
        hooks->onEdge(fv, edge);

    // Alternative yieldpoint placement (paper Section 3.2): on back
    // edges instead of loop headers. Fired after onEdge so a
    // back-edge-truncating profiler has already completed the path.
    if (vm_.params_.yieldpointsOnBackEdges &&
        frame.info->isBackEdge[edge.src][edge.index]) {
        yieldpoint(YieldpointKind::BackEdge);
    }
}

void
Interpreter::edgeTakenFast(const Frame &frame, cfg::EdgeRef edge,
                           std::uint32_t flat_id)
{
    recordEdgeTruth(frame, edge);
    const FrameView fv = view(frames_.back());
    for (ExecutionHooks *hooks : vm_.hooks_)
        hooks->onEdgeFast(fv, edge, flat_id);

    if (vm_.params_.yieldpointsOnBackEdges &&
        frame.info->isBackEdge[edge.src][edge.index]) {
        yieldpoint(YieldpointKind::BackEdge);
    }
}

void
Interpreter::transferTo(Frame &frame, bytecode::Pc target)
{
    frame.pc = target;
    const MethodInfo &info = *frame.info;
    if (info.headerLeaderPc[target]) {
        const cfg::BlockId block = info.cfg.blockOfPc[target];
        const FrameView fv = view(frame);
        // The header event (path truncation for HeaderSplit profilers)
        // always fires; the header *yieldpoint* only exists under the
        // default placement.
        for (ExecutionHooks *hooks : vm_.hooks_)
            hooks->onLoopHeader(fv, block);
        if (!vm_.params_.yieldpointsOnBackEdges)
            yieldpoint(YieldpointKind::LoopHeader, block);
    }
}

void
Interpreter::advance(Frame &frame)
{
    const bytecode::Pc next = frame.pc + 1;
    const MethodInfo &info = *frame.info;
    if (next < info.leaderPc.size() && info.leaderPc[next]) {
        // Fall-through into the next block: a CFG edge.
        const cfg::BlockId block = info.cfg.blockOfPc[frame.pc];
        edgeTaken(frame, cfg::EdgeRef{block, 0});
        transferTo(frame, next);
    } else {
        frame.pc = next;
    }
}

void
Interpreter::run()
{
    start(vm_.program_.mainMethod);
    while (!done())
        resume();
}

void
Interpreter::start(bytecode::MethodId entry,
                   const std::vector<std::int32_t> &args)
{
    PEP_ASSERT_MSG(frames_.empty(),
                   "start() while an invocation is in flight");
    switchRequested_ = false;
    iterationStart_ = vm_.cycles_;
    pushFrame(entry, nullptr, &args);
}

bool
Interpreter::resume()
{
    if (!frames_.empty()) {
        if (vm_.params_.engine == EngineKind::Threaded)
            loopThreaded();
        else
            loop();
    }
    return frames_.empty();
}

void
Interpreter::loop()
{
    const CostModel &cost = vm_.params_.cost;

    while (!frames_.empty()) {
        if (switchRequested_) {
            // A yieldpoint asked for a context switch; park with the
            // frame stack intact. The scheduler resumes us later.
            switchRequested_ = false;
            return;
        }
        Frame &f = frames_.back();
        const bytecode::Instr &instr = f.code->code[f.pc];
        const auto op_index = static_cast<std::size_t>(instr.op);

        vm_.cycles_ += f.version->scaledCost[op_index];
        ++vm_.stats_.instructionsExecuted;

        using bytecode::Opcode;
        switch (instr.op) {
          case Opcode::Iconst:
            f.stack.push_back(instr.a);
            advance(f);
            break;
          case Opcode::Iload:
            f.stack.push_back(f.locals[instr.a]);
            advance(f);
            break;
          case Opcode::Istore:
            f.locals[instr.a] = f.stack.back();
            f.stack.pop_back();
            advance(f);
            break;
          case Opcode::Iinc:
            f.locals[instr.a] = static_cast<std::int32_t>(
                static_cast<std::uint32_t>(f.locals[instr.a]) +
                static_cast<std::uint32_t>(instr.b));
            advance(f);
            break;
          case Opcode::Dup:
            f.stack.push_back(f.stack.back());
            advance(f);
            break;
          case Opcode::Pop:
            f.stack.pop_back();
            advance(f);
            break;
          case Opcode::Swap:
            std::swap(f.stack[f.stack.size() - 1],
                      f.stack[f.stack.size() - 2]);
            advance(f);
            break;
          case Opcode::Iadd:
          case Opcode::Isub:
          case Opcode::Imul:
          case Opcode::Idiv:
          case Opcode::Irem:
          case Opcode::Iand:
          case Opcode::Ior:
          case Opcode::Ixor:
          case Opcode::Ishl:
          case Opcode::Ishr: {
            const std::int32_t b = f.stack.back();
            f.stack.pop_back();
            const std::int32_t a = f.stack.back();
            f.stack.back() = wrapArith(instr.op, a, b);
            advance(f);
            break;
          }
          case Opcode::Ineg:
            f.stack.back() = static_cast<std::int32_t>(
                -static_cast<std::uint32_t>(f.stack.back()));
            advance(f);
            break;
          case Opcode::Gload: {
            const std::int32_t idx = f.stack.back();
            if (idx < 0 ||
                static_cast<std::size_t>(idx) >= vm_.globals_.size()) {
                support::fatal("gload index out of bounds");
            }
            f.stack.back() = vm_.globals_[idx];
            advance(f);
            break;
          }
          case Opcode::Gstore: {
            const std::int32_t idx = f.stack.back();
            f.stack.pop_back();
            const std::int32_t value = f.stack.back();
            f.stack.pop_back();
            if (idx < 0 ||
                static_cast<std::size_t>(idx) >= vm_.globals_.size()) {
                support::fatal("gstore index out of bounds");
            }
            vm_.globals_[idx] = value;
            advance(f);
            break;
          }
          case Opcode::Irnd:
            f.stack.push_back(static_cast<std::int32_t>(rng_->next()));
            advance(f);
            break;
          case Opcode::Goto: {
            const cfg::BlockId block = f.info->cfg.blockOfPc[f.pc];
            edgeTaken(f, cfg::EdgeRef{block, 0});
            transferTo(f, static_cast<bytecode::Pc>(instr.a));
            break;
          }
          case Opcode::Tableswitch: {
            const std::int32_t v = f.stack.back();
            f.stack.pop_back();
            const MethodInfo &info = *f.info;
            const cfg::BlockId block = info.cfg.blockOfPc[f.pc];
            const std::int64_t rel =
                static_cast<std::int64_t>(v) - instr.a;
            std::uint32_t succ_index;
            bytecode::Pc target;
            if (rel >= 0 &&
                rel < static_cast<std::int64_t>(instr.table.size())) {
                succ_index = static_cast<std::uint32_t>(rel);
                target = static_cast<bytecode::Pc>(
                    instr.table[static_cast<std::size_t>(rel)]);
            } else {
                succ_index =
                    static_cast<std::uint32_t>(instr.table.size());
                target = static_cast<bytecode::Pc>(instr.b);
            }
            ++vm_.stats_.branchesExecuted;
            const std::int16_t layout = f.version->layoutFor(block);
            const std::uint32_t predicted =
                layout >= 0
                    ? static_cast<std::uint32_t>(layout)
                    : static_cast<std::uint32_t>(instr.table.size());
            if (succ_index != predicted) {
                vm_.cycles_ += cost.layoutMissPenalty;
                ++vm_.stats_.layoutMisses;
            }
            if (f.version->baselineEdgeInstr) {
                vm_.cycles_ += cost.edgeCounterCost;
                vm_.oneTime_.perMethod[f.method].addEdge(
                    cfg::EdgeRef{block, succ_index});
            }
            edgeTaken(f, cfg::EdgeRef{block, succ_index});
            transferTo(f, target);
            break;
          }
          case Opcode::Invoke: {
            const auto callee =
                static_cast<bytecode::MethodId>(instr.a);
            vm_.truthCalls_.addCall(f.method, callee);
            advance(f); // resume point; also fires block-end edge
            pushFrame(callee, &f);
            break;
          }
          case Opcode::Return:
          case Opcode::Ireturn: {
            const MethodInfo &info = *f.info;
            const cfg::BlockId block = info.cfg.blockOfPc[f.pc];
            std::int32_t result = 0;
            const bool has_result = (instr.op == Opcode::Ireturn);
            if (has_result) {
                result = f.stack.back();
                f.stack.pop_back();
            }
            edgeTaken(f, cfg::EdgeRef{block, 0});
            const FrameView fv = view(f);
            for (ExecutionHooks *hooks : vm_.hooks_)
                hooks->onMethodExit(fv);
            yieldpoint(YieldpointKind::MethodExit);
            frames_.pop_back();
            if (!frames_.empty() && has_result)
                frames_.back().stack.push_back(result);
            break;
          }
          default: {
            // Conditional branches.
            PEP_ASSERT(bytecode::isCondBranch(instr.op));
            bool taken;
            if (bytecode::isCmpBranch(instr.op)) {
                const std::int32_t b = f.stack.back();
                f.stack.pop_back();
                const std::int32_t a = f.stack.back();
                f.stack.pop_back();
                taken = cmpCond(instr.op, a, b);
            } else {
                const std::int32_t v = f.stack.back();
                f.stack.pop_back();
                taken = zeroCond(instr.op, v);
            }
            const MethodInfo &info = *f.info;
            const cfg::BlockId block = info.cfg.blockOfPc[f.pc];

            ++vm_.stats_.branchesExecuted;
            const std::int16_t layout = f.version->layoutFor(block);
            const bool predicted_taken = (layout == 1);
            if (taken != predicted_taken) {
                vm_.cycles_ += cost.layoutMissPenalty;
                ++vm_.stats_.layoutMisses;
            }
            const cfg::EdgeRef edge{block, taken ? 0u : 1u};
            if (f.version->baselineEdgeInstr) {
                vm_.cycles_ += cost.edgeCounterCost;
                vm_.oneTime_.perMethod[f.method].addEdge(edge);
            }
            edgeTaken(f, edge);
            if (taken) {
                transferTo(f, static_cast<bytecode::Pc>(instr.a));
            } else {
                transferTo(f, f.pc + 1);
            }
            break;
          }
        }
    }
}

std::uint64_t
Machine::runIteration()
{
    const std::uint64_t start = cycles_;
    Interpreter interpreter(*this);
    interpreter.run();
    return cycles_ - start;
}

} // namespace pep::vm
