#ifndef PEP_VM_INLINER_HH
#define PEP_VM_INLINER_HH

/**
 * @file
 * Method inlining for the optimizing compiler. The paper's Section 4.3
 * describes its consequence for profiling: after inlining, multiple
 * IR-level branches may map to one bytecode-level branch, and PEP
 * updates the same taken/not-taken counters for all of them. This
 * module performs the transformation and produces exactly that map.
 *
 * Scope: leaf callees only (no calls of their own), bounded size,
 * non-recursive. A call site is replaced by
 *
 *   1. a prologue that pops the arguments into fresh local slots and
 *      zero-initializes the callee's remaining locals (the semantics
 *      of a fresh frame);
 *   2. the callee body with locals remapped, branch targets offset,
 *      and returns rewritten as gotos to the post-call join (an
 *      ireturn's value is already on the operand stack, which is the
 *      caller's expectation).
 *
 * The result is a self-contained InlinedBody: synthesized code, its
 * CFG and execution tables, a pc map from the root method's original
 * code (used by OSR to transfer a running frame), and per-block origin
 * records (which original method/block each branch came from) used for
 * layout decisions and bytecode-level branch counters.
 */

#include <memory>
#include <vector>

#include "bytecode/method.hh"
#include "vm/machine.hh"

namespace pep::vm {

/** Inlining policy knobs. */
struct InlineOptions
{
    /** Maximum callee code size (instructions) to inline. */
    std::uint32_t maxCalleeSize = 120;

    /** Maximum call sites inlined per method. */
    std::uint32_t maxSites = 8;
};

/** Where an inlined-code block came from. */
struct BlockOrigin
{
    /** Original method; kInvalidMethod for synthesized code. */
    bytecode::MethodId method = kInvalidOriginMethod;

    /** Block in the original method's CFG. */
    cfg::BlockId block = cfg::kInvalidBlock;

    static constexpr bytecode::MethodId kInvalidOriginMethod =
        static_cast<bytecode::MethodId>(-1);

    bool
    valid() const
    {
        return method != kInvalidOriginMethod;
    }
};

/** A compiled method body with calls inlined. */
struct InlinedBody
{
    /** The synthesized method (same name/signature as the root). */
    bytecode::Method method;

    /** CFG and execution tables for the synthesized code. */
    MethodInfo info;

    /** Per synthesized-CFG block: original method/block (valid for
     *  blocks whose terminator instruction came from original code). */
    std::vector<BlockOrigin> blockOrigin;

    /** Map from root-method pc to synthesized pc (for every original
     *  root instruction that survived; the replaced Invoke maps to the
     *  start of its splice). Used by OSR to transfer frames. */
    std::vector<bytecode::Pc> rootPcMap;

    /** Number of call sites inlined. */
    std::uint32_t inlinedSites = 0;
};

/**
 * Inline eligible call sites of `root`. Returns nullptr when nothing
 * was inlined (no eligible sites). The result verifies against the
 * program.
 */
std::unique_ptr<InlinedBody>
inlineLeafCalls(const bytecode::Program &program,
                bytecode::MethodId root, const InlineOptions &options);

} // namespace pep::vm

#endif // PEP_VM_INLINER_HH
