#include "vm/engine.hh"

#include <cstdlib>
#include <string>

#include "support/panic.hh"

namespace pep::vm {

const char *
engineKindName(EngineKind kind)
{
    switch (kind) {
      case EngineKind::Switch:
        return "switch";
      case EngineKind::Threaded:
        return "threaded";
    }
    return "<bad>";
}

bool
parseEngineKind(std::string_view text, EngineKind &out)
{
    if (text == "switch") {
        out = EngineKind::Switch;
        return true;
    }
    if (text == "threaded") {
        out = EngineKind::Threaded;
        return true;
    }
    return false;
}

EngineKind
defaultEngineKind()
{
    static const EngineKind kind = [] {
        const char *env = std::getenv("PEP_ENGINE");
        if (!env || !*env)
            return EngineKind::Switch;
        EngineKind parsed;
        if (!parseEngineKind(env, parsed)) {
            support::fatal(std::string("PEP_ENGINE: unknown engine \"") +
                           env + "\" (expected switch|threaded)");
        }
        return parsed;
    }();
    return kind;
}

const char *
fuseOptionsName(const FuseOptions &fuse)
{
    if (fuse.pairs && fuse.traces)
        return "pairs,traces";
    if (fuse.pairs)
        return "pairs";
    if (fuse.traces)
        return "traces";
    return "none";
}

bool
parseFuseOptions(std::string_view text, FuseOptions &out)
{
    FuseOptions parsed;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t end = text.find(',', start);
        if (end == std::string_view::npos)
            end = text.size();
        const std::string_view token = text.substr(start, end - start);
        if (token == "pairs") {
            parsed.pairs = true;
        } else if (token == "traces") {
            parsed.traces = true;
        } else if (!token.empty() && token != "none") {
            return false;
        }
        if (end == text.size())
            break;
        start = end + 1;
    }
    out = parsed;
    return true;
}

FuseOptions
defaultFuseOptions()
{
    static const FuseOptions fuse = [] {
        const char *env = std::getenv("PEP_FUSE");
        if (!env || !*env)
            return FuseOptions{};
        FuseOptions parsed;
        if (!parseFuseOptions(env, parsed)) {
            support::fatal(std::string("PEP_FUSE: unknown selection \"") +
                           env +
                           "\" (expected none|pairs|traces|pairs,traces)");
        }
        return parsed;
    }();
    return fuse;
}

} // namespace pep::vm
