#include "vm/engine.hh"

#include <cstdlib>
#include <string>

#include "support/panic.hh"

namespace pep::vm {

const char *
engineKindName(EngineKind kind)
{
    switch (kind) {
      case EngineKind::Switch:
        return "switch";
      case EngineKind::Threaded:
        return "threaded";
    }
    return "<bad>";
}

bool
parseEngineKind(std::string_view text, EngineKind &out)
{
    if (text == "switch") {
        out = EngineKind::Switch;
        return true;
    }
    if (text == "threaded") {
        out = EngineKind::Threaded;
        return true;
    }
    return false;
}

EngineKind
defaultEngineKind()
{
    static const EngineKind kind = [] {
        const char *env = std::getenv("PEP_ENGINE");
        if (!env || !*env)
            return EngineKind::Switch;
        EngineKind parsed;
        if (!parseEngineKind(env, parsed)) {
            support::fatal(std::string("PEP_ENGINE: unknown engine \"") +
                           env + "\" (expected switch|threaded)");
        }
        return parsed;
    }();
    return kind;
}

} // namespace pep::vm
