#include "vm/cost_model.hh"

namespace pep::vm {

std::uint32_t
CostModel::instrCost(bytecode::Opcode op) const
{
    using bytecode::Opcode;
    switch (op) {
      case Opcode::Imul:
        return 8;
      case Opcode::Idiv:
      case Opcode::Irem:
        return 24;
      case Opcode::Gload:
      case Opcode::Gstore:
        return 7;
      case Opcode::Invoke:
        return 20;
      case Opcode::Return:
      case Opcode::Ireturn:
        return 10;
      case Opcode::Tableswitch:
        return 9;
      case Opcode::Irnd:
        return 7;
      default:
        return 3;
    }
}

} // namespace pep::vm
