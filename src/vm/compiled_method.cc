#include "vm/compiled_method.hh"

#include "vm/inliner.hh"

namespace pep::vm {

// Out of line so the unique_ptr<InlinedBody> member can live behind a
// forward declaration.
CompiledMethod::CompiledMethod() = default;
CompiledMethod::~CompiledMethod() = default;
CompiledMethod::CompiledMethod(CompiledMethod &&) noexcept = default;
CompiledMethod &
CompiledMethod::operator=(CompiledMethod &&) noexcept = default;

} // namespace pep::vm
