#include "vm/machine.hh"

#include <cmath>

#include "bytecode/verifier.hh"
#include "vm/decoded_method.hh"
#include "vm/inliner.hh"
#include "support/panic.hh"

namespace pep::vm {

MethodInfo
buildMethodInfo(const bytecode::Method &method)
{
    MethodInfo info;
    info.cfg = bytecode::buildCfg(method);
    info.headerLeaderPc.assign(method.code.size(), false);
    info.leaderPc.assign(method.code.size(), false);
    const cfg::Graph &graph = info.cfg.graph;
    for (cfg::BlockId b = 2; b < graph.numBlocks(); ++b) {
        info.leaderPc[info.cfg.firstPc[b]] = true;
        if (info.cfg.isLoopHeader[b])
            info.headerLeaderPc[info.cfg.firstPc[b]] = true;
    }
    info.isBackEdge.resize(graph.numBlocks());
    for (cfg::BlockId b = 0; b < graph.numBlocks(); ++b)
        info.isBackEdge[b].assign(graph.succs(b).size(), false);
    for (const cfg::EdgeRef &back : info.cfg.backEdges)
        info.isBackEdge[back.src][back.index] = true;
    return info;
}

const char *
optLevelName(OptLevel level)
{
    switch (level) {
      case OptLevel::Baseline:
        return "baseline";
      case OptLevel::Opt1:
        return "opt1";
      case OptLevel::Opt2:
        return "opt2";
    }
    return "<bad>";
}

Machine::Machine(const bytecode::Program &program, const SimParams &params)
    : program_(program), params_(params), rng_(params.rngSeed)
{
    const bytecode::VerifyResult verified =
        bytecode::verifyProgram(program_);
    if (!verified.ok) {
        // Report every diagnostic, not just the legacy first-error
        // view: a program with several defects fails with all of them
        // listed.
        std::string message = "program failed verification:";
        for (const bytecode::VerifyDiagnostic &d : verified.diagnostics)
            message += "\n  " + bytecode::formatVerifyDiagnostic(d);
        support::fatal(message);
    }

    const std::size_t n = program_.methods.size();
    infos_.reserve(n);
    for (const bytecode::Method &method : program_.methods)
        infos_.push_back(buildMethodInfo(method));

    versions_.resize(n);
    decoded_.resize(n);
    methodSamples_.assign(n, 0);

    std::vector<const bytecode::MethodCfg *> cfg_refs;
    cfg_refs.reserve(n);
    for (const MethodInfo &info : infos_)
        cfg_refs.push_back(&info.cfg);
    truth_ = profile::EdgeProfileSet(cfg_refs);
    oneTime_ = profile::EdgeProfileSet(cfg_refs);

    globals_.assign(program_.globalSize, 0);
    std::copy(program_.initialGlobals.begin(),
              program_.initialGlobals.end(), globals_.begin());

    nextTickAt_ = params_.tickCycles;
}

Machine::~Machine() = default;

void
Machine::addHooks(ExecutionHooks *hooks)
{
    PEP_ASSERT(hooks);
    hooks_.push_back(hooks);
}

void
Machine::addCompileObserver(CompileObserver *observer)
{
    PEP_ASSERT(observer);
    observers_.push_back(observer);
}

void
Machine::setLayoutSource(LayoutSource *source)
{
    layoutSource_ = source;
}

void
Machine::addCompilePass(CompilePass *pass)
{
    PEP_ASSERT(pass);
    compilePasses_.push_back(pass);
}

void
Machine::setScheduler(ThreadScheduler *scheduler)
{
    scheduler_ = scheduler;
}

support::Rng &
Machine::rngForThread(std::uint32_t thread)
{
    if (thread == 0)
        return rng_;
    const std::uint32_t slot = thread - 1;
    if (threadRngs_.size() <= slot)
        threadRngs_.resize(slot + 1);
    if (!threadRngs_[slot]) {
        // Seed each thread's stream from (rngSeed, thread) through a
        // splitmix pass, so streams are decorrelated but still a pure
        // function of the simulation seed.
        std::uint64_t state =
            params_.rngSeed ^ (0x9e3779b97f4a7c15ull * (thread + 1));
        const std::uint64_t derived = support::splitmix64(state);
        threadRngs_[slot] = std::make_unique<support::Rng>(derived);
    }
    return *threadRngs_[slot];
}

void
Machine::enableReplay(const ReplayAdvice *advice)
{
    PEP_ASSERT(advice);
    PEP_ASSERT_MSG(advice->finalLevel.size() == numMethods(),
                   "advice method count mismatch");
    replay_ = true;
    advice_ = advice;
    // The advice supplies the one-time edge profile the optimizing
    // compiler consults (paper Section 5: advice files carry the edge
    // profile produced by baseline-compiled code).
    oneTime_ = advice->oneTimeEdges;
}

const MethodInfo &
Machine::info(bytecode::MethodId m) const
{
    PEP_ASSERT(m < infos_.size());
    return infos_[m];
}

const CompiledMethod *
Machine::currentVersion(bytecode::MethodId m) const
{
    PEP_ASSERT(m < versions_.size());
    if (versions_[m].empty())
        return nullptr;
    return versions_[m].back().get();
}

CompiledMethod *
Machine::versionForUpdate(bytecode::MethodId m, std::uint32_t version)
{
    PEP_ASSERT(m < versions_.size());
    if (version >= versions_[m].size())
        return nullptr;
    mutationJournal_.push_back({m, version, /*sanitize=*/false});
    return versions_[m][version].get();
}

std::size_t
Machine::numVersions(bytecode::MethodId m) const
{
    PEP_ASSERT(m < versions_.size());
    return versions_[m].size();
}

const CompiledMethod *
Machine::versionAt(bytecode::MethodId m, std::uint32_t version) const
{
    PEP_ASSERT(m < versions_.size());
    if (version >= versions_[m].size())
        return nullptr;
    return versions_[m][version].get();
}

const DecodedMethod *
Machine::cachedDecoded(bytecode::MethodId m, std::uint32_t version) const
{
    PEP_ASSERT(m < decoded_.size());
    if (version >= decoded_[m].size())
        return nullptr;
    return decoded_[m][version].get();
}

ReplayAdvice
Machine::recordAdvice() const
{
    ReplayAdvice advice;
    advice.finalLevel.reserve(numMethods());
    for (std::size_t m = 0; m < numMethods(); ++m) {
        const CompiledMethod *cm = currentVersion(
            static_cast<bytecode::MethodId>(m));
        advice.finalLevel.push_back(cm ? cm->level : OptLevel::Baseline);
    }
    advice.oneTimeEdges = oneTime_;
    return advice;
}

const CompiledMethod &
Machine::compileNow(bytecode::MethodId m, OptLevel level)
{
    return compile(m, level);
}

CompiledMethod &
Machine::compile(bytecode::MethodId m, OptLevel level)
{
    const bytecode::Method &method = program_.methods[m];

    auto cm = std::make_unique<CompiledMethod>();
    cm->method = m;
    cm->version = static_cast<std::uint32_t>(versions_[m].size());
    cm->level = level;

    const CostModel &cost = params_.cost;
    std::uint32_t compile_cost_per_instr = 0;
    switch (level) {
      case OptLevel::Baseline:
        cm->speedMultiplier = cost.baselineMultiplier;
        cm->baselineEdgeInstr = true;
        compile_cost_per_instr = cost.baselineCompileCostPerInstr;
        break;
      case OptLevel::Opt1:
        cm->speedMultiplier = cost.opt1Multiplier;
        compile_cost_per_instr = cost.opt1CompileCostPerInstr;
        break;
      case OptLevel::Opt2:
        cm->speedMultiplier = 1.0;
        compile_cost_per_instr = cost.opt2CompileCostPerInstr;
        break;
    }

    // Optimizing tiers may inline small leaf callees.
    if (level != OptLevel::Baseline && params_.enableInlining) {
        InlineOptions inline_options;
        inline_options.maxCalleeSize = params_.inlineMaxCalleeSize;
        inline_options.maxSites = params_.inlineMaxSites;
        cm->inlinedBody = inlineLeafCalls(program_, m, inline_options);
    }

    cm->scaledCost.resize(bytecode::kNumOpcodes);
    for (std::size_t op = 0; op < bytecode::kNumOpcodes; ++op) {
        const auto base =
            cost.instrCost(static_cast<bytecode::Opcode>(op));
        cm->scaledCost[op] = static_cast<std::uint32_t>(
            std::llround(base * cm->speedMultiplier));
    }

    const bytecode::MethodCfg &version_cfg =
        cm->inlinedBody ? cm->inlinedBody->info.cfg : infos_[m].cfg;
    cm->branchLayout.assign(version_cfg.graph.numBlocks(), -1);
    if (level != OptLevel::Baseline)
        applyLayout(*cm);

    // Charge compilation time.
    const std::uint64_t compile_cycles =
        static_cast<std::uint64_t>(compile_cost_per_instr) *
        method.code.size();
    cycles_ += compile_cycles;
    stats_.compileCycles += compile_cycles;
    ++stats_.compiles;

    versions_[m].push_back(std::move(cm));
    CompiledMethod &result = *versions_[m].back();

    // Compiler passes (src/opt/) transform the installed version
    // before anyone observes or translates it; the template rule
    // holds for their changes by construction (see CompilePass).
    if (level != OptLevel::Baseline) {
        for (CompilePass *pass : compilePasses_)
            pass->run(*this, result);
    }

    compileJournal_.push_back(
        {m, result.version, level, result.cloneApplied});

    // Let profilers instrument opt-tier code (they charge their own
    // pass cost).
    if (level != OptLevel::Baseline) {
        for (CompileObserver *observer : observers_)
            observer->onCompile(m, result);
    }

    // Threaded engine: translate at install time so invocation and OSR
    // never hit the lazy path mid-run.
    if (params_.engine == EngineKind::Threaded)
        decodedFor(result);
    return result;
}

const DecodedMethod &
Machine::decodedFor(const CompiledMethod &cm)
{
    PEP_ASSERT(cm.method < decoded_.size());
    std::vector<std::unique_ptr<DecodedMethod>> &slots =
        decoded_[cm.method];
    if (slots.size() <= cm.version)
        slots.resize(cm.version + 1);
    std::unique_ptr<DecodedMethod> &slot = slots[cm.version];
    // The cache is keyed on the full translation-option tuple: a stream
    // translated under a different fusion selection is a miss, not a
    // hit — otherwise flipping PEP_FUSE mid-process (tests, differ
    // sweeps, setFuseOptions) would execute templates from the wrong
    // mode.
    if (slot && slot->fuse != params_.fuse) {
        slot.reset();
        ++stats_.templateInvalidations;
    }
    if (!slot) {
        const bytecode::Method &code =
            cm.inlinedBody ? cm.inlinedBody->method
                           : program_.methods[cm.method];
        const MethodInfo &info =
            cm.inlinedBody ? cm.inlinedBody->info : infos_[cm.method];
        slot = std::make_unique<DecodedMethod>(
            translateMethod(code, info, cm, params_.fuse));
        ++stats_.methodsDecoded;
    }
    return *slot;
}

void
Machine::invalidateDecoded(bytecode::MethodId m, std::uint32_t version)
{
    PEP_ASSERT(m < decoded_.size());
    // Journal unconditionally: the call discharges the escape's
    // invalidation obligation whether or not a stream was cached.
    mutationJournal_.push_back({m, version, /*sanitize=*/true});
    if (version < decoded_[m].size() && decoded_[m][version]) {
        decoded_[m][version].reset();
        ++stats_.templateInvalidations;
    }
}

void
Machine::applyLayout(CompiledMethod &cm)
{
    const bytecode::MethodCfg &method_cfg =
        cm.inlinedBody ? cm.inlinedBody->info.cfg
                       : infos_[cm.method].cfg;

    // Profiles are kept per bytecode-level branch of the *original*
    // methods; inlined blocks reach them through their origin records
    // (Section 4.3: several compiled branches may share one
    // bytecode-level branch's counters).
    auto profile_for =
        [&](bytecode::MethodId m) -> const profile::MethodEdgeProfile * {
        if (layoutSource_)
            return layoutSource_->layoutProfile(m);
        const profile::MethodEdgeProfile &one_time = oneTime_.perMethod[m];
        return one_time.totalCount() > 0 ? &one_time : nullptr;
    };
    auto origin_of = [&](cfg::BlockId b) {
        if (cm.inlinedBody)
            return cm.inlinedBody->blockOrigin[b];
        return BlockOrigin{cm.method, b};
    };

    const cfg::Graph &graph = method_cfg.graph;
    for (cfg::BlockId b = 0; b < graph.numBlocks(); ++b) {
        const auto kind = method_cfg.terminator[b];
        if (kind != bytecode::TerminatorKind::Cond &&
            kind != bytecode::TerminatorKind::Switch) {
            continue;
        }
        const BlockOrigin origin = origin_of(b);
        if (!origin.valid())
            continue;
        const profile::MethodEdgeProfile *profile =
            profile_for(origin.method);
        if (!profile)
            continue;
        if (kind == bytecode::TerminatorKind::Cond) {
            const profile::BranchCounts counts =
                profile->branch(origin.block);
            if (counts.total() == 0)
                continue;
            cm.branchLayout[b] = counts.taken > counts.notTaken ? 1 : 0;
        } else {
            // Lay out for the hottest successor.
            std::uint64_t best = 0;
            std::int16_t best_idx = -1;
            const auto &edge_counts = profile->counts()[origin.block];
            for (std::size_t i = 0; i < edge_counts.size(); ++i) {
                if (edge_counts[i] > best) {
                    best = edge_counts[i];
                    best_idx = static_cast<std::int16_t>(i);
                }
            }
            cm.branchLayout[b] = best_idx;
        }
    }
}

void
Machine::methodSample(bytecode::MethodId m)
{
    if (replay_)
        return;
    ++methodSamples_[m];
}

OptLevel
Machine::targetLevel(bytecode::MethodId m) const
{
    if (replay_)
        return advice_->finalLevel[m];
    const std::uint32_t samples = methodSamples_[m];
    if (samples >= params_.opt2SampleThreshold)
        return OptLevel::Opt2;
    if (samples >= params_.opt1SampleThreshold)
        return OptLevel::Opt1;
    return OptLevel::Baseline;
}

} // namespace pep::vm
