#ifndef PEP_VM_COST_MODEL_HH
#define PEP_VM_COST_MODEL_HH

/**
 * @file
 * The deterministic cycle cost model that stands in for real hardware
 * timing. All overhead results are ratios of simulated cycles, so what
 * matters is the *relative* cost of base work, instrumentation work,
 * and sampling work.
 *
 * Scaling note: the paper's timer tick is ~20 ms (~64M cycles at
 * 3.2 GHz) and its yieldpoint handler costs on the order of a thousand
 * cycles, i.e. handler/tick is about 1e-5. Simulating 64M-cycle ticks is
 * infeasible, so we shrink the tick (default 400k cycles) and scale the
 * handler costs by the same factor, preserving the sampling-overhead
 * ratios the paper reports (PEP(64,17) adds ~0.1%; denser configs add
 * 0.8-2.3%). Instrumentation costs (path-register adds, hash-table path
 * stores, edge counters) are per-event and unaffected by tick scaling.
 */

#include <cstdint>

#include "bytecode/instr.hh"

namespace pep::vm {

/** Cycle costs of simulated execution. */
struct CostModel
{
    // ---- Base program work -------------------------------------------
    /** Cost of one bytecode instruction in optimized code. */
    std::uint32_t instrCost(bytecode::Opcode op) const;

    /** Extra cycles when a conditional/switch goes against the compiled
     *  code layout (mispredicted direction / taken jump off the fall
     *  through path). Models the profile sensitivity of Pettis-Hansen
     *  style layout. */
    std::uint32_t layoutMissPenalty = 8;

    /** Modeled i-cache refill for a hot edge that leaves its source
     *  block's chain, used by the chain-layout pass's *static* scorer
     *  (src/opt/chain_layout.hh) to compare candidate block orders.
     *  The interpreter never charges this: runtime cycles realize a
     *  layout exclusively through layoutMissPenalty. */
    std::uint32_t icacheBreakPenalty = 24;

    /** Yieldpoint flag check; present in ALL code (base and PEP), so it
     *  never shows up as instrumentation overhead. */
    std::uint32_t yieldpointCheckCost = 1;

    // ---- Compiler tiers ----------------------------------------------
    /** Slowdown of baseline-compiled code relative to full opt. */
    double baselineMultiplier = 2.6;

    /** Slowdown of first-level opt code relative to full opt. */
    double opt1Multiplier = 1.12;

    /** Compile cost per bytecode instruction, by tier. */
    std::uint32_t baselineCompileCostPerInstr = 25;
    std::uint32_t opt1CompileCostPerInstr = 220;
    std::uint32_t opt2CompileCostPerInstr = 550;

    /** Fractional extra opt-compile time for PEP's three quick passes
     *  (P-DAG build, smart numbering, instrumentation insertion). */
    double pepCompilePassOverhead = 0.20;

    // ---- Instrumentation ---------------------------------------------
    /** r += val on an edge (charged only when val != 0). */
    std::uint32_t pathRegAddCost = 1;

    /** r = restart at a path end (header/back edge). */
    std::uint32_t pathRegResetCost = 2;

    /** count[r]++ as a hash call — what the paper's perfect path
     *  profiler inserts at every yieldpoint (Section 5.1: 92% average
     *  overhead). The expensive step PEP avoids by sampling. */
    std::uint32_t pathStoreHashCost = 180;

    /** count[r]++ as an array load-increment-store — classic BLPP's
     *  cheaper store (Section 3.1: 31% average overhead). */
    std::uint32_t pathStoreArrayCost = 72;

    /** Baseline edge instrumentation: taken/not-taken counter update. */
    std::uint32_t edgeCounterCost = 8;

    // ---- Sampling (scaled with the tick; see file comment) ------------
    /** Yieldpoint handler invocation that records a sample. */
    std::uint32_t sampleHandlerCost = 55;

    /** Handler invocation that strides over (skips) a sample; nearly as
     *  expensive as taking one (Section 4.4 observation). */
    std::uint32_t strideHandlerCost = 48;

    /** First handler activation of a timer tick (context examination). */
    std::uint32_t tickHandlerCost = 325;

    /** On-stack replacement transition (frame state rewrite), on top
     *  of the new version's compile cost. */
    std::uint32_t osrTransitionCost = 300;
};

} // namespace pep::vm

#endif // PEP_VM_COST_MODEL_HH
