#ifndef PEP_VM_MACHINE_HH
#define PEP_VM_MACHINE_HH

/**
 * @file
 * The virtual machine: loads a verified program, owns per-method CFGs
 * and compiled versions, charges simulated cycles, fires timer ticks,
 * drives adaptive or replay compilation, and runs the interpreter.
 *
 * Methodology support mirrors the paper (Section 5):
 *  - *adaptive*: methods start at Baseline (slow, with one-time edge
 *    instrumentation); timer-tick method samples at yieldpoints promote
 *    hot methods to Opt1 then Opt2, applied at the method's next
 *    invocation.
 *  - *replay*: an advice recording from a previous adaptive run fixes
 *    each method's final optimization level and supplies the recorded
 *    one-time edge profile; each method is compiled at its final level
 *    on first invocation. Iteration 1 of a replay run includes compile
 *    cost (paper Figure 7); iteration 2 measures execution only
 *    (Figures 6, 8-10).
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "bytecode/cfg_builder.hh"
#include "bytecode/method.hh"
#include "profile/edge_profile.hh"
#include "support/rng.hh"
#include "vm/call_graph.hh"
#include "vm/compiled_method.hh"
#include "vm/cost_model.hh"
#include "vm/engine.hh"
#include "vm/hooks.hh"

namespace pep::vm {

struct DecodedMethod;

/** Simulation parameters. */
struct SimParams
{
    CostModel cost;

    /**
     * Execution engine (docs/ENGINE.md). Defaults from the PEP_ENGINE
     * environment variable so the suite can be swept under either
     * backend; both produce byte-identical observable behaviour.
     */
    EngineKind engine = defaultEngineKind();

    /**
     * Template-fusion selection for the threaded engine
     * (docs/ENGINE.md). Defaults from PEP_FUSE; purely a translation
     * choice — observables stay byte-identical across the full
     * PEP_ENGINE x PEP_FUSE matrix. Cached template streams are keyed
     * on this tuple (decodedFor), so changing it mid-run is safe.
     */
    FuseOptions fuse = defaultFuseOptions();

    /** Timer tick period in cycles (the paper's ~20 ms interrupt). */
    std::uint64_t tickCycles = 2'500'000;

    /** Method samples before promotion to Opt1 / Opt2 (adaptive). */
    std::uint32_t opt1SampleThreshold = 3;
    std::uint32_t opt2SampleThreshold = 8;

    /**
     * On-stack replacement: when a tick finds a frame whose method has
     * a pending promotion, recompile and switch the frame at the next
     * loop-header yieldpoint instead of waiting for the next
     * invocation (Jikes RVM does this; off by default to match the
     * paper's description of recompilation).
     */
    bool enableOsr = false;

    /**
     * Place loop yieldpoints on back edges instead of loop headers —
     * the alternative the paper mentions in Section 3.2 ("We could
     * avoid this difference by modifying Jikes RVM to place
     * yieldpoints on back edges rather than headers"). Profilers that
     * sample at yieldpoints should then use
     * profile::DagMode::BackEdgeTruncate.
     */
    bool yieldpointsOnBackEdges = false;

    /**
     * Inline small leaf callees when compiling at optimizing tiers.
     * After inlining, several compiled branches map to one
     * bytecode-level branch; profiles use the shared counters
     * (Section 4.3). Off by default, like the paper's configuration.
     */
    bool enableInlining = false;
    std::uint32_t inlineMaxCalleeSize = 120;
    std::uint32_t inlineMaxSites = 8;

    /** Maximum interpreter call depth before fatal(). */
    std::uint32_t maxCallDepth = 4000;

    /** Cycle budget per iteration before fatal() (runaway guard). */
    std::uint64_t maxCyclesPerIteration = 50'000'000'000ull;

    /** Seed of the Irnd instruction's stream. */
    std::uint64_t rngSeed = 0x5eed;
};

/** Recorded compilation decisions for replay (paper's advice files). */
struct ReplayAdvice
{
    /** Final optimization level of each method. */
    std::vector<OptLevel> finalLevel;

    /** The one-time edge profile recorded from baseline code. */
    profile::EdgeProfileSet oneTimeEdges;
};

/**
 * Supplies the edge profile used for layout decisions when a method is
 * (re)compiled at an optimizing level. The default source is the VM's
 * one-time baseline profile; benchmarks substitute perfect-continuous,
 * flipped, or PEP-continuous sources (Figures 10-11).
 */
class LayoutSource
{
  public:
    virtual ~LayoutSource() = default;

    /** Profile for the method, or nullptr for "no information". */
    virtual const profile::MethodEdgeProfile *
    layoutProfile(bytecode::MethodId method) = 0;
};

class Machine;

/**
 * A compiler pass over a freshly compiled optimizing-tier version
 * (src/opt/ implements the real ones). Passes run inside
 * Machine::compile() after the built-in layout predictor and *before*
 * compile observers and template translation, so whatever they change
 * — branchLayout, a cloned inlinedBody — is part of the version the
 * engines execute from the first instruction. The template rule holds
 * by construction: nothing was decoded yet, so no invalidateDecoded()
 * is owed for pass-made changes.
 */
class CompilePass
{
  public:
    virtual ~CompilePass() = default;

    /** Transform one freshly compiled version in place. */
    virtual void run(Machine &machine, CompiledMethod &cm) = 0;
};

/** Static, per-method data the VM derives once at load time. */
struct MethodInfo
{
    bytecode::MethodCfg cfg;

    /** Per pc: true if it is the first pc of a loop-header block. */
    std::vector<bool> headerLeaderPc;

    /** Per pc: true if it is the first pc of any block. */
    std::vector<bool> leaderPc;

    /** Per CFG edge, parallel to successor lists: true for back
     *  (retreating) edges. */
    std::vector<std::vector<bool>> isBackEdge;
};

/** Build the execution tables for one method (CFG, leader/header pc
 *  maps, back-edge marks). Used for loaded methods, inlined bodies,
 *  and standalone analysis of synthesized code. */
MethodInfo buildMethodInfo(const bytecode::Method &method);

/**
 * One entry of the plan-mutation journal. versionForUpdate() hands out
 * mutable access to an installed version (an *escape*: from that point
 * the caller may mutate state the threaded engine bakes into
 * templates); invalidateDecoded() re-establishes the template
 * invariant for the version (a *sanitize*). The invariant-escape audit
 * (analysis/verify/invariants.hh) proves every escape is eventually
 * followed by a matching sanitize.
 */
struct PlanMutationEvent
{
    bytecode::MethodId method = 0;
    std::uint32_t version = 0;

    /** False for an escape, true for a sanitize. */
    bool sanitize = false;
};

/**
 * One entry of the compile journal: every version the compiler ever
 * produced, in order, with whether the path-cloning pass synthesized
 * its body. The clone audit (analysis/verify/invariants.hh) proves
 * every clone-applied version on record was really produced by
 * compile() — a cloned body that appeared through any other door
 * (e.g. in-place mutation) bypassed the pass pipeline and the
 * template rule it guarantees.
 */
struct CompileEvent
{
    bytecode::MethodId method = 0;
    std::uint32_t version = 0;
    OptLevel level = OptLevel::Baseline;

    /** True if the cloning pass ran on this version. */
    bool cloneApplied = false;
};

/** Counters the benchmarks read after a run. */
struct MachineStats
{
    std::uint64_t instructionsExecuted = 0;
    std::uint64_t methodInvocations = 0;
    std::uint64_t yieldpointsExecuted = 0;
    std::uint64_t timerTicks = 0;
    std::uint64_t compileCycles = 0;
    std::uint64_t compiles = 0;
    std::uint64_t osrs = 0;
    std::uint64_t layoutMisses = 0;
    std::uint64_t branchesExecuted = 0;

    /** Threaded engine: versions translated into template streams, and
     *  streams invalidated after a plan mutation (docs/ENGINE.md). */
    std::uint64_t methodsDecoded = 0;
    std::uint64_t templateInvalidations = 0;
};

/** The virtual machine. */
class Machine
{
  public:
    /**
     * Load a program (a private copy is taken and verified; fatal if
     * verification fails) and precompute CFGs.
     */
    Machine(const bytecode::Program &program, const SimParams &params);

    ~Machine();

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    // ---- Configuration (set before the first iteration) --------------

    /** Attach profiler hooks (not owned; may add several). */
    void addHooks(ExecutionHooks *hooks);

    /** Attach a compile observer (not owned). */
    void addCompileObserver(CompileObserver *observer);

    /** Override the layout profile source (not owned). */
    void setLayoutSource(LayoutSource *source);

    /**
     * Register a compiler pass (not owned; may add several, run in
     * registration order). Passes run on every optimizing-tier compile
     * from then on — see CompilePass for the ordering contract.
     */
    void addCompilePass(CompilePass *pass);

    /**
     * Attach a cooperative thread scheduler (not owned; nullptr
     * detaches). Interpreters consult it at yieldpoints and return
     * from resume() when it requests a switch.
     */
    void setScheduler(ThreadScheduler *scheduler);

    ThreadScheduler *scheduler() const { return scheduler_; }

    /**
     * Enable replay compilation with the given advice (not owned; must
     * outlive the machine). Disables adaptive promotion.
     */
    void enableReplay(const ReplayAdvice *advice);

    // ---- Running ------------------------------------------------------

    /**
     * Run main() once; returns cycles elapsed during this iteration
     * (including any compilation it triggered).
     */
    std::uint64_t runIteration();

    // ---- Queries ------------------------------------------------------

    const bytecode::Program &program() const { return program_; }
    std::size_t numMethods() const { return program_.methods.size(); }
    const MethodInfo &info(bytecode::MethodId m) const;
    const SimParams &params() const { return params_; }
    const MachineStats &stats() const { return stats_; }

    /** Ground-truth edge counts (observed at zero simulated cost). */
    const profile::EdgeProfileSet &truthEdges() const { return truth_; }

    /** One-time edge profile collected by baseline-compiled code. */
    const profile::EdgeProfileSet &
    oneTimeEdges() const
    {
        return oneTime_;
    }

    /** Ground-truth dynamic call graph (every Invoke, zero cost). */
    const CallGraph &truthCalls() const { return truthCalls_; }

    /** Call graph sampled at timer ticks (the Jikes adaptive system's
     *  Arnold-Grove-style dynamic call graph). */
    const CallGraph &sampledCalls() const { return sampledCalls_; }

    /** Reset ground-truth counts and collected call graphs (e.g.,
     *  between replay iterations). */
    void
    clearTruth()
    {
        truth_.clear();
        truthCalls_.clear();
        sampledCalls_.clear();
    }

    /** Latest compiled version of a method (nullptr if never run). */
    const CompiledMethod *currentVersion(bytecode::MethodId m) const;

    /**
     * Mutable access to an installed version, for in-place plan
     * mutations (relayout experiments, fault injection). Any change to
     * state the threaded engine bakes into templates MUST be followed
     * by invalidateDecoded() — see docs/ENGINE.md. Returns nullptr if
     * the version was never compiled.
     */
    CompiledMethod *versionForUpdate(bytecode::MethodId m,
                                     std::uint32_t version);

    /** Record advice from a completed adaptive run (Section 5). */
    ReplayAdvice recordAdvice() const;

    /** The program's mutable global array (persists across
     *  iterations, like heap state across the paper's replay
     *  iterations). */
    const std::vector<std::int32_t> &globals() const { return globals_; }

    /** Current simulated time in cycles. */
    std::uint64_t now() const { return cycles_; }

    /** Charge simulated cycles (profiler hooks use this). */
    void chargeCycles(std::uint64_t n) { cycles_ += n; }

    /**
     * The Irnd stream of a virtual mutator thread. Thread 0 is the
     * machine's original stream (seeded by SimParams::rngSeed), so
     * single-threaded runs behave exactly as before; further threads
     * get independent streams derived from the seed and the thread id,
     * which is what makes a thread's control flow independent of how
     * the scheduler interleaves it with others.
     */
    support::Rng &rngForThread(std::uint32_t thread);

    /**
     * Force-compile a method at a level now (used by tests; normal
     * compilation happens lazily at invocation).
     */
    const CompiledMethod &compileNow(bytecode::MethodId m,
                                     OptLevel level);

    // ---- Threaded engine (docs/ENGINE.md) -----------------------------

    /**
     * The template stream of a compiled version, translating on first
     * use (compile() translates eagerly under EngineKind::Threaded, so
     * this is a cache hit on the hot path). Translation charges no
     * simulated cycles — the stream is a harness artifact, and both
     * engines must report identical cycle counts.
     */
    const DecodedMethod &decodedFor(const CompiledMethod &cm);

    /**
     * Switch the fusion selection mid-run. Takes effect at the next
     * decodedFor(): cached streams carry the tuple they were
     * translated under, and decodedFor() retranslates any stream whose
     * tuple no longer matches — so a stale fused stream can never be
     * executed after the switch (the cross-mode cache-pollution
     * regression in tests/vm/fusion_test.cc pins this down).
     */
    void setFuseOptions(const FuseOptions &fuse) { params_.fuse = fuse; }

    /**
     * Drop the cached template stream of one version. REQUIRED after
     * any in-place mutation of an installed version's plan (e.g.
     * relayout); a forgotten invalidation leaves the threaded engine
     * executing stale templates — the fuzzer's `stale-template`
     * injection proves that fails loudly.
     */
    void invalidateDecoded(bytecode::MethodId m, std::uint32_t version);

    // ---- Verification support (analysis/verify, docs/ANALYSIS.md) -----

    /** Number of versions ever compiled for a method. */
    std::size_t numVersions(bytecode::MethodId m) const;

    /** A compiled version by number (nullptr if out of range). */
    const CompiledMethod *versionAt(bytecode::MethodId m,
                                    std::uint32_t version) const;

    /**
     * The cached template stream of a version — unlike decodedFor()
     * this never translates on a miss, so an auditor can distinguish
     * "no stream cached" (nullptr; nothing stale to execute) from a
     * cached stream that must match a fresh translation.
     */
    const DecodedMethod *cachedDecoded(bytecode::MethodId m,
                                       std::uint32_t version) const;

    /** Every escape/sanitize event since construction, in order. */
    const std::vector<PlanMutationEvent> &
    mutationJournal() const
    {
        return mutationJournal_;
    }

    /** Every compile since construction, in order. */
    const std::vector<CompileEvent> &
    compileJournal() const
    {
        return compileJournal_;
    }

  private:
    friend class Interpreter;

    /** Compile (or recompile) a method; charges compile cycles. */
    CompiledMethod &compile(bytecode::MethodId m, OptLevel level);

    /** Compute the branch layout for an opt compile. */
    void applyLayout(CompiledMethod &cm);

    /** Adaptive: take a method sample and maybe schedule promotion. */
    void methodSample(bytecode::MethodId m);

    /** Level the method should be (re)compiled at on next invocation,
     *  or current level if no change is pending. */
    OptLevel targetLevel(bytecode::MethodId m) const;

    bytecode::Program program_;
    SimParams params_;

    std::vector<MethodInfo> infos_;

    /** All versions ever compiled, per method (old frames may still
     *  reference superseded versions). */
    std::vector<std::vector<std::unique_ptr<CompiledMethod>>> versions_;

    /** Template streams, parallel to versions_ (null until translated
     *  or after invalidation; see decodedFor). */
    std::vector<std::vector<std::unique_ptr<DecodedMethod>>> decoded_;

    /** Adaptive state. */
    std::vector<std::uint32_t> methodSamples_;
    bool replay_ = false;
    const ReplayAdvice *advice_ = nullptr;

    /** Profiles. */
    profile::EdgeProfileSet truth_;
    profile::EdgeProfileSet oneTime_;
    CallGraph truthCalls_;
    CallGraph sampledCalls_;

    /** Attached components (not owned). */
    std::vector<ExecutionHooks *> hooks_;
    std::vector<CompileObserver *> observers_;
    std::vector<CompilePass *> compilePasses_;
    LayoutSource *layoutSource_ = nullptr;
    ThreadScheduler *scheduler_ = nullptr;

    /** Clock and timer. */
    std::uint64_t cycles_ = 0;
    std::uint64_t nextTickAt_ = 0;

    MachineStats stats_;
    support::Rng rng_;

    /** In-place plan mutation journal (see PlanMutationEvent). */
    std::vector<PlanMutationEvent> mutationJournal_;

    /** Compile journal (see CompileEvent). */
    std::vector<CompileEvent> compileJournal_;

    /** Irnd streams of virtual threads >= 1, created on first use. */
    std::vector<std::unique_ptr<support::Rng>> threadRngs_;

    std::vector<std::int32_t> globals_;
};

} // namespace pep::vm

#endif // PEP_VM_MACHINE_HH
