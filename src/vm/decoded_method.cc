#include "vm/decoded_method.hh"

#include "vm/compiled_method.hh"
#include "vm/machine.hh"

#include "support/panic.hh"

namespace pep::vm {

namespace {

/** Segment-leader pcs: block leaders plus post-Invoke resume points
 *  (pc 0 is always a leader — it starts the first segment). */
std::vector<bool>
segmentLeaders(const bytecode::Method &code, const MethodInfo &info)
{
    std::vector<bool> leader(code.code.size(), false);
    if (!leader.empty())
        leader[0] = true;
    for (bytecode::Pc pc = 0; pc < code.code.size(); ++pc) {
        if (info.leaderPc[pc])
            leader[pc] = true;
        if (code.code[pc].op == bytecode::Opcode::Invoke &&
            pc + 1 < code.code.size()) {
            leader[pc + 1] = true;
        }
    }
    return leader;
}

} // namespace

DecodedMethod
translateMethod(const bytecode::Method &code, const MethodInfo &info,
                const CompiledMethod &cm)
{
    using bytecode::Opcode;

    DecodedMethod dm;
    dm.source = &cm;
    dm.code = &code;
    dm.info = &info;

    const cfg::Graph &graph = info.cfg.graph;
    dm.edgeBase.resize(graph.numBlocks() + 1);
    std::uint32_t next_edge = 0;
    for (cfg::BlockId b = 0; b < graph.numBlocks(); ++b) {
        dm.edgeBase[b] = next_edge;
        next_edge += static_cast<std::uint32_t>(graph.succs(b).size());
    }
    dm.edgeBase.back() = next_edge;

    const std::size_t n = code.code.size();
    const std::vector<bool> seg_leader = segmentLeaders(code, info);
    dm.pcToTemplate.assign(n, 0);
    dm.stream.reserve(n + n / 4);

    const auto is_header = [&](bytecode::Pc pc) {
        return info.headerLeaderPc[pc] ? std::uint8_t{1} : std::uint8_t{0};
    };

    // Pass 1: emit templates in pc order (injecting a FallEdge after
    // each fall-through block end), folding segment cost sums onto the
    // segment leader's template.
    std::uint32_t seg_tpl = 0;
    for (bytecode::Pc pc = 0; pc < n; ++pc) {
        const bytecode::Instr &instr = code.code[pc];
        const auto op_index = static_cast<std::size_t>(instr.op);
        const cfg::BlockId block = info.cfg.blockOfPc[pc];

        Template t;
        t.op = static_cast<std::uint8_t>(instr.op);
        t.pc = pc;
        t.block = block;
        t.flatBase = dm.edgeBase[block];
        t.a = instr.a;
        t.b = instr.b;
        t.layout = cm.layoutFor(block);
        if (cm.baselineEdgeInstr)
            t.flags |= kTplBaselineEdge;

        const std::uint32_t tpl =
            static_cast<std::uint32_t>(dm.stream.size());
        dm.pcToTemplate[pc] = tpl;
        if (seg_leader[pc])
            seg_tpl = tpl;

        switch (instr.op) {
          case Opcode::Goto:
            t.takenPc = static_cast<bytecode::Pc>(instr.a);
            t.takenBlock = info.cfg.blockOfPc[t.takenPc];
            if (is_header(t.takenPc))
                t.flags |= kTplTakenHeader;
            break;
          case Opcode::Tableswitch: {
            t.swFirst =
                static_cast<std::uint32_t>(dm.switchCases.size());
            t.swCount = static_cast<std::uint32_t>(instr.table.size());
            for (std::size_t i = 0; i <= instr.table.size(); ++i) {
                // Cases 0..k-1, then the default entry.
                const auto target = static_cast<bytecode::Pc>(
                    i < instr.table.size() ? instr.table[i] : instr.b);
                SwitchCase sc;
                sc.pc = target;
                sc.block = info.cfg.blockOfPc[target];
                sc.isHeader = is_header(target);
                dm.switchCases.push_back(sc);
            }
            break;
          }
          case Opcode::Invoke:
            PEP_ASSERT_MSG(pc + 1 < n,
                           "Invoke at method end has no resume point");
            t.fallPc = pc + 1;
            if (info.leaderPc[pc + 1]) {
                t.flags |= kTplEndsBlock;
                t.fallBlock = info.cfg.blockOfPc[pc + 1];
                if (is_header(pc + 1))
                    t.flags |= kTplFallHeader;
            }
            break;
          case Opcode::Return:
          case Opcode::Ireturn:
            break;
          default:
            if (bytecode::isCondBranch(instr.op)) {
                t.takenPc = static_cast<bytecode::Pc>(instr.a);
                t.takenBlock = info.cfg.blockOfPc[t.takenPc];
                if (is_header(t.takenPc))
                    t.flags |= kTplTakenHeader;
                t.fallPc = pc + 1;
                PEP_ASSERT(pc + 1 < n);
                t.fallBlock = info.cfg.blockOfPc[pc + 1];
                if (is_header(pc + 1))
                    t.flags |= kTplFallHeader;
            }
            break;
        }
        dm.stream.push_back(t);

        // Fold this instruction into its segment's charge.
        PEP_ASSERT(op_index < cm.scaledCost.size());
        const std::uint64_t folded =
            static_cast<std::uint64_t>(dm.stream[seg_tpl].cost) +
            cm.scaledCost[op_index];
        PEP_ASSERT_MSG(folded <= UINT32_MAX, "segment cost overflow");
        dm.stream[seg_tpl].cost = static_cast<std::uint32_t>(folded);
        dm.stream[seg_tpl].ninstr += 1;

        // Inject the fall-through block-end boundary: a non-terminator,
        // non-Invoke instruction whose successor pc starts a new block
        // takes the block's single CFG edge and transfers.
        const bool falls_into_leader = !bytecode::isTerminator(instr.op) &&
                                       instr.op != Opcode::Invoke &&
                                       pc + 1 < n && info.leaderPc[pc + 1];
        if (falls_into_leader) {
            Template fe;
            fe.op = kTopFallEdge;
            fe.pc = pc;
            fe.block = block;
            fe.flatBase = dm.edgeBase[block];
            fe.fallPc = pc + 1;
            fe.fallBlock = info.cfg.blockOfPc[pc + 1];
            if (is_header(pc + 1))
                fe.flags |= kTplFallHeader;
            dm.stream.push_back(fe);
        } else if (!bytecode::isTerminator(instr.op) &&
                   instr.op != Opcode::Invoke) {
            PEP_ASSERT_MSG(pc + 1 < n,
                           "control falls off the end of the method");
        }
    }

    // Pass 2: resolve control-transfer targets to template indices.
    for (Template &t : dm.stream) {
        switch (t.op) {
          case static_cast<std::uint8_t>(Opcode::Goto):
            t.taken = dm.pcToTemplate[t.takenPc];
            break;
          case static_cast<std::uint8_t>(Opcode::Invoke):
          case kTopFallEdge:
            t.fall = dm.pcToTemplate[t.fallPc];
            break;
          default:
            if (bytecode::isCondBranch(
                    static_cast<Opcode>(t.op))) {
                t.taken = dm.pcToTemplate[t.takenPc];
                t.fall = dm.pcToTemplate[t.fallPc];
            }
            break;
        }
    }
    for (SwitchCase &sc : dm.switchCases)
        sc.tpl = dm.pcToTemplate[sc.pc];

    return dm;
}

} // namespace pep::vm
