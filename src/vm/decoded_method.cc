#include "vm/decoded_method.hh"

#include "vm/compiled_method.hh"
#include "vm/machine.hh"

#include "support/panic.hh"

namespace pep::vm {

namespace {

/** Segment-leader pcs: block leaders plus post-Invoke resume points
 *  (pc 0 is always a leader — it starts the first segment). */
std::vector<bool>
segmentLeaders(const bytecode::Method &code, const MethodInfo &info)
{
    std::vector<bool> leader(code.code.size(), false);
    if (!leader.empty())
        leader[0] = true;
    for (bytecode::Pc pc = 0; pc < code.code.size(); ++pc) {
        if (info.leaderPc[pc])
            leader[pc] = true;
        if (code.code[pc].op == bytecode::Opcode::Invoke &&
            pc + 1 < code.code.size()) {
            leader[pc + 1] = true;
        }
    }
    return leader;
}

std::uint8_t
raw(bytecode::Opcode op)
{
    return static_cast<std::uint8_t>(op);
}

/** Longest run of blocks straightened into one trace. */
constexpr std::size_t kMaxTraceBlocks = 16;

} // namespace

bool
isFusibleArith(bytecode::Opcode op)
{
    return op >= bytecode::Opcode::Iadd && op <= bytecode::Opcode::Ishr;
}

bool
isZeroBranch(bytecode::Opcode op)
{
    return op >= bytecode::Opcode::Ifeq && op <= bytecode::Opcode::Ifle;
}

FusionMatch
matchFusion(const bytecode::Method &code, bytecode::Pc pc)
{
    using bytecode::Opcode;
    const auto n = static_cast<bytecode::Pc>(code.code.size());
    const Opcode op0 = code.code[pc].op;

    // Triples first (so selection is deterministic and greedy-longest).
    if (op0 == Opcode::Iload && pc + 2 < n) {
        const Opcode op1 = code.code[pc + 1].op;
        const Opcode op2 = code.code[pc + 2].op;
        if (op1 == Opcode::Iload) {
            if (isFusibleArith(op2)) {
                return {static_cast<std::uint8_t>(
                            kTopLoadLoadArithBase +
                            (raw(op2) - raw(Opcode::Iadd))),
                        3, raw(op2)};
            }
            if (bytecode::isCmpBranch(op2)) {
                return {static_cast<std::uint8_t>(
                            kTopLoadLoadCmpBrBase +
                            (raw(op2) - raw(Opcode::IfIcmpeq))),
                        3, raw(op2)};
            }
        }
        if (op1 == Opcode::Iconst) {
            if (isFusibleArith(op2)) {
                return {static_cast<std::uint8_t>(
                            kTopLoadConstArithBase +
                            (raw(op2) - raw(Opcode::Iadd))),
                        3, raw(op2)};
            }
            if (bytecode::isCmpBranch(op2)) {
                return {static_cast<std::uint8_t>(
                            kTopLoadConstCmpBrBase +
                            (raw(op2) - raw(Opcode::IfIcmpeq))),
                        3, raw(op2)};
            }
        }
    }

    // Pairs.
    if (pc + 1 < n) {
        const Opcode op1 = code.code[pc + 1].op;
        if (op0 == Opcode::Iconst) {
            if (op1 == Opcode::Istore)
                return {kTopConstStore, 2, raw(Opcode::Istore)};
            if (isFusibleArith(op1)) {
                return {static_cast<std::uint8_t>(
                            kTopConstArithBase +
                            (raw(op1) - raw(Opcode::Iadd))),
                        2, raw(op1)};
            }
        }
        if (op0 == Opcode::Iload) {
            if (op1 == Opcode::Istore)
                return {kTopLoadStore, 2, raw(Opcode::Istore)};
            if (op1 == Opcode::Iload)
                return {kTopLoadLoad, 2, raw(Opcode::Iload)};
            if (isFusibleArith(op1)) {
                return {static_cast<std::uint8_t>(
                            kTopLoadArithBase +
                            (raw(op1) - raw(Opcode::Iadd))),
                        2, raw(op1)};
            }
            if (isZeroBranch(op1)) {
                return {static_cast<std::uint8_t>(
                            kTopLoadZeroBrBase +
                            (raw(op1) - raw(Opcode::Ifeq))),
                        2, raw(op1)};
            }
        }
    }
    return {};
}

std::uint8_t
guardTopFor(bytecode::Opcode op)
{
    using bytecode::Opcode;
    if (isZeroBranch(op)) {
        return static_cast<std::uint8_t>(kTopGuardZeroBase +
                                         (raw(op) - raw(Opcode::Ifeq)));
    }
    PEP_ASSERT(bytecode::isCmpBranch(op));
    return static_cast<std::uint8_t>(kTopGuardCmpBase +
                                     (raw(op) - raw(Opcode::IfIcmpeq)));
}

bool
isGuardTop(std::uint8_t top)
{
    return top >= kTopGuardZeroBase && top < kTopGuardCmpBase + 6;
}

bool
isFusedTop(std::uint8_t top)
{
    return top >= kTopConstStore && top < kNumTops;
}

bool
isFusedBranchTop(std::uint8_t top)
{
    return top >= kTopLoadZeroBrBase && top < kNumTops;
}

bytecode::Opcode
branchOpcodeOfTop(std::uint8_t top)
{
    using bytecode::Opcode;
    if (top >= kTopGuardZeroBase && top < kTopGuardZeroBase + 6) {
        return static_cast<Opcode>(raw(Opcode::Ifeq) +
                                   (top - kTopGuardZeroBase));
    }
    if (top >= kTopGuardCmpBase && top < kTopGuardCmpBase + 6) {
        return static_cast<Opcode>(raw(Opcode::IfIcmpeq) +
                                   (top - kTopGuardCmpBase));
    }
    if (top >= kTopLoadZeroBrBase && top < kTopLoadZeroBrBase + 6) {
        return static_cast<Opcode>(raw(Opcode::Ifeq) +
                                   (top - kTopLoadZeroBrBase));
    }
    if (top >= kTopLoadLoadCmpBrBase && top < kTopLoadLoadCmpBrBase + 6) {
        return static_cast<Opcode>(raw(Opcode::IfIcmpeq) +
                                   (top - kTopLoadLoadCmpBrBase));
    }
    PEP_ASSERT_MSG(top >= kTopLoadConstCmpBrBase && top < kNumTops,
                   "not a branch top");
    return static_cast<Opcode>(raw(Opcode::IfIcmpeq) +
                               (top - kTopLoadConstCmpBrBase));
}

std::vector<std::vector<cfg::BlockId>>
selectTraces(const bytecode::Method &code, const MethodInfo &info,
             const CompiledMethod &cm, const FuseOptions &fuse)
{
    using bytecode::TerminatorKind;

    std::vector<std::vector<cfg::BlockId>> traces;
    if (!fuse.traces)
        return traces;

    const bytecode::MethodCfg &mcfg = info.cfg;
    const cfg::Graph &graph = mcfg.graph;
    const std::size_t num_blocks = graph.numBlocks();

    std::vector<bool> has_invoke(num_blocks, false);
    for (bytecode::Pc pc = 0; pc < code.code.size(); ++pc) {
        if (code.code[pc].op == bytecode::Opcode::Invoke)
            has_invoke[mcfg.blockOfPc[pc]] = true;
    }

    // A member block must be single-segment (no Invoke, so no callee
    // yieldpoint can observe the prepaid trace charge mid-trace).
    const auto member_eligible = [&](cfg::BlockId b) {
        return mcfg.isCodeBlock(b) && !has_invoke[b];
    };

    std::vector<bool> in_trace(num_blocks, false);
    for (cfg::BlockId b = 0; b < num_blocks; ++b) {
        if (in_trace[b] || !member_eligible(b))
            continue;
        std::vector<cfg::BlockId> chain{b};
        in_trace[b] = true;
        cfg::BlockId cur = b;
        while (chain.size() < kMaxTraceBlocks) {
            // Extend only through the predicted-fall-through direction:
            // a plain fall-through block end, or a conditional branch
            // whose laid-out direction is fall-through (layout != 1 —
            // which also covers no-information, matching the miss-
            // penalty rule's notion of "predicted").
            const TerminatorKind kind = mcfg.terminator[cur];
            const bool extends =
                kind == TerminatorKind::Fallthrough ||
                (kind == TerminatorKind::Cond && cm.layoutFor(cur) != 1);
            if (!extends)
                break;
            const bytecode::Pc next_pc = mcfg.lastPc[cur] + 1;
            PEP_ASSERT(next_pc < code.code.size());
            const cfg::BlockId next = mcfg.blockOfPc[next_pc];
            // Interiors must be invisible to the outside world: no
            // second entry (single predecessor) and no loop-header
            // events/yieldpoints — so no park, OSR, or clock read can
            // happen between the head's transfer and the trace's exit.
            if (!member_eligible(next) || mcfg.isLoopHeader[next] ||
                graph.preds(next).size() != 1 || in_trace[next]) {
                break;
            }
            chain.push_back(next);
            in_trace[next] = true;
            cur = next;
        }
        if (chain.size() >= 2)
            traces.push_back(std::move(chain));
        else
            in_trace[b] = false;
    }
    return traces;
}

DecodedMethod
translateMethod(const bytecode::Method &code, const MethodInfo &info,
                const CompiledMethod &cm, const FuseOptions &fuse)
{
    using bytecode::Opcode;
    using bytecode::TerminatorKind;

    DecodedMethod dm;
    dm.source = &cm;
    dm.code = &code;
    dm.info = &info;
    dm.fuse = fuse;

    const cfg::Graph &graph = info.cfg.graph;
    dm.edgeBase.resize(graph.numBlocks() + 1);
    std::uint32_t next_edge = 0;
    for (cfg::BlockId b = 0; b < graph.numBlocks(); ++b) {
        dm.edgeBase[b] = next_edge;
        next_edge += static_cast<std::uint32_t>(graph.succs(b).size());
    }
    dm.edgeBase.back() = next_edge;

    const std::size_t n = code.code.size();
    const std::vector<bool> seg_leader = segmentLeaders(code, info);
    dm.pcToTemplate.assign(n, 0);
    dm.stream.reserve(n + n / 4);

    const auto is_header = [&](bytecode::Pc pc) {
        return info.headerLeaderPc[pc] ? std::uint8_t{1} : std::uint8_t{0};
    };

    // Trace selection, and the pcs whose branch becomes a trace guard
    // (pair fusion must not swallow those — the guard top carries the
    // suffix refund in fields a fused branch needs for operands).
    dm.traces = selectTraces(code, info, cm, fuse);
    dm.blockTrace.assign(graph.numBlocks(), -1);
    std::vector<bool> guard_pc(n, false);
    for (std::size_t ti = 0; ti < dm.traces.size(); ++ti) {
        const std::vector<cfg::BlockId> &chain = dm.traces[ti];
        for (cfg::BlockId b : chain)
            dm.blockTrace[b] = static_cast<std::int32_t>(ti);
        for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
            if (info.cfg.terminator[chain[i]] == TerminatorKind::Cond)
                guard_pc[info.cfg.lastPc[chain[i]]] = true;
        }
    }

    // Pass 1: emit templates in pc order (injecting a FallEdge after
    // each fall-through block end and collapsing fusion-menu matches
    // into one template), folding segment cost sums onto the segment
    // leader's template.
    std::uint32_t seg_tpl = 0;
    bytecode::Pc pc = 0;
    while (pc < n) {
        const bytecode::Instr &instr = code.code[pc];
        const cfg::BlockId block = info.cfg.blockOfPc[pc];

        // Fusion decision: a menu match applies only when it stays
        // inside one segment (no later constituent is a segment
        // leader) and does not swallow a trace guard's branch.
        FusionMatch match;
        if (fuse.pairs) {
            match = matchFusion(code, pc);
            for (std::uint8_t j = 1; match.len && j < match.len; ++j) {
                if (seg_leader[pc + j])
                    match.len = 0;
            }
            if (match.len && guard_pc[pc + match.len - 1])
                match.len = 0;
        }
        const std::uint8_t span = match.len ? match.len : 1;
        const bytecode::Pc last = pc + span - 1;
        const bytecode::Instr &last_instr = code.code[last];

        Template t;
        t.op = match.len ? match.top : raw(instr.op);
        t.sub = match.sub;
        t.fuseLen = span;
        t.pc = pc;
        t.block = block;
        t.flatBase = dm.edgeBase[block];
        t.layout = cm.layoutFor(block);
        if (cm.baselineEdgeInstr)
            t.flags |= kTplBaselineEdge;

        const std::uint32_t tpl =
            static_cast<std::uint32_t>(dm.stream.size());
        for (std::uint8_t j = 0; j < span; ++j)
            dm.pcToTemplate[pc + j] = tpl;
        if (seg_leader[pc])
            seg_tpl = tpl;

        if (match.len) {
            // Burn in the constituents' operands (see Template docs):
            // first constituent's operand in `a`; the second's in `b`
            // when the pattern consumes it (store target, second load,
            // const rhs).
            t.a = instr.a;
            if (span == 3 || t.op == kTopConstStore ||
                t.op == kTopLoadStore || t.op == kTopLoadLoad) {
                t.b = code.code[pc + 1].a;
            }
            if (isFusedBranchTop(t.op)) {
                t.takenPc = static_cast<bytecode::Pc>(last_instr.a);
                t.takenBlock = info.cfg.blockOfPc[t.takenPc];
                if (is_header(t.takenPc))
                    t.flags |= kTplTakenHeader;
                PEP_ASSERT(last + 1 < n);
                t.fallPc = last + 1;
                t.fallBlock = info.cfg.blockOfPc[last + 1];
                if (is_header(last + 1))
                    t.flags |= kTplFallHeader;
            }
        } else {
            t.a = instr.a;
            t.b = instr.b;
            switch (instr.op) {
              case Opcode::Goto:
                t.takenPc = static_cast<bytecode::Pc>(instr.a);
                t.takenBlock = info.cfg.blockOfPc[t.takenPc];
                if (is_header(t.takenPc))
                    t.flags |= kTplTakenHeader;
                break;
              case Opcode::Tableswitch: {
                t.swFirst =
                    static_cast<std::uint32_t>(dm.switchCases.size());
                t.swCount = static_cast<std::uint32_t>(instr.table.size());
                for (std::size_t i = 0; i <= instr.table.size(); ++i) {
                    // Cases 0..k-1, then the default entry.
                    const auto target = static_cast<bytecode::Pc>(
                        i < instr.table.size() ? instr.table[i] : instr.b);
                    SwitchCase sc;
                    sc.pc = target;
                    sc.block = info.cfg.blockOfPc[target];
                    sc.isHeader = is_header(target);
                    dm.switchCases.push_back(sc);
                }
                break;
              }
              case Opcode::Invoke:
                PEP_ASSERT_MSG(pc + 1 < n,
                               "Invoke at method end has no resume point");
                t.fallPc = pc + 1;
                if (info.leaderPc[pc + 1]) {
                    t.flags |= kTplEndsBlock;
                    t.fallBlock = info.cfg.blockOfPc[pc + 1];
                    if (is_header(pc + 1))
                        t.flags |= kTplFallHeader;
                }
                break;
              case Opcode::Return:
              case Opcode::Ireturn:
                break;
              default:
                if (bytecode::isCondBranch(instr.op)) {
                    t.takenPc = static_cast<bytecode::Pc>(instr.a);
                    t.takenBlock = info.cfg.blockOfPc[t.takenPc];
                    if (is_header(t.takenPc))
                        t.flags |= kTplTakenHeader;
                    t.fallPc = pc + 1;
                    PEP_ASSERT(pc + 1 < n);
                    t.fallBlock = info.cfg.blockOfPc[pc + 1];
                    if (is_header(pc + 1))
                        t.flags |= kTplFallHeader;
                }
                break;
            }
        }
        dm.stream.push_back(t);

        // Fold every constituent into its segment's charge.
        for (std::uint8_t j = 0; j < span; ++j) {
            const auto op_index =
                static_cast<std::size_t>(code.code[pc + j].op);
            PEP_ASSERT(op_index < cm.scaledCost.size());
            const std::uint64_t folded =
                static_cast<std::uint64_t>(dm.stream[seg_tpl].cost) +
                cm.scaledCost[op_index];
            PEP_ASSERT_MSG(folded <= UINT32_MAX, "segment cost overflow");
            dm.stream[seg_tpl].cost = static_cast<std::uint32_t>(folded);
            dm.stream[seg_tpl].ninstr += 1;
        }

        // Inject the fall-through block-end boundary: a non-terminator,
        // non-Invoke (last) instruction whose successor pc starts a new
        // block takes the block's single CFG edge and transfers.
        const bool falls_into_leader =
            !bytecode::isTerminator(last_instr.op) &&
            last_instr.op != Opcode::Invoke && last + 1 < n &&
            info.leaderPc[last + 1];
        if (falls_into_leader) {
            Template fe;
            fe.op = kTopFallEdge;
            fe.pc = last;
            fe.block = block;
            fe.flatBase = dm.edgeBase[block];
            fe.fallPc = last + 1;
            fe.fallBlock = info.cfg.blockOfPc[last + 1];
            if (is_header(last + 1))
                fe.flags |= kTplFallHeader;
            dm.stream.push_back(fe);
        } else if (!bytecode::isTerminator(last_instr.op) &&
                   last_instr.op != Opcode::Invoke) {
            PEP_ASSERT_MSG(last + 1 < n,
                           "control falls off the end of the method");
        }
        pc += span;
    }

    // Pass 2: resolve control-transfer targets to template indices.
    for (Template &t : dm.stream) {
        switch (t.op) {
          case static_cast<std::uint8_t>(Opcode::Goto):
            t.taken = dm.pcToTemplate[t.takenPc];
            break;
          case static_cast<std::uint8_t>(Opcode::Invoke):
          case kTopFallEdge:
            t.fall = dm.pcToTemplate[t.fallPc];
            break;
          default:
            if (isFusedBranchTop(t.op) ||
                (t.op < bytecode::kNumOpcodes &&
                 bytecode::isCondBranch(static_cast<Opcode>(t.op)))) {
                t.taken = dm.pcToTemplate[t.takenPc];
                t.fall = dm.pcToTemplate[t.fallPc];
            }
            break;
        }
    }
    for (SwitchCase &sc : dm.switchCases)
        sc.tpl = dm.pcToTemplate[sc.pc];

    // Pass 3: straighten the selected traces. Batch the whole chain's
    // cost/ninstr onto the head block's leader template (one add per
    // trace), zero the interior leaders, convert interior branches to
    // guards carrying the unexecuted-suffix refund, and interior
    // fall-through ends to direct TraceFall jumps. Runs after target
    // resolution so guard conversion never confuses pass 2's opcode
    // dispatch.
    for (const std::vector<cfg::BlockId> &chain : dm.traces) {
        std::vector<std::uint32_t> leader_tpl(chain.size());
        std::vector<std::uint32_t> member_cost(chain.size());
        std::vector<std::uint32_t> member_ninstr(chain.size());
        std::uint64_t total_cost = 0;
        std::uint64_t total_ninstr = 0;
        for (std::size_t i = 0; i < chain.size(); ++i) {
            // Members are single-segment, so the block leader's
            // template carries the whole block's sums.
            leader_tpl[i] = dm.pcToTemplate[info.cfg.firstPc[chain[i]]];
            member_cost[i] = dm.stream[leader_tpl[i]].cost;
            member_ninstr[i] = dm.stream[leader_tpl[i]].ninstr;
            total_cost += member_cost[i];
            total_ninstr += member_ninstr[i];
        }
        PEP_ASSERT_MSG(total_cost <= UINT32_MAX, "trace cost overflow");
        dm.stream[leader_tpl[0]].cost =
            static_cast<std::uint32_t>(total_cost);
        dm.stream[leader_tpl[0]].ninstr =
            static_cast<std::uint32_t>(total_ninstr);
        for (std::size_t i = 1; i < chain.size(); ++i) {
            dm.stream[leader_tpl[i]].cost = 0;
            dm.stream[leader_tpl[i]].ninstr = 0;
        }

        std::uint64_t suffix_cost = total_cost;
        std::uint64_t suffix_ninstr = total_ninstr;
        for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
            suffix_cost -= member_cost[i];
            suffix_ninstr -= member_ninstr[i];
            const cfg::BlockId b = chain[i];
            const bytecode::Pc end_pc = info.cfg.lastPc[b];
            const std::uint32_t end_tpl = dm.pcToTemplate[end_pc];
            if (info.cfg.terminator[b] == TerminatorKind::Cond) {
                Template &bt = dm.stream[end_tpl];
                PEP_ASSERT(bt.fuseLen == 1 &&
                           bytecode::isCondBranch(
                               static_cast<Opcode>(bt.op)));
                bt.sub = bt.op;
                bt.op = guardTopFor(static_cast<Opcode>(bt.sub));
                bt.swFirst = static_cast<std::uint32_t>(suffix_cost);
                bt.swCount = static_cast<std::uint32_t>(suffix_ninstr);
            } else {
                // The injected FallEdge directly follows the block-end
                // instruction's template in the stream.
                Template &fe = dm.stream[end_tpl + 1];
                PEP_ASSERT(fe.op == kTopFallEdge && fe.pc == end_pc);
                fe.op = kTopTraceFall;
            }
        }
    }

    return dm;
}

} // namespace pep::vm
