#ifndef PEP_VM_CALL_GRAPH_HH
#define PEP_VM_CALL_GRAPH_HH

/**
 * @file
 * Dynamic call graphs. Jikes RVM's adaptive system — the machinery PEP
 * piggybacks on — maintains a sampled dynamic call graph: on each
 * timer tick the yieldpoint handler records the (caller, callee) pair
 * at the top of the stack (Arnold-Grove's original application). The
 * VM also keeps a zero-cost ground-truth call graph (every Invoke), so
 * the sampled graph's accuracy can be evaluated the same way the
 * paper evaluates PEP's profiles.
 */

#include <cstdint>
#include <map>
#include <vector>

#include "bytecode/instr.hh"

namespace pep::vm {

/** Caller -> callee invocation counts. */
class CallGraph
{
  public:
    /** Record one (or n) calls of `callee` from `caller`. */
    void
    addCall(bytecode::MethodId caller, bytecode::MethodId callee,
            std::uint64_t n = 1)
    {
        edges_[{caller, callee}] += n;
    }

    /** Count for one call edge (0 if never seen). */
    std::uint64_t count(bytecode::MethodId caller,
                        bytecode::MethodId callee) const;

    /** All edges with their counts. */
    const std::map<std::pair<bytecode::MethodId, bytecode::MethodId>,
                   std::uint64_t> &
    edges() const
    {
        return edges_;
    }

    /** Total recorded calls. */
    std::uint64_t totalCalls() const;

    /** Hottest callees of a caller, most frequent first. */
    std::vector<std::pair<bytecode::MethodId, std::uint64_t>>
    calleesOf(bytecode::MethodId caller) const;

    void clear() { edges_.clear(); }

  private:
    std::map<std::pair<bytecode::MethodId, bytecode::MethodId>,
             std::uint64_t>
        edges_;
};

/**
 * Weighted overlap of two call graphs (the paper's "absolute overlap"
 * applied to call edges): sum over edges of min(share_a, share_b).
 * 1.0 for identical distributions, 0.0 for disjoint; 1.0 if both are
 * empty.
 */
double callGraphOverlap(const CallGraph &a, const CallGraph &b);

} // namespace pep::vm

#endif // PEP_VM_CALL_GRAPH_HH
