#ifndef PEP_VM_ENGINE_HH
#define PEP_VM_ENGINE_HH

/**
 * @file
 * Execution-engine selection. The machine can run bytecode through two
 * backends with identical observable behaviour (profiles, samples,
 * simulated cycles — docs/ENGINE.md):
 *
 *  - Switch: the classic per-instruction decode + switch dispatch
 *    (src/vm/interpreter.cc, Interpreter::loop).
 *  - Threaded: per-version pre-decoded template streams dispatched via
 *    computed goto (Interpreter::loopThreaded, decoded_method.hh).
 *
 * The default comes from the PEP_ENGINE environment variable
 * ("switch" | "threaded"; unset means switch), so the whole test suite
 * can be swept under either engine without recompiling. Tests and
 * benchmarks pin SimParams::engine explicitly instead.
 */

#include <cstdint>
#include <string_view>

namespace pep::vm {

enum class EngineKind : std::uint8_t
{
    Switch,
    Threaded,
};

/** Human-readable engine name ("switch" / "threaded"). */
const char *engineKindName(EngineKind kind);

/** Parse an engine name; returns false on unknown input. */
bool parseEngineKind(std::string_view text, EngineKind &out);

/**
 * Engine selected by the PEP_ENGINE environment variable, read once
 * per process; Switch when unset or empty. An unrecognized value is a
 * fatal error (a CI matrix typo must fail loudly, not silently fall
 * back to the engine it meant to avoid).
 */
EngineKind defaultEngineKind();

/**
 * Template-fusion selection for the threaded engine (docs/ENGINE.md).
 * `pairs` fuses common opcode pairs/triples into superinstruction
 * templates with burned-in operands; `traces` straightens runs of
 * predicted-fall-through blocks into hot-trace segments with the
 * untaken checks hoisted into guarded exits and the segment accounting
 * batched into one add per trace. Both are translation-time choices:
 * the switch engine ignores them, and every observable stays
 * byte-identical across the whole PEP_ENGINE x PEP_FUSE matrix.
 */
struct FuseOptions
{
    bool pairs = false;
    bool traces = false;
};

inline bool
operator==(const FuseOptions &a, const FuseOptions &b)
{
    return a.pairs == b.pairs && a.traces == b.traces;
}

inline bool
operator!=(const FuseOptions &a, const FuseOptions &b)
{
    return !(a == b);
}

/** Human-readable fusion selection ("none" / "pairs" / "traces" /
 *  "pairs,traces"). */
const char *fuseOptionsName(const FuseOptions &fuse);

/** Parse a comma-separated fusion selection ("none", "pairs",
 *  "traces", "pairs,traces"); returns false on an unknown token. */
bool parseFuseOptions(std::string_view text, FuseOptions &out);

/**
 * Fusion selected by the PEP_FUSE environment variable, read once per
 * process; none when unset or empty. An unrecognized value is a fatal
 * error, exactly like PEP_ENGINE.
 */
FuseOptions defaultFuseOptions();

} // namespace pep::vm

#endif // PEP_VM_ENGINE_HH
