#ifndef PEP_VM_ENGINE_HH
#define PEP_VM_ENGINE_HH

/**
 * @file
 * Execution-engine selection. The machine can run bytecode through two
 * backends with identical observable behaviour (profiles, samples,
 * simulated cycles — docs/ENGINE.md):
 *
 *  - Switch: the classic per-instruction decode + switch dispatch
 *    (src/vm/interpreter.cc, Interpreter::loop).
 *  - Threaded: per-version pre-decoded template streams dispatched via
 *    computed goto (Interpreter::loopThreaded, decoded_method.hh).
 *
 * The default comes from the PEP_ENGINE environment variable
 * ("switch" | "threaded"; unset means switch), so the whole test suite
 * can be swept under either engine without recompiling. Tests and
 * benchmarks pin SimParams::engine explicitly instead.
 */

#include <cstdint>
#include <string_view>

namespace pep::vm {

enum class EngineKind : std::uint8_t
{
    Switch,
    Threaded,
};

/** Human-readable engine name ("switch" / "threaded"). */
const char *engineKindName(EngineKind kind);

/** Parse an engine name; returns false on unknown input. */
bool parseEngineKind(std::string_view text, EngineKind &out);

/**
 * Engine selected by the PEP_ENGINE environment variable, read once
 * per process; Switch when unset or empty. An unrecognized value is a
 * fatal error (a CI matrix typo must fail loudly, not silently fall
 * back to the engine it meant to avoid).
 */
EngineKind defaultEngineKind();

} // namespace pep::vm

#endif // PEP_VM_ENGINE_HH
