#ifndef PEP_VM_LAYOUT_HH
#define PEP_VM_LAYOUT_HH

/**
 * @file
 * Canned layout-profile sources for driving the optimizer with a fixed
 * edge profile (Figure 10's perfect-continuous and flipped
 * configurations).
 */

#include "profile/edge_profile.hh"
#include "vm/machine.hh"

namespace pep::vm {

/** Serves layout queries from a fixed edge-profile snapshot. */
class FixedLayoutSource final : public LayoutSource
{
  public:
    explicit FixedLayoutSource(profile::EdgeProfileSet profiles)
        : profiles_(std::move(profiles))
    {
    }

    const profile::MethodEdgeProfile *
    layoutProfile(bytecode::MethodId method) override
    {
        // Snapshots may come from a different (smaller) program — e.g.
        // a probe machine whose advice is replayed elsewhere — so an
        // unknown method is "no information", not an out-of-bounds
        // read.
        if (method >= profiles_.perMethod.size())
            return nullptr;
        const profile::MethodEdgeProfile &p =
            profiles_.perMethod[method];
        return p.totalCount() > 0 ? &p : nullptr;
    }

    const profile::EdgeProfileSet &profiles() const { return profiles_; }

  private:
    profile::EdgeProfileSet profiles_;
};

} // namespace pep::vm

#endif // PEP_VM_LAYOUT_HH
