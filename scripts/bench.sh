#!/usr/bin/env bash
# Harness performance run: builds the perf suite and emits
# BENCH_PR2.json (wall-clock + simulated cycles/sec for serial vs
# parallel suite runs, plus the flattened-dispatch microbenchmark)
# and BENCH_PR4.json (cooperative-scheduler PEP overhead/accuracy per
# virtual-thread count, throughput worker scaling, and the
# sharded-vs-mutex aggregation comparison).
#
# Usage: scripts/bench.sh [perf-output.json] [concurrency-output.json]
# Environment: PEP_BENCH_SCALE, PEP_BENCH_ONLY, PEP_BENCH_THREADS.
set -euo pipefail

cd "$(dirname "$0")/.."

OUT=${1:-BENCH_PR2.json}
OUT_CONCURRENCY=${2:-BENCH_PR4.json}

cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)" --target perf_suite tab_concurrency

./build/bench/perf_suite "$OUT"
./build/bench/tab_concurrency "$OUT_CONCURRENCY"
echo "bench.sh: results in $OUT and $OUT_CONCURRENCY"
