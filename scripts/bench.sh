#!/usr/bin/env bash
# Harness performance run: builds the perf suite and emits
# BENCH_PR2.json (wall-clock + simulated cycles/sec for serial vs
# parallel suite runs, plus the flattened-dispatch microbenchmark).
#
# Usage: scripts/bench.sh [output.json]
# Environment: PEP_BENCH_SCALE, PEP_BENCH_ONLY, PEP_BENCH_THREADS.
set -euo pipefail

cd "$(dirname "$0")/.."

OUT=${1:-BENCH_PR2.json}

cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)" --target perf_suite

./build/bench/perf_suite "$OUT"
echo "bench.sh: results in $OUT"
