#!/usr/bin/env bash
# Harness performance run: builds the perf suite and emits
# BENCH_PR2.json (wall-clock + simulated cycles/sec for serial vs
# parallel suite runs, plus the flattened-dispatch microbenchmark),
# BENCH_PR5.json (switch vs pre-decoded threaded engine dispatch:
# ns/instruction, edges/sec, and the observable byte-identity check —
# see docs/ENGINE.md), BENCH_PR4.json (cooperative-scheduler PEP
# overhead/accuracy per virtual-thread count, throughput worker
# scaling, and the sharded-vs-mutex-vs-ring aggregation comparison),
# BENCH_PR7.json (the SPSC ring sample transport under sustained
# load: requests/sec at >= 16 workers, drop rate vs ring capacity,
# window staleness, and memory flatness — see docs/RUNTIME.md), and
# BENCH_PR8.json (k-BLPP: distinct k-paths vs acyclic paths, composite
# window fraction, hot concentration, and the window-bookkeeping
# overhead across k — see docs/KBLPP.md), and BENCH_PR10.json (the
# PEP_ENGINE x PEP_FUSE dispatch matrix: superinstruction pairs and
# straightened hot traces vs the plain threaded engine, ns/instruction,
# edges/sec, stream anatomy, and the observable byte-identity plus
# 1.20x speedup gates — see docs/ENGINE.md).
#
# Usage: scripts/bench.sh [perf.json] [concurrency.json] [engine.json]
#                         [transport.json] [kiter.json] [fusion.json]
# Environment: PEP_BENCH_SCALE, PEP_BENCH_ONLY, PEP_BENCH_THREADS.
set -euo pipefail

cd "$(dirname "$0")/.."

OUT=${1:-BENCH_PR2.json}
OUT_CONCURRENCY=${2:-BENCH_PR4.json}
OUT_ENGINE=${3:-BENCH_PR5.json}
OUT_TRANSPORT=${4:-BENCH_PR7.json}
OUT_KITER=${5:-BENCH_PR8.json}
OUT_FUSION=${6:-BENCH_PR10.json}

cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)" --target perf_suite tab_concurrency \
    tab_transport tab_kiter tab_fusion

./build/bench/perf_suite "$OUT" "$OUT_ENGINE"
./build/bench/tab_concurrency "$OUT_CONCURRENCY"
./build/bench/tab_transport "$OUT_TRANSPORT"
./build/bench/tab_kiter "$OUT_KITER"
./build/bench/tab_fusion "$OUT_FUSION"
echo "bench.sh: results in $OUT, $OUT_ENGINE, $OUT_CONCURRENCY, $OUT_TRANSPORT, $OUT_KITER and $OUT_FUSION"
