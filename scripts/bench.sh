#!/usr/bin/env bash
# Harness performance run: builds the perf suite and emits
# BENCH_PR2.json (wall-clock + simulated cycles/sec for serial vs
# parallel suite runs, plus the flattened-dispatch microbenchmark),
# BENCH_PR5.json (switch vs pre-decoded threaded engine dispatch:
# ns/instruction, edges/sec, and the observable byte-identity check —
# see docs/ENGINE.md), and BENCH_PR4.json (cooperative-scheduler PEP
# overhead/accuracy per virtual-thread count, throughput worker
# scaling, and the sharded-vs-mutex aggregation comparison).
#
# Usage: scripts/bench.sh [perf.json] [concurrency.json] [engine.json]
# Environment: PEP_BENCH_SCALE, PEP_BENCH_ONLY, PEP_BENCH_THREADS.
set -euo pipefail

cd "$(dirname "$0")/.."

OUT=${1:-BENCH_PR2.json}
OUT_CONCURRENCY=${2:-BENCH_PR4.json}
OUT_ENGINE=${3:-BENCH_PR5.json}

cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)" --target perf_suite tab_concurrency

./build/bench/perf_suite "$OUT" "$OUT_ENGINE"
./build/bench/tab_concurrency "$OUT_CONCURRENCY"
echo "bench.sh: results in $OUT, $OUT_ENGINE and $OUT_CONCURRENCY"
