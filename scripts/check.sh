#!/usr/bin/env bash
# Full verification sweep: a regular build + test run, a second build
# with AddressSanitizer + UBSanitizer (-DPEP_SANITIZE=ON) and the same
# test run under it, then a ThreadSanitizer build
# (-DPEP_SANITIZE=thread) running the concurrent-runtime tests (the
# only suites with real OS-thread concurrency).
# Usage: scripts/check.sh [extra ctest args...]
set -euo pipefail

cd "$(dirname "$0")/.."

run_suite() {
    local build_dir=$1
    shift
    cmake -B "$build_dir" -S . "$@" >/dev/null
    cmake --build "$build_dir" -j "$(nproc)"
    ctest --test-dir "$build_dir" --output-on-failure "${CTEST_ARGS[@]}"
}

CTEST_ARGS=("$@")

echo "== check.sh: regular build =="
run_suite build

echo "== check.sh: ASan+UBSan build =="
run_suite build-sanitize -DPEP_SANITIZE=ON

echo "== check.sh: TSan build (runtime suites) =="
cmake -B build-tsan -S . -DPEP_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$(nproc)" --target runtime_test \
    workload_test fusion_test
ctest --test-dir build-tsan --output-on-failure \
    -R 'Runtime|ParallelRunner' "${CTEST_ARGS[@]}"

echo "== check.sh: all suites passed =="
