#!/usr/bin/env bash
# Static-analysis sweep, mirrored by the CI `static-analysis` job:
#
#  1. configure with an exported compile_commands.json and run
#     clang-tidy (profile in .clang-tidy: bugprone-*, performance-*,
#     concurrency-*) over every source file under src/, failing on any
#     warning;
#  2. build the pep-verify tool and run the symbolic verification
#     passes (docs/ANALYSIS.md) over the examples and the fuzz corpus;
#  3. run the fuzzer's static-catch self-tests: the impossible-profile
#     and skipped-invalidate injections must be rejected.
#
# clang-tidy is optional locally: when the binary is absent, step 1 is
# skipped with a notice (the container image does not ship it; CI
# installs it). Usage: scripts/static_analysis.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build-static}

cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null

if command -v clang-tidy >/dev/null 2>&1; then
    echo "== static_analysis.sh: clang-tidy over src/ =="
    # xargs -P parallelizes across files; any finding fails the sweep
    # (WarningsAsErrors in .clang-tidy covers every enabled group).
    find src -name '*.cc' -print0 |
        xargs -0 -P "$(nproc)" -n 4 \
            clang-tidy -p "$BUILD_DIR" --quiet
else
    echo "== static_analysis.sh: clang-tidy not found, skipping lint =="
fi

echo "== static_analysis.sh: pep-verify over examples and corpus =="
cmake --build "$BUILD_DIR" -j "$(nproc)" --target pep_verify pep_fuzz
"$BUILD_DIR"/tools/pep_verify --quiet examples/programs/*.pepasm
"$BUILD_DIR"/tools/pep_verify --quiet tests/corpus/*.pepasm

echo "== static_analysis.sh: fault-injection self-tests =="
for inject in impossible-profile skipped-invalidate; do
    "$BUILD_DIR"/tools/pep_fuzz --iters 6 --seed 11 \
        --configs headersplit-direct --inject "$inject" \
        --expect-caught --no-shrink
done

echo "== static_analysis.sh: passed =="
