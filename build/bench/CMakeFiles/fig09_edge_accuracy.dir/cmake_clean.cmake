file(REMOVE_RECURSE
  "CMakeFiles/fig09_edge_accuracy.dir/fig09_edge_accuracy.cc.o"
  "CMakeFiles/fig09_edge_accuracy.dir/fig09_edge_accuracy.cc.o.d"
  "fig09_edge_accuracy"
  "fig09_edge_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_edge_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
