file(REMOVE_RECURSE
  "CMakeFiles/tab_onetime_accuracy.dir/tab_onetime_accuracy.cc.o"
  "CMakeFiles/tab_onetime_accuracy.dir/tab_onetime_accuracy.cc.o.d"
  "tab_onetime_accuracy"
  "tab_onetime_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_onetime_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
