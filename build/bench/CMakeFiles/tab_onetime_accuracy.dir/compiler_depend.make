# Empty compiler generated dependencies file for tab_onetime_accuracy.
# This may be replaced when dependencies are built.
