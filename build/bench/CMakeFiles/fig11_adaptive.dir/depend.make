# Empty dependencies file for fig11_adaptive.
# This may be replaced when dependencies are built.
