file(REMOVE_RECURSE
  "CMakeFiles/fig11_adaptive.dir/fig11_adaptive.cc.o"
  "CMakeFiles/fig11_adaptive.dir/fig11_adaptive.cc.o.d"
  "fig11_adaptive"
  "fig11_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
