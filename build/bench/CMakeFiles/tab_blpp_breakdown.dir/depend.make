# Empty dependencies file for tab_blpp_breakdown.
# This may be replaced when dependencies are built.
