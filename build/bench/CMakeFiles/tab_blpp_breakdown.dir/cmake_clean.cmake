file(REMOVE_RECURSE
  "CMakeFiles/tab_blpp_breakdown.dir/tab_blpp_breakdown.cc.o"
  "CMakeFiles/tab_blpp_breakdown.dir/tab_blpp_breakdown.cc.o.d"
  "tab_blpp_breakdown"
  "tab_blpp_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_blpp_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
