# Empty dependencies file for tab_path_semantics.
# This may be replaced when dependencies are built.
