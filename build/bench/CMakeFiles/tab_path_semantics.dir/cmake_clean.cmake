file(REMOVE_RECURSE
  "CMakeFiles/tab_path_semantics.dir/tab_path_semantics.cc.o"
  "CMakeFiles/tab_path_semantics.dir/tab_path_semantics.cc.o.d"
  "tab_path_semantics"
  "tab_path_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_path_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
