file(REMOVE_RECURSE
  "libpep_bench_common.a"
)
