# Empty dependencies file for pep_bench_common.
# This may be replaced when dependencies are built.
