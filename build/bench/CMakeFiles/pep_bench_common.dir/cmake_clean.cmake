file(REMOVE_RECURSE
  "CMakeFiles/pep_bench_common.dir/common/harness.cc.o"
  "CMakeFiles/pep_bench_common.dir/common/harness.cc.o.d"
  "libpep_bench_common.a"
  "libpep_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pep_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
