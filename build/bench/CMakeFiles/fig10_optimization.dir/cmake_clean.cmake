file(REMOVE_RECURSE
  "CMakeFiles/fig10_optimization.dir/fig10_optimization.cc.o"
  "CMakeFiles/fig10_optimization.dir/fig10_optimization.cc.o.d"
  "fig10_optimization"
  "fig10_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
