# Empty compiler generated dependencies file for fig08_path_accuracy.
# This may be replaced when dependencies are built.
