# Empty compiler generated dependencies file for tab_smart_numbering.
# This may be replaced when dependencies are built.
