file(REMOVE_RECURSE
  "CMakeFiles/tab_smart_numbering.dir/tab_smart_numbering.cc.o"
  "CMakeFiles/tab_smart_numbering.dir/tab_smart_numbering.cc.o.d"
  "tab_smart_numbering"
  "tab_smart_numbering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_smart_numbering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
