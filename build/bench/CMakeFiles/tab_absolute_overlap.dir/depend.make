# Empty dependencies file for tab_absolute_overlap.
# This may be replaced when dependencies are built.
