file(REMOVE_RECURSE
  "CMakeFiles/tab_absolute_overlap.dir/tab_absolute_overlap.cc.o"
  "CMakeFiles/tab_absolute_overlap.dir/tab_absolute_overlap.cc.o.d"
  "tab_absolute_overlap"
  "tab_absolute_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_absolute_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
