file(REMOVE_RECURSE
  "CMakeFiles/fig07_compile_overhead.dir/fig07_compile_overhead.cc.o"
  "CMakeFiles/fig07_compile_overhead.dir/fig07_compile_overhead.cc.o.d"
  "fig07_compile_overhead"
  "fig07_compile_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_compile_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
