# Empty dependencies file for micro_pep.
# This may be replaced when dependencies are built.
