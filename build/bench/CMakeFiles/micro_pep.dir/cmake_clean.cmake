file(REMOVE_RECURSE
  "CMakeFiles/micro_pep.dir/micro_pep.cc.o"
  "CMakeFiles/micro_pep.dir/micro_pep.cc.o.d"
  "micro_pep"
  "micro_pep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_pep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
