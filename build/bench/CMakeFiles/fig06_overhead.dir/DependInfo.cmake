
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig06_overhead.cc" "bench/CMakeFiles/fig06_overhead.dir/fig06_overhead.cc.o" "gcc" "bench/CMakeFiles/fig06_overhead.dir/fig06_overhead.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/pep_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pep_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/pep_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pep_core.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/pep_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/pep_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/bytecode/CMakeFiles/pep_bytecode.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/pep_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pep_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
