file(REMOVE_RECURSE
  "CMakeFiles/fig06_overhead.dir/fig06_overhead.cc.o"
  "CMakeFiles/fig06_overhead.dir/fig06_overhead.cc.o.d"
  "fig06_overhead"
  "fig06_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
