file(REMOVE_RECURSE
  "CMakeFiles/tab_inlining.dir/tab_inlining.cc.o"
  "CMakeFiles/tab_inlining.dir/tab_inlining.cc.o.d"
  "tab_inlining"
  "tab_inlining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_inlining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
