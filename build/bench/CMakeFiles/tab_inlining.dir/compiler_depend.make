# Empty compiler generated dependencies file for tab_inlining.
# This may be replaced when dependencies are built.
