# Empty dependencies file for tab_perfect_overhead.
# This may be replaced when dependencies are built.
