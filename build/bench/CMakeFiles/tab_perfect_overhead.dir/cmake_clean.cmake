file(REMOVE_RECURSE
  "CMakeFiles/tab_perfect_overhead.dir/tab_perfect_overhead.cc.o"
  "CMakeFiles/tab_perfect_overhead.dir/tab_perfect_overhead.cc.o.d"
  "tab_perfect_overhead"
  "tab_perfect_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_perfect_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
