# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke_fig06_overhead "/root/repo/build/bench/fig06_overhead")
set_tests_properties(bench_smoke_fig06_overhead PROPERTIES  ENVIRONMENT "PEP_BENCH_SCALE=0.1;PEP_BENCH_ONLY=compress" LABELS "bench_smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;34;add_test;/root/repo/bench/CMakeLists.txt;40;pep_bench_smoke;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig07_compile_overhead "/root/repo/build/bench/fig07_compile_overhead")
set_tests_properties(bench_smoke_fig07_compile_overhead PROPERTIES  ENVIRONMENT "PEP_BENCH_SCALE=0.1;PEP_BENCH_ONLY=compress" LABELS "bench_smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;34;add_test;/root/repo/bench/CMakeLists.txt;41;pep_bench_smoke;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig08_path_accuracy "/root/repo/build/bench/fig08_path_accuracy")
set_tests_properties(bench_smoke_fig08_path_accuracy PROPERTIES  ENVIRONMENT "PEP_BENCH_SCALE=0.1;PEP_BENCH_ONLY=compress" LABELS "bench_smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;34;add_test;/root/repo/bench/CMakeLists.txt;42;pep_bench_smoke;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig09_edge_accuracy "/root/repo/build/bench/fig09_edge_accuracy")
set_tests_properties(bench_smoke_fig09_edge_accuracy PROPERTIES  ENVIRONMENT "PEP_BENCH_SCALE=0.1;PEP_BENCH_ONLY=compress" LABELS "bench_smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;34;add_test;/root/repo/bench/CMakeLists.txt;43;pep_bench_smoke;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig10_optimization "/root/repo/build/bench/fig10_optimization")
set_tests_properties(bench_smoke_fig10_optimization PROPERTIES  ENVIRONMENT "PEP_BENCH_SCALE=0.1;PEP_BENCH_ONLY=compress" LABELS "bench_smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;34;add_test;/root/repo/bench/CMakeLists.txt;44;pep_bench_smoke;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig11_adaptive "/root/repo/build/bench/fig11_adaptive")
set_tests_properties(bench_smoke_fig11_adaptive PROPERTIES  ENVIRONMENT "PEP_BENCH_SCALE=0.1;PEP_BENCH_ONLY=compress" LABELS "bench_smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;34;add_test;/root/repo/bench/CMakeLists.txt;45;pep_bench_smoke;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_tab_perfect_overhead "/root/repo/build/bench/tab_perfect_overhead")
set_tests_properties(bench_smoke_tab_perfect_overhead PROPERTIES  ENVIRONMENT "PEP_BENCH_SCALE=0.1;PEP_BENCH_ONLY=compress" LABELS "bench_smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;34;add_test;/root/repo/bench/CMakeLists.txt;46;pep_bench_smoke;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_tab_absolute_overlap "/root/repo/build/bench/tab_absolute_overlap")
set_tests_properties(bench_smoke_tab_absolute_overlap PROPERTIES  ENVIRONMENT "PEP_BENCH_SCALE=0.1;PEP_BENCH_ONLY=compress" LABELS "bench_smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;34;add_test;/root/repo/bench/CMakeLists.txt;47;pep_bench_smoke;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_tab_onetime_accuracy "/root/repo/build/bench/tab_onetime_accuracy")
set_tests_properties(bench_smoke_tab_onetime_accuracy PROPERTIES  ENVIRONMENT "PEP_BENCH_SCALE=0.1;PEP_BENCH_ONLY=compress" LABELS "bench_smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;34;add_test;/root/repo/bench/CMakeLists.txt;48;pep_bench_smoke;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_tab_blpp_breakdown "/root/repo/build/bench/tab_blpp_breakdown")
set_tests_properties(bench_smoke_tab_blpp_breakdown PROPERTIES  ENVIRONMENT "PEP_BENCH_SCALE=0.1;PEP_BENCH_ONLY=compress" LABELS "bench_smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;34;add_test;/root/repo/bench/CMakeLists.txt;49;pep_bench_smoke;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_tab_inlining "/root/repo/build/bench/tab_inlining")
set_tests_properties(bench_smoke_tab_inlining PROPERTIES  ENVIRONMENT "PEP_BENCH_SCALE=0.1;PEP_BENCH_ONLY=compress" LABELS "bench_smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;34;add_test;/root/repo/bench/CMakeLists.txt;50;pep_bench_smoke;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_tab_path_semantics "/root/repo/build/bench/tab_path_semantics")
set_tests_properties(bench_smoke_tab_path_semantics PROPERTIES  ENVIRONMENT "PEP_BENCH_SCALE=0.1;PEP_BENCH_ONLY=compress" LABELS "bench_smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;34;add_test;/root/repo/bench/CMakeLists.txt;51;pep_bench_smoke;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_tab_smart_numbering "/root/repo/build/bench/tab_smart_numbering")
set_tests_properties(bench_smoke_tab_smart_numbering PROPERTIES  ENVIRONMENT "PEP_BENCH_SCALE=0.1;PEP_BENCH_ONLY=compress" LABELS "bench_smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;34;add_test;/root/repo/bench/CMakeLists.txt;52;pep_bench_smoke;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_micro "/root/repo/build/bench/micro_pep" "--benchmark_filter=BM_BuildCfg" "--benchmark_min_time=0.01")
set_tests_properties(bench_smoke_micro PROPERTIES  LABELS "bench_smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;54;add_test;/root/repo/bench/CMakeLists.txt;0;")
