
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bytecode/assembler.cc" "src/bytecode/CMakeFiles/pep_bytecode.dir/assembler.cc.o" "gcc" "src/bytecode/CMakeFiles/pep_bytecode.dir/assembler.cc.o.d"
  "/root/repo/src/bytecode/cfg_builder.cc" "src/bytecode/CMakeFiles/pep_bytecode.dir/cfg_builder.cc.o" "gcc" "src/bytecode/CMakeFiles/pep_bytecode.dir/cfg_builder.cc.o.d"
  "/root/repo/src/bytecode/disassembler.cc" "src/bytecode/CMakeFiles/pep_bytecode.dir/disassembler.cc.o" "gcc" "src/bytecode/CMakeFiles/pep_bytecode.dir/disassembler.cc.o.d"
  "/root/repo/src/bytecode/instr.cc" "src/bytecode/CMakeFiles/pep_bytecode.dir/instr.cc.o" "gcc" "src/bytecode/CMakeFiles/pep_bytecode.dir/instr.cc.o.d"
  "/root/repo/src/bytecode/method.cc" "src/bytecode/CMakeFiles/pep_bytecode.dir/method.cc.o" "gcc" "src/bytecode/CMakeFiles/pep_bytecode.dir/method.cc.o.d"
  "/root/repo/src/bytecode/verifier.cc" "src/bytecode/CMakeFiles/pep_bytecode.dir/verifier.cc.o" "gcc" "src/bytecode/CMakeFiles/pep_bytecode.dir/verifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cfg/CMakeFiles/pep_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pep_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
