file(REMOVE_RECURSE
  "CMakeFiles/pep_bytecode.dir/assembler.cc.o"
  "CMakeFiles/pep_bytecode.dir/assembler.cc.o.d"
  "CMakeFiles/pep_bytecode.dir/cfg_builder.cc.o"
  "CMakeFiles/pep_bytecode.dir/cfg_builder.cc.o.d"
  "CMakeFiles/pep_bytecode.dir/disassembler.cc.o"
  "CMakeFiles/pep_bytecode.dir/disassembler.cc.o.d"
  "CMakeFiles/pep_bytecode.dir/instr.cc.o"
  "CMakeFiles/pep_bytecode.dir/instr.cc.o.d"
  "CMakeFiles/pep_bytecode.dir/method.cc.o"
  "CMakeFiles/pep_bytecode.dir/method.cc.o.d"
  "CMakeFiles/pep_bytecode.dir/verifier.cc.o"
  "CMakeFiles/pep_bytecode.dir/verifier.cc.o.d"
  "libpep_bytecode.a"
  "libpep_bytecode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pep_bytecode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
