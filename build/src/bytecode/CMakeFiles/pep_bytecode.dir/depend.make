# Empty dependencies file for pep_bytecode.
# This may be replaced when dependencies are built.
