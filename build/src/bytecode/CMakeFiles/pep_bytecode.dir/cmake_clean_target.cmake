file(REMOVE_RECURSE
  "libpep_bytecode.a"
)
