# Empty compiler generated dependencies file for pep_cfg.
# This may be replaced when dependencies are built.
