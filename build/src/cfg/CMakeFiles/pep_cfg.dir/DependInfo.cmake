
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cfg/analysis.cc" "src/cfg/CMakeFiles/pep_cfg.dir/analysis.cc.o" "gcc" "src/cfg/CMakeFiles/pep_cfg.dir/analysis.cc.o.d"
  "/root/repo/src/cfg/dot.cc" "src/cfg/CMakeFiles/pep_cfg.dir/dot.cc.o" "gcc" "src/cfg/CMakeFiles/pep_cfg.dir/dot.cc.o.d"
  "/root/repo/src/cfg/graph.cc" "src/cfg/CMakeFiles/pep_cfg.dir/graph.cc.o" "gcc" "src/cfg/CMakeFiles/pep_cfg.dir/graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/pep_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
