file(REMOVE_RECURSE
  "CMakeFiles/pep_cfg.dir/analysis.cc.o"
  "CMakeFiles/pep_cfg.dir/analysis.cc.o.d"
  "CMakeFiles/pep_cfg.dir/dot.cc.o"
  "CMakeFiles/pep_cfg.dir/dot.cc.o.d"
  "CMakeFiles/pep_cfg.dir/graph.cc.o"
  "CMakeFiles/pep_cfg.dir/graph.cc.o.d"
  "libpep_cfg.a"
  "libpep_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pep_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
