file(REMOVE_RECURSE
  "libpep_cfg.a"
)
