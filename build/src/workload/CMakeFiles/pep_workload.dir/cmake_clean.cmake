file(REMOVE_RECURSE
  "CMakeFiles/pep_workload.dir/program_builder.cc.o"
  "CMakeFiles/pep_workload.dir/program_builder.cc.o.d"
  "CMakeFiles/pep_workload.dir/suite.cc.o"
  "CMakeFiles/pep_workload.dir/suite.cc.o.d"
  "CMakeFiles/pep_workload.dir/synthetic.cc.o"
  "CMakeFiles/pep_workload.dir/synthetic.cc.o.d"
  "libpep_workload.a"
  "libpep_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pep_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
