# Empty compiler generated dependencies file for pep_workload.
# This may be replaced when dependencies are built.
