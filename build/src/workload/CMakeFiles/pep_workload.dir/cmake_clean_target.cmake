file(REMOVE_RECURSE
  "libpep_workload.a"
)
