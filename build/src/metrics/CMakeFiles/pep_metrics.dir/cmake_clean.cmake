file(REMOVE_RECURSE
  "CMakeFiles/pep_metrics.dir/overlap.cc.o"
  "CMakeFiles/pep_metrics.dir/overlap.cc.o.d"
  "CMakeFiles/pep_metrics.dir/path_accuracy.cc.o"
  "CMakeFiles/pep_metrics.dir/path_accuracy.cc.o.d"
  "libpep_metrics.a"
  "libpep_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pep_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
