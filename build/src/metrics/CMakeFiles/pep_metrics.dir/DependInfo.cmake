
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/overlap.cc" "src/metrics/CMakeFiles/pep_metrics.dir/overlap.cc.o" "gcc" "src/metrics/CMakeFiles/pep_metrics.dir/overlap.cc.o.d"
  "/root/repo/src/metrics/path_accuracy.cc" "src/metrics/CMakeFiles/pep_metrics.dir/path_accuracy.cc.o" "gcc" "src/metrics/CMakeFiles/pep_metrics.dir/path_accuracy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pep_core.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/pep_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pep_support.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/pep_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/bytecode/CMakeFiles/pep_bytecode.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/pep_cfg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
