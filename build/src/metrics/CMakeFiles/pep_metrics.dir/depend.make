# Empty dependencies file for pep_metrics.
# This may be replaced when dependencies are built.
