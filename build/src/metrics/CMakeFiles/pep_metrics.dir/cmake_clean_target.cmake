file(REMOVE_RECURSE
  "libpep_metrics.a"
)
