
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/advice_io.cc" "src/vm/CMakeFiles/pep_vm.dir/advice_io.cc.o" "gcc" "src/vm/CMakeFiles/pep_vm.dir/advice_io.cc.o.d"
  "/root/repo/src/vm/call_graph.cc" "src/vm/CMakeFiles/pep_vm.dir/call_graph.cc.o" "gcc" "src/vm/CMakeFiles/pep_vm.dir/call_graph.cc.o.d"
  "/root/repo/src/vm/compiled_method.cc" "src/vm/CMakeFiles/pep_vm.dir/compiled_method.cc.o" "gcc" "src/vm/CMakeFiles/pep_vm.dir/compiled_method.cc.o.d"
  "/root/repo/src/vm/cost_model.cc" "src/vm/CMakeFiles/pep_vm.dir/cost_model.cc.o" "gcc" "src/vm/CMakeFiles/pep_vm.dir/cost_model.cc.o.d"
  "/root/repo/src/vm/inliner.cc" "src/vm/CMakeFiles/pep_vm.dir/inliner.cc.o" "gcc" "src/vm/CMakeFiles/pep_vm.dir/inliner.cc.o.d"
  "/root/repo/src/vm/interpreter.cc" "src/vm/CMakeFiles/pep_vm.dir/interpreter.cc.o" "gcc" "src/vm/CMakeFiles/pep_vm.dir/interpreter.cc.o.d"
  "/root/repo/src/vm/machine.cc" "src/vm/CMakeFiles/pep_vm.dir/machine.cc.o" "gcc" "src/vm/CMakeFiles/pep_vm.dir/machine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/profile/CMakeFiles/pep_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/bytecode/CMakeFiles/pep_bytecode.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pep_support.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/pep_cfg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
