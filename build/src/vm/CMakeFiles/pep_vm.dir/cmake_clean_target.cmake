file(REMOVE_RECURSE
  "libpep_vm.a"
)
