# Empty compiler generated dependencies file for pep_vm.
# This may be replaced when dependencies are built.
