file(REMOVE_RECURSE
  "CMakeFiles/pep_vm.dir/advice_io.cc.o"
  "CMakeFiles/pep_vm.dir/advice_io.cc.o.d"
  "CMakeFiles/pep_vm.dir/call_graph.cc.o"
  "CMakeFiles/pep_vm.dir/call_graph.cc.o.d"
  "CMakeFiles/pep_vm.dir/compiled_method.cc.o"
  "CMakeFiles/pep_vm.dir/compiled_method.cc.o.d"
  "CMakeFiles/pep_vm.dir/cost_model.cc.o"
  "CMakeFiles/pep_vm.dir/cost_model.cc.o.d"
  "CMakeFiles/pep_vm.dir/inliner.cc.o"
  "CMakeFiles/pep_vm.dir/inliner.cc.o.d"
  "CMakeFiles/pep_vm.dir/interpreter.cc.o"
  "CMakeFiles/pep_vm.dir/interpreter.cc.o.d"
  "CMakeFiles/pep_vm.dir/machine.cc.o"
  "CMakeFiles/pep_vm.dir/machine.cc.o.d"
  "libpep_vm.a"
  "libpep_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pep_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
