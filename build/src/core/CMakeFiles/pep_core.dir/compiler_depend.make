# Empty compiler generated dependencies file for pep_core.
# This may be replaced when dependencies are built.
