
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baseline_profilers.cc" "src/core/CMakeFiles/pep_core.dir/baseline_profilers.cc.o" "gcc" "src/core/CMakeFiles/pep_core.dir/baseline_profilers.cc.o.d"
  "/root/repo/src/core/path_engine.cc" "src/core/CMakeFiles/pep_core.dir/path_engine.cc.o" "gcc" "src/core/CMakeFiles/pep_core.dir/path_engine.cc.o.d"
  "/root/repo/src/core/pep_profiler.cc" "src/core/CMakeFiles/pep_core.dir/pep_profiler.cc.o" "gcc" "src/core/CMakeFiles/pep_core.dir/pep_profiler.cc.o.d"
  "/root/repo/src/core/sampling.cc" "src/core/CMakeFiles/pep_core.dir/sampling.cc.o" "gcc" "src/core/CMakeFiles/pep_core.dir/sampling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/pep_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/pep_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pep_support.dir/DependInfo.cmake"
  "/root/repo/build/src/bytecode/CMakeFiles/pep_bytecode.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/pep_cfg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
