file(REMOVE_RECURSE
  "CMakeFiles/pep_core.dir/baseline_profilers.cc.o"
  "CMakeFiles/pep_core.dir/baseline_profilers.cc.o.d"
  "CMakeFiles/pep_core.dir/path_engine.cc.o"
  "CMakeFiles/pep_core.dir/path_engine.cc.o.d"
  "CMakeFiles/pep_core.dir/pep_profiler.cc.o"
  "CMakeFiles/pep_core.dir/pep_profiler.cc.o.d"
  "CMakeFiles/pep_core.dir/sampling.cc.o"
  "CMakeFiles/pep_core.dir/sampling.cc.o.d"
  "libpep_core.a"
  "libpep_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pep_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
