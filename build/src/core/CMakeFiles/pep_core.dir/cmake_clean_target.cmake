file(REMOVE_RECURSE
  "libpep_core.a"
)
