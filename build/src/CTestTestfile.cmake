# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("cfg")
subdirs("bytecode")
subdirs("profile")
subdirs("vm")
subdirs("core")
subdirs("metrics")
subdirs("workload")
