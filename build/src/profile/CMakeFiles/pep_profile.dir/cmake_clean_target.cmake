file(REMOVE_RECURSE
  "libpep_profile.a"
)
