# Empty dependencies file for pep_profile.
# This may be replaced when dependencies are built.
