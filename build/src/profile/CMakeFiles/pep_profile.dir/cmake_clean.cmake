file(REMOVE_RECURSE
  "CMakeFiles/pep_profile.dir/edge_profile.cc.o"
  "CMakeFiles/pep_profile.dir/edge_profile.cc.o.d"
  "CMakeFiles/pep_profile.dir/instr_plan.cc.o"
  "CMakeFiles/pep_profile.dir/instr_plan.cc.o.d"
  "CMakeFiles/pep_profile.dir/numbering.cc.o"
  "CMakeFiles/pep_profile.dir/numbering.cc.o.d"
  "CMakeFiles/pep_profile.dir/path_profile.cc.o"
  "CMakeFiles/pep_profile.dir/path_profile.cc.o.d"
  "CMakeFiles/pep_profile.dir/pdag.cc.o"
  "CMakeFiles/pep_profile.dir/pdag.cc.o.d"
  "CMakeFiles/pep_profile.dir/reconstruct.cc.o"
  "CMakeFiles/pep_profile.dir/reconstruct.cc.o.d"
  "CMakeFiles/pep_profile.dir/spanning_placement.cc.o"
  "CMakeFiles/pep_profile.dir/spanning_placement.cc.o.d"
  "libpep_profile.a"
  "libpep_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pep_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
