
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profile/edge_profile.cc" "src/profile/CMakeFiles/pep_profile.dir/edge_profile.cc.o" "gcc" "src/profile/CMakeFiles/pep_profile.dir/edge_profile.cc.o.d"
  "/root/repo/src/profile/instr_plan.cc" "src/profile/CMakeFiles/pep_profile.dir/instr_plan.cc.o" "gcc" "src/profile/CMakeFiles/pep_profile.dir/instr_plan.cc.o.d"
  "/root/repo/src/profile/numbering.cc" "src/profile/CMakeFiles/pep_profile.dir/numbering.cc.o" "gcc" "src/profile/CMakeFiles/pep_profile.dir/numbering.cc.o.d"
  "/root/repo/src/profile/path_profile.cc" "src/profile/CMakeFiles/pep_profile.dir/path_profile.cc.o" "gcc" "src/profile/CMakeFiles/pep_profile.dir/path_profile.cc.o.d"
  "/root/repo/src/profile/pdag.cc" "src/profile/CMakeFiles/pep_profile.dir/pdag.cc.o" "gcc" "src/profile/CMakeFiles/pep_profile.dir/pdag.cc.o.d"
  "/root/repo/src/profile/reconstruct.cc" "src/profile/CMakeFiles/pep_profile.dir/reconstruct.cc.o" "gcc" "src/profile/CMakeFiles/pep_profile.dir/reconstruct.cc.o.d"
  "/root/repo/src/profile/spanning_placement.cc" "src/profile/CMakeFiles/pep_profile.dir/spanning_placement.cc.o" "gcc" "src/profile/CMakeFiles/pep_profile.dir/spanning_placement.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bytecode/CMakeFiles/pep_bytecode.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/pep_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pep_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
