# Empty compiler generated dependencies file for pep_support.
# This may be replaced when dependencies are built.
