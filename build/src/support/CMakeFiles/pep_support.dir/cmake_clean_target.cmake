file(REMOVE_RECURSE
  "libpep_support.a"
)
