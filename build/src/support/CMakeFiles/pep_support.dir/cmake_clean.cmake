file(REMOVE_RECURSE
  "CMakeFiles/pep_support.dir/panic.cc.o"
  "CMakeFiles/pep_support.dir/panic.cc.o.d"
  "CMakeFiles/pep_support.dir/rng.cc.o"
  "CMakeFiles/pep_support.dir/rng.cc.o.d"
  "CMakeFiles/pep_support.dir/stats.cc.o"
  "CMakeFiles/pep_support.dir/stats.cc.o.d"
  "CMakeFiles/pep_support.dir/strings.cc.o"
  "CMakeFiles/pep_support.dir/strings.cc.o.d"
  "CMakeFiles/pep_support.dir/table.cc.o"
  "CMakeFiles/pep_support.dir/table.cc.o.d"
  "libpep_support.a"
  "libpep_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pep_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
