file(REMOVE_RECURSE
  "CMakeFiles/vm_test.dir/vm/advice_io_test.cc.o"
  "CMakeFiles/vm_test.dir/vm/advice_io_test.cc.o.d"
  "CMakeFiles/vm_test.dir/vm/backedge_yieldpoints_test.cc.o"
  "CMakeFiles/vm_test.dir/vm/backedge_yieldpoints_test.cc.o.d"
  "CMakeFiles/vm_test.dir/vm/call_graph_test.cc.o"
  "CMakeFiles/vm_test.dir/vm/call_graph_test.cc.o.d"
  "CMakeFiles/vm_test.dir/vm/inliner_test.cc.o"
  "CMakeFiles/vm_test.dir/vm/inliner_test.cc.o.d"
  "CMakeFiles/vm_test.dir/vm/interpreter_test.cc.o"
  "CMakeFiles/vm_test.dir/vm/interpreter_test.cc.o.d"
  "CMakeFiles/vm_test.dir/vm/machine_test.cc.o"
  "CMakeFiles/vm_test.dir/vm/machine_test.cc.o.d"
  "CMakeFiles/vm_test.dir/vm/osr_test.cc.o"
  "CMakeFiles/vm_test.dir/vm/osr_test.cc.o.d"
  "CMakeFiles/vm_test.dir/vm/tiers_test.cc.o"
  "CMakeFiles/vm_test.dir/vm/tiers_test.cc.o.d"
  "vm_test"
  "vm_test.pdb"
  "vm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
