file(REMOVE_RECURSE
  "libpep_test_common.a"
)
