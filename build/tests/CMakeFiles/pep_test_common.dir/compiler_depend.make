# Empty compiler generated dependencies file for pep_test_common.
# This may be replaced when dependencies are built.
