
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/fixtures.cc" "tests/CMakeFiles/pep_test_common.dir/common/fixtures.cc.o" "gcc" "tests/CMakeFiles/pep_test_common.dir/common/fixtures.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/pep_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/bytecode/CMakeFiles/pep_bytecode.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pep_support.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/pep_cfg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
