file(REMOVE_RECURSE
  "CMakeFiles/pep_test_common.dir/common/fixtures.cc.o"
  "CMakeFiles/pep_test_common.dir/common/fixtures.cc.o.d"
  "libpep_test_common.a"
  "libpep_test_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pep_test_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
