file(REMOVE_RECURSE
  "CMakeFiles/profile_test.dir/profile/instr_plan_test.cc.o"
  "CMakeFiles/profile_test.dir/profile/instr_plan_test.cc.o.d"
  "CMakeFiles/profile_test.dir/profile/numbering_test.cc.o"
  "CMakeFiles/profile_test.dir/profile/numbering_test.cc.o.d"
  "CMakeFiles/profile_test.dir/profile/pdag_test.cc.o"
  "CMakeFiles/profile_test.dir/profile/pdag_test.cc.o.d"
  "CMakeFiles/profile_test.dir/profile/profiles_test.cc.o"
  "CMakeFiles/profile_test.dir/profile/profiles_test.cc.o.d"
  "CMakeFiles/profile_test.dir/profile/reconstruct_test.cc.o"
  "CMakeFiles/profile_test.dir/profile/reconstruct_test.cc.o.d"
  "CMakeFiles/profile_test.dir/profile/spanning_test.cc.o"
  "CMakeFiles/profile_test.dir/profile/spanning_test.cc.o.d"
  "profile_test"
  "profile_test.pdb"
  "profile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
