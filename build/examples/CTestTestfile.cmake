# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_profile_explorer "/root/repo/build/examples/profile_explorer")
set_tests_properties(example_profile_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_profile_explorer_dot "/root/repo/build/examples/profile_explorer" "--dot")
set_tests_properties(example_profile_explorer_dot PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pep_run "/root/repo/build/examples/pep_run" "/root/repo/examples/programs/rle.pepasm" "--tick" "150000" "--iterations" "1")
set_tests_properties(example_pep_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pep_run_blpp "/root/repo/build/examples/pep_run" "/root/repo/examples/programs/sort.pepasm" "--profiler" "blpp" "--tick" "150000" "--iterations" "1")
set_tests_properties(example_pep_run_blpp PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pep_run_lexer "/root/repo/build/examples/pep_run" "/root/repo/examples/programs/lexer.pepasm" "--tick" "150000" "--iterations" "1")
set_tests_properties(example_pep_run_lexer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
