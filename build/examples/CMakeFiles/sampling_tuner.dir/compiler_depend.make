# Empty compiler generated dependencies file for sampling_tuner.
# This may be replaced when dependencies are built.
