file(REMOVE_RECURSE
  "CMakeFiles/sampling_tuner.dir/sampling_tuner.cpp.o"
  "CMakeFiles/sampling_tuner.dir/sampling_tuner.cpp.o.d"
  "sampling_tuner"
  "sampling_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampling_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
