file(REMOVE_RECURSE
  "CMakeFiles/pep_run.dir/pep_run.cpp.o"
  "CMakeFiles/pep_run.dir/pep_run.cpp.o.d"
  "pep_run"
  "pep_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pep_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
