# Empty dependencies file for pep_run.
# This may be replaced when dependencies are built.
