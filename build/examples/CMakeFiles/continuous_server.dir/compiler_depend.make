# Empty compiler generated dependencies file for continuous_server.
# This may be replaced when dependencies are built.
