file(REMOVE_RECURSE
  "CMakeFiles/continuous_server.dir/continuous_server.cpp.o"
  "CMakeFiles/continuous_server.dir/continuous_server.cpp.o.d"
  "continuous_server"
  "continuous_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/continuous_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
