/**
 * @file
 * pep-fuzz: differential fuzzing driver. Generates verifier-clean
 * random programs biased toward the shapes that stress path profiling
 * (nested loops, shared loop headers, switch fans, early returns, call
 * chains), runs each through the exact oracle, full BLPP (flat and
 * nested dispatch) and several PEP sampling configurations on one
 * deterministic Machine, and cross-checks the oracle invariants. On a
 * violation the built-in shrinker reduces the program while it still
 * reproduces and writes a minimal .pepasm reproducer to the corpus
 * directory, which the fuzz_regression_test replays forever.
 *
 * Usage:
 *   pep_fuzz [options]
 *     --iters N            programs to generate (default 200)
 *     --seed S             base seed (default 1)
 *     --seed-from-run-id   derive the seed from $GITHUB_RUN_ID
 *     --configs a,b,c      comma-separated standard configs (default
 *                          all: headersplit-direct, smart-spanning-osr,
 *                          backedge, inline-smart, kiter2-smart-osr,
 *                          kiter4-backedge, kiter4-inline)
 *     --kiter N            override every selected config's k-BLPP
 *                          window length (default: $PEP_KITER if set,
 *                          else each config's own kIterations). Avoid
 *                          with --corpus-dir: corpus replay rebuilds
 *                          options from the config name alone
 *     --loop-bias X        generator loop-heaviness in [0,1] (deeper
 *                          nesting, irregular trips, shared headers);
 *                          0 is the legacy byte-identical stream
 *     --inject KIND        none | stale-flat | corrupt-increment |
 *                          truncated-window | ... — deliberately
 *                          corrupt the full profiler (harness
 *                          self-test)
 *     --expect-caught      exit 0 iff at least one violation was found
 *     --no-shrink          skip reduction of failing programs
 *     --corpus-dir DIR     where to write reproducers (none by default)
 *     --jobs N             worker threads (default: PEP_BENCH_THREADS
 *                          or hardware concurrency)
 *     --verbose            per-iteration progress
 *
 * Exit status: 0 clean (or caught, with --expect-caught), 1 violations
 * (or nothing caught under --expect-caught), 2 usage errors.
 *
 * A generated program that blows the interpreter's per-iteration
 * cycle budget even with injection and fusion stripped (the two knobs
 * contracted not to change cycles) is skipped, not reported — deeply
 * loop-biased generation occasionally outruns the runaway guard, and
 * such a program proves nothing. Skips are counted and printed, never
 * silent; a budget blowup that appears only WITH injection or fusion
 * is still a violation.
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "support/panic.hh"
#include "testing/differ.hh"
#include "testing/generator.hh"
#include "testing/shrink.hh"
#include "workload/parallel_runner.hh"

namespace {

using pep::testing::DiffOptions;
using pep::testing::DiffReport;
using pep::testing::InjectKind;

struct Options
{
    std::uint64_t iters = 200;
    std::uint64_t seed = 1;
    bool seedFromRunId = false;
    std::vector<std::string> configs;
    std::uint32_t kiter = 0; // 0 = keep each config's kIterations
    double loopBias = 0.0;
    InjectKind inject = InjectKind::None;
    bool expectCaught = false;
    bool shrink = true;
    std::string corpusDir;
    unsigned jobs = 0;
    bool verbose = false;
};

bool
parseArgs(int argc, char **argv, Options &options)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&](std::uint64_t &out) {
            if (i + 1 >= argc)
                return false;
            out = std::strtoull(argv[++i], nullptr, 10);
            return true;
        };
        if (arg == "--iters") {
            if (!next(options.iters))
                return false;
        } else if (arg == "--seed") {
            if (!next(options.seed))
                return false;
        } else if (arg == "--seed-from-run-id") {
            options.seedFromRunId = true;
        } else if (arg == "--configs") {
            if (i + 1 >= argc)
                return false;
            std::istringstream list(argv[++i]);
            std::string name;
            while (std::getline(list, name, ','))
                if (!name.empty())
                    options.configs.push_back(name);
        } else if (arg == "--kiter") {
            std::uint64_t kiter = 0;
            if (!next(kiter))
                return false;
            options.kiter = static_cast<std::uint32_t>(kiter);
        } else if (arg == "--loop-bias") {
            if (i + 1 >= argc)
                return false;
            options.loopBias = std::strtod(argv[++i], nullptr);
            if (options.loopBias < 0.0 || options.loopBias > 1.0)
                return false;
        } else if (arg == "--inject") {
            if (i + 1 >= argc ||
                !pep::testing::parseInjectKind(argv[++i],
                                               options.inject)) {
                return false;
            }
        } else if (arg == "--expect-caught") {
            options.expectCaught = true;
        } else if (arg == "--no-shrink") {
            options.shrink = false;
        } else if (arg == "--corpus-dir") {
            if (i + 1 >= argc)
                return false;
            options.corpusDir = argv[++i];
        } else if (arg == "--jobs") {
            std::uint64_t jobs = 0;
            if (!next(jobs))
                return false;
            options.jobs = static_cast<unsigned>(jobs);
        } else if (arg == "--verbose") {
            options.verbose = true;
        } else {
            std::fprintf(stderr, "pep-fuzz: unknown option '%s'\n",
                         arg.c_str());
            return false;
        }
    }
    return true;
}

/** SplitMix64 finalizer: independent per-iteration seeds. */
std::uint64_t
mixSeed(std::uint64_t base, std::uint64_t index)
{
    std::uint64_t z = base + 0x9e3779b97f4a7c15ull * (index + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Outcome of one generated program across the config sweep. */
struct IterOutcome
{
    std::uint64_t seed = 0;
    bool violated = false;
    std::string config;
    std::string firstViolation;
    std::size_t instrumentedVersions = 0;
    std::uint64_t oracleSegments = 0;
    std::size_t skippedConfigs = 0;
};

/** One guarded differ run: the report, or a skip verdict. */
struct GuardedResult
{
    DiffReport report;
    bool skipped = false;
};

bool
isCycleBudgetFatal(const char *what)
{
    return std::string_view(what).find("exceeded cycle budget") !=
           std::string_view::npos;
}

/**
 * True when the program blows the interpreter's runaway guard under
 * this config even with injection and fusion stripped — the only two
 * knobs contracted not to change simulated cycles. Such a program is
 * intrinsically too big for the per-iteration budget (deeply nested
 * loop-biased generation), so a budget fatal under the full options
 * proves nothing about the harness.
 */
bool
isIntrinsicRunaway(const pep::bytecode::Program &program,
                   const DiffOptions &opts)
{
    DiffOptions probe = opts;
    probe.inject = pep::testing::InjectKind::None;
    probe.fuse = {};
    try {
        (void)pep::testing::runDiff(program, probe);
        return false;
    } catch (const pep::support::FatalError &e) {
        return isCycleBudgetFatal(e.what());
    } catch (const pep::support::PanicError &) {
        return false;
    }
}

/**
 * Run one config, folding harness crashes into violations. A
 * cycle-budget runaway is reported only when the clean probe stays
 * inside the budget (then injection or fusion caused it — a genuine
 * finding); an intrinsically runaway program is skipped instead, and
 * the skip is counted so coverage loss is never silent.
 */
GuardedResult
runGuarded(const pep::bytecode::Program &program,
           const DiffOptions &opts)
{
    GuardedResult result;
    try {
        result.report = pep::testing::runDiff(program, opts);
    } catch (const pep::support::PanicError &e) {
        result.report.violations.push_back(std::string("panic: ") +
                                           e.what());
    } catch (const pep::support::FatalError &e) {
        if (isCycleBudgetFatal(e.what()) &&
            isIntrinsicRunaway(program, opts)) {
            result.skipped = true;
            return result;
        }
        result.report.violations.push_back(std::string("fatal: ") +
                                           e.what());
    }
    return result;
}

bool
writeCorpusFile(const Options &options,
                const pep::bytecode::Program &program,
                const std::string &config, std::uint64_t seed,
                const std::string &violation)
{
    std::error_code ec;
    std::filesystem::create_directories(options.corpusDir, ec);
    std::ostringstream name;
    name << config << '-' << pep::testing::injectKindName(options.inject)
         << "-s" << seed << ".pepasm";
    const std::filesystem::path path =
        std::filesystem::path(options.corpusDir) / name.str();
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "pep-fuzz: cannot write %s\n",
                     path.string().c_str());
        return false;
    }
    out << pep::testing::formatCorpusFile(program, config, seed,
                                          options.inject, violation);
    std::fprintf(stderr, "pep-fuzz: reproducer written to %s\n",
                 path.string().c_str());
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    Options options;
    if (!parseArgs(argc, argv, options)) {
        std::fprintf(stderr, "pep-fuzz: bad usage (see header)\n");
        return 2;
    }

    if (options.seedFromRunId) {
        const char *run_id = std::getenv("GITHUB_RUN_ID");
        if (run_id && *run_id)
            options.seed = std::strtoull(run_id, nullptr, 10);
    }
    options.iters = pep::testing::fuzzItersFromEnv(options.iters);
    if (options.kiter == 0)
        options.kiter = pep::testing::kIterationsFromEnv(0);

    std::vector<const DiffOptions *> configs;
    if (options.configs.empty()) {
        for (const DiffOptions &config :
             pep::testing::standardConfigs()) {
            configs.push_back(&config);
        }
    } else {
        for (const std::string &name : options.configs) {
            const DiffOptions *config =
                pep::testing::findConfig(name);
            if (!config) {
                std::fprintf(stderr,
                             "pep-fuzz: unknown config '%s'\n",
                             name.c_str());
                return 2;
            }
            configs.push_back(config);
        }
    }

    std::vector<IterOutcome> outcomes(options.iters);
    const pep::workload::ParallelRunner runner(options.jobs);
    runner.run(options.iters, [&](std::size_t index) {
        IterOutcome &outcome = outcomes[index];
        outcome.seed = mixSeed(options.seed, index);
        pep::testing::FuzzSpec spec;
        spec.seed = outcome.seed;
        spec.loopBias = options.loopBias;
        const pep::bytecode::Program program =
            pep::testing::generateProgram(spec);
        for (const DiffOptions *config : configs) {
            DiffOptions opts = *config;
            opts.inject = options.inject;
            if (options.kiter > 0)
                opts.kIterations = options.kiter;
            const GuardedResult guarded = runGuarded(program, opts);
            if (guarded.skipped) {
                ++outcome.skippedConfigs;
                continue;
            }
            const DiffReport &report = guarded.report;
            outcome.instrumentedVersions +=
                report.instrumentedVersions;
            outcome.oracleSegments += report.oracleSegments;
            if (!report.ok()) {
                outcome.violated = true;
                outcome.config = config->name;
                outcome.firstViolation = report.violations.front();
                break;
            }
        }
    });

    std::size_t total_instrumented = 0;
    std::uint64_t total_segments = 0;
    std::size_t total_skipped = 0;
    const IterOutcome *first_failure = nullptr;
    for (const IterOutcome &outcome : outcomes) {
        total_instrumented += outcome.instrumentedVersions;
        total_segments += outcome.oracleSegments;
        total_skipped += outcome.skippedConfigs;
        if (outcome.violated && !first_failure)
            first_failure = &outcome;
        if (options.verbose) {
            std::fprintf(stderr,
                         "pep-fuzz: seed %llu: %zu versions, %llu "
                         "segments%s%s\n",
                         static_cast<unsigned long long>(outcome.seed),
                         outcome.instrumentedVersions,
                         static_cast<unsigned long long>(
                             outcome.oracleSegments),
                         outcome.violated ? " VIOLATION in " : "",
                         outcome.violated ? outcome.config.c_str()
                                          : "");
        }
    }

    std::fprintf(stderr,
                 "pep-fuzz: %llu programs x %zu configs, %zu "
                 "instrumented versions, %llu oracle segments\n",
                 static_cast<unsigned long long>(options.iters),
                 configs.size(), total_instrumented,
                 static_cast<unsigned long long>(total_segments));
    if (total_skipped > 0) {
        std::fprintf(stderr,
                     "pep-fuzz: %zu config runs skipped "
                     "(intrinsically over the cycle budget)\n",
                     total_skipped);
    }

    if (total_instrumented == 0) {
        std::fprintf(stderr,
                     "pep-fuzz: coverage failure: no generated "
                     "program produced an instrumented version\n");
        return 1;
    }

    if (!first_failure) {
        if (options.expectCaught) {
            std::fprintf(stderr,
                         "pep-fuzz: expected the injected bug to be "
                         "caught, but every run was clean\n");
            return 1;
        }
        std::fprintf(stderr, "pep-fuzz: all runs clean\n");
        return 0;
    }

    std::fprintf(stderr, "pep-fuzz: seed %llu config %s: %s\n",
                 static_cast<unsigned long long>(first_failure->seed),
                 first_failure->config.c_str(),
                 first_failure->firstViolation.c_str());

    if (options.shrink || !options.corpusDir.empty()) {
        pep::testing::FuzzSpec spec;
        spec.seed = first_failure->seed;
        spec.loopBias = options.loopBias;
        pep::bytecode::Program failing =
            pep::testing::generateProgram(spec);
        const DiffOptions *config =
            pep::testing::findConfig(first_failure->config);
        DiffOptions opts = *config;
        opts.inject = options.inject;
        if (options.kiter > 0)
            opts.kIterations = options.kiter;
        std::string violation = first_failure->firstViolation;
        if (options.shrink) {
            const pep::testing::FailPredicate still_fails =
                [&](const pep::bytecode::Program &candidate) {
                    try {
                        return !pep::testing::runDiff(candidate, opts)
                                    .ok();
                    } catch (const pep::support::PanicError &) {
                        // A blown profiling assertion is still a find.
                        return true;
                    } catch (const pep::support::FatalError &) {
                        // Runaway loop / VM limit: the reduction broke
                        // the program, not the profilers — reject.
                        return false;
                    }
                };
            const pep::testing::ShrinkResult shrunk =
                pep::testing::shrinkProgram(failing, still_fails);
            std::fprintf(
                stderr,
                "pep-fuzz: shrunk to %zu methods in %zu attempts\n",
                shrunk.program.methods.size(), shrunk.attempts);
            failing = shrunk.program;
            const GuardedResult final_result =
                runGuarded(failing, opts);
            if (!final_result.skipped && !final_result.report.ok())
                violation = final_result.report.violations.front();
        }
        if (!options.corpusDir.empty()) {
            writeCorpusFile(options, failing, first_failure->config,
                            first_failure->seed, violation);
        }
    }

    return options.expectCaught ? 0 : 1;
}
