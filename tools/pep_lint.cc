/**
 * @file
 * pep-lint: static checker for .pepasm programs and their profiling
 * instrumentation. Assembles each input file, runs the multi-diagnostic
 * bytecode verifier, the dataflow lints (dead stores, unreachable code,
 * abstract stack/constant findings), and the instrumentation-plan
 * checker over every (DAG mode, numbering scheme, placement)
 * configuration the profiling pipeline can produce.
 *
 * Usage:
 *   pep_lint [options] <program.pepasm>...
 *     --json          emit diagnostics as a JSON array
 *     --werror        exit nonzero on warnings too
 *     --no-plan       skip the instrumentation-plan checker
 *     --no-passes     skip the dataflow lints
 *     --verify        also run the symbolic engine-equivalence pass
 *                     (analysis/verify/engine_equiv.hh)
 *     --quiet         print errors only (text mode)
 *     --max-paths N   path-enumeration budget for the semantic proof
 *                     (default 4096)
 *
 * Findings are emitted in a deterministic order — sorted by (file,
 * method, version, pass, check, location) — so CI diffs are stable
 * regardless of pass scheduling.
 *
 * Exit status: 0 clean, 1 diagnostics at the failing severity, 2 usage
 * or file errors.
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/lint.hh"
#include "bytecode/assembler.hh"

namespace {

struct Options
{
    std::vector<std::string> files;
    bool json = false;
    bool werror = false;
    bool quiet = false;
    pep::analysis::LintOptions lint;
};

bool
parseArgs(int argc, char **argv, Options &options)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            options.json = true;
        } else if (arg == "--werror") {
            options.werror = true;
        } else if (arg == "--quiet") {
            options.quiet = true;
        } else if (arg == "--no-plan") {
            options.lint.runPlanChecks = false;
        } else if (arg == "--no-passes") {
            options.lint.runMethodPasses = false;
        } else if (arg == "--verify") {
            options.lint.runVerifyPasses = true;
        } else if (arg == "--max-paths") {
            if (i + 1 >= argc)
                return false;
            options.lint.simulateLimit = static_cast<std::uint64_t>(
                std::strtoull(argv[++i], nullptr, 10));
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "pep-lint: unknown option '%s'\n",
                         arg.c_str());
            return false;
        } else {
            options.files.push_back(arg);
        }
    }
    return !options.files.empty();
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    out = buffer.str();
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    Options options;
    if (!parseArgs(argc, argv, options)) {
        std::fprintf(
            stderr,
            "usage: pep_lint [--json] [--werror] [--quiet] [--no-plan]"
            " [--no-passes] [--verify] [--max-paths N]"
            " <program.pepasm>...\n");
        return 2;
    }

    using pep::analysis::Diagnostic;
    using pep::analysis::Severity;

    bool io_error = false;
    std::size_t errors = 0, warnings = 0;
    std::vector<std::pair<std::string, Diagnostic>> findings;

    for (const std::string &path : options.files) {
        std::string source;
        if (!readFile(path, source)) {
            std::fprintf(stderr, "pep-lint: cannot read '%s'\n",
                         path.c_str());
            io_error = true;
            continue;
        }

        pep::analysis::DiagnosticList diagnostics;
        pep::bytecode::AssembleResult assembled =
            pep::bytecode::assemble(source);
        if (!assembled.ok) {
            diagnostics.report(Severity::Error, "assemble", "",
                               assembled.error);
        } else {
            diagnostics = pep::analysis::lintProgram(assembled.program,
                                                     options.lint);
        }

        errors += diagnostics.errorCount();
        warnings += diagnostics.warningCount();
        for (const Diagnostic &d : diagnostics.all())
            findings.emplace_back(path, d);
    }

    // Deterministic output order regardless of pass scheduling.
    std::stable_sort(
        findings.begin(), findings.end(),
        [](const std::pair<std::string, Diagnostic> &a,
           const std::pair<std::string, Diagnostic> &b) {
            if (a.first != b.first)
                return a.first < b.first;
            return pep::analysis::diagnosticLess(a.second, b.second);
        });

    if (options.json) {
        // One top-level array; each entry gains a "file" key.
        std::printf("[");
        bool first = true;
        for (const auto &[path, d] : findings) {
            std::vector<Diagnostic> one{d};
            std::string body = pep::analysis::diagnosticsToJson(one);
            // Reuse the single-entry rendering, injecting the file.
            const std::size_t brace = body.find('{');
            const std::size_t end = body.rfind('}');
            std::printf("%s\n  {\"file\": \"%s\", %s}",
                        first ? "" : ",", path.c_str(),
                        body.substr(brace + 1, end - brace - 1)
                            .c_str());
            first = false;
        }
        std::printf("\n]\n");
    } else {
        for (const auto &[path, d] : findings) {
            if (options.quiet && d.severity != Severity::Error)
                continue;
            std::printf("%s: %s\n", path.c_str(),
                        pep::analysis::formatDiagnostic(d).c_str());
        }
        if (!options.quiet) {
            std::printf("pep-lint: %zu file(s), %zu error(s), "
                        "%zu warning(s)\n",
                        options.files.size(), errors, warnings);
        }
    }

    if (io_error)
        return 2;
    if (errors > 0 || (options.werror && warnings > 0))
        return 1;
    return 0;
}
