/**
 * @file
 * pep-verify: symbolic engine-equivalence and profile-realizability
 * verifier for .pepasm programs (docs/ANALYSIS.md). Assembles each
 * input, proves the threaded engine's template translation equivalent
 * to the bytecode for every method (pass 1), then — unless
 * --static-only — runs the program under the configured engine with a
 * full path profiler and a PEP(1,1) sampler attached and verifies the
 * resulting machine state and recorded profiles:
 *
 *  - engine equivalence of every installed version (baked layouts
 *    included) plus cached-stream and mutation-journal audits;
 *  - flat-mirror audits of every instrumentation plan;
 *  - realizability of every recorded profile: ground-truth edge
 *    counts (flow conservation incl. headers), PEP's sampled
 *    continuous edge profile and the full profiler's path-derived
 *    edge profile (conservation at non-header blocks, walk bounds),
 *    and both engines' path profiles (numbering range,
 *    reconstructibility, sample budgets).
 *
 * Usage:
 *   pep_verify [options] <program.pepasm>...
 *     --json          emit diagnostics as a JSON array
 *     --werror        exit nonzero on warnings too
 *     --quiet         print errors only (text mode)
 *     --static-only   skip the dynamic run (pass 1 + bytecode verify)
 *     --iters N       iterations of the dynamic run (default 3)
 *     --kiter N       k-BLPP window length of the dynamic profilers
 *                     (default 1 = classic BLPP); path profiles are
 *                     then checked against the composite k-path id
 *                     space, including per-digit reconstruction and
 *                     window chaining (docs/KBLPP.md)
 *
 * Exit status: 0 clean, 1 diagnostics at the failing severity, 2 usage
 * or file errors.
 */

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/diagnostics.hh"
#include "analysis/plan_check.hh"
#include "analysis/verify/invariants.hh"
#include "analysis/verify/realizability.hh"
#include "analysis/verify/verify.hh"
#include "bytecode/assembler.hh"
#include "core/baseline_profilers.hh"
#include "core/pep_profiler.hh"
#include "core/sampling.hh"
#include "support/panic.hh"
#include "vm/machine.hh"

namespace {

struct Options
{
    std::vector<std::string> files;
    bool json = false;
    bool werror = false;
    bool quiet = false;
    bool staticOnly = false;
    std::uint32_t iters = 3;
    std::uint32_t kiter = 1;
};

bool
parseArgs(int argc, char **argv, Options &options)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            options.json = true;
        } else if (arg == "--werror") {
            options.werror = true;
        } else if (arg == "--quiet") {
            options.quiet = true;
        } else if (arg == "--static-only") {
            options.staticOnly = true;
        } else if (arg == "--iters") {
            if (i + 1 >= argc)
                return false;
            options.iters = static_cast<std::uint32_t>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--kiter") {
            if (i + 1 >= argc)
                return false;
            options.kiter = static_cast<std::uint32_t>(
                std::strtoul(argv[++i], nullptr, 10));
            if (options.kiter == 0)
                return false;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "pep-verify: unknown option '%s'\n",
                         arg.c_str());
            return false;
        } else {
            options.files.push_back(arg);
        }
    }
    return !options.files.empty();
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    out = buffer.str();
    return true;
}

/** Audit one path engine's plans, k-path id spaces and path
 *  profiles. */
void
verifyEngineProfiles(const pep::vm::Machine &machine,
                     const pep::core::PathEngine &engine,
                     const std::string &what, std::uint64_t max_total,
                     pep::analysis::DiagnosticList &diagnostics)
{
    pep::analysis::RealizabilityOptions opts;
    opts.what = what;
    opts.walkMultiplicity = engine.kIterations();
    for (const auto &[key, vp] : engine.versionProfiles()) {
        const std::string &name =
            machine.program().methods[key.first].name;
        pep::analysis::auditPlanMirror(vp->state->plan, name,
                                       /*has_version=*/true, key.second,
                                       diagnostics);
        pep::analysis::KPathCheckInput kinput;
        kinput.plan = &vp->state->plan;
        kinput.kpath = &vp->state->kpath;
        kinput.kRequested = engine.kIterations();
        kinput.methodName = name;
        pep::analysis::checkKPathScheme(kinput, diagnostics);
        pep::analysis::checkPathProfileRealizability(
            vp->state->plan, *vp->state->reconstructor, vp->paths, opts,
            max_total, name, /*has_version=*/true, key.second,
            diagnostics, &vp->state->kpath);
    }
}

/** Run the program with profilers attached and verify machine state
 *  and every recorded profile. */
void
dynamicVerify(const pep::bytecode::Program &program,
              std::uint32_t iters, std::uint32_t kiter,
              pep::analysis::DiagnosticList &diagnostics)
{
    using pep::analysis::Severity;

    pep::vm::SimParams params;
    params.tickCycles = 9'000;
    params.maxCyclesPerIteration = 50'000'000;

    pep::vm::Machine machine(program, params);

    pep::core::FullPathProfiler full(
        machine, pep::profile::DagMode::HeaderSplit,
        /*charge_costs=*/false, pep::profile::NumberingScheme::BallLarus,
        pep::core::PathStoreKind::Array,
        pep::profile::PlacementKind::Direct, kiter);
    machine.addHooks(&full);
    machine.addCompileObserver(&full);

    pep::core::SimplifiedArnoldGrove controller(1, 1);
    pep::core::PepOptions pep_options;
    pep_options.kIterations = kiter;
    pep::core::PepProfiler pep(machine, controller, pep_options);
    machine.addHooks(&pep);
    machine.addCompileObserver(&pep);

    try {
        for (std::uint32_t it = 0; it < iters; ++it)
            machine.runIteration();
    } catch (const pep::support::PanicError &e) {
        diagnostics.report(Severity::Error, "run", "",
                           std::string("panic: ") + e.what());
        return;
    } catch (const pep::support::FatalError &e) {
        diagnostics.report(Severity::Error, "run", "",
                           std::string("fatal: ") + e.what());
        return;
    }

    // Installed versions: equivalence, cached streams, journal.
    pep::analysis::verifyMachine(machine, diagnostics);

    // Plans and path profiles of both engines.
    verifyEngineProfiles(machine, full, "full-path profile",
                         full.pathsStored(), diagnostics);
    verifyEngineProfiles(machine, pep, "pep-sampled profile",
                         pep.pepStats().samplesRecorded, diagnostics);

    // Ground truth: complete frames, so conservation holds at loop
    // headers too.
    {
        pep::analysis::RealizabilityOptions opts;
        opts.what = "truth edges";
        opts.requireHeaderConservation = true;
        pep::analysis::checkEdgeSetRealizability(
            machine, machine.truthEdges(), opts, diagnostics);
    }
    // PEP's continuous edge profile: sums of sampled walks (k-windows
    // may cross one edge up to k times).
    {
        pep::analysis::RealizabilityOptions opts;
        opts.what = "pep-sampled edges";
        opts.maxWalks = pep.pepStats().samplesRecorded;
        opts.walkMultiplicity = kiter;
        pep::analysis::checkEdgeSetRealizability(
            machine, pep.edgeProfile(), opts, diagnostics);
    }
    // The full profiler's path-derived edge profile.
    {
        pep::analysis::RealizabilityOptions opts;
        opts.what = "path-derived edges";
        opts.maxWalks = full.pathsStored();
        opts.walkMultiplicity = kiter;
        const pep::profile::EdgeProfileSet derived =
            pep::core::edgeProfileFromPaths(machine, full);
        pep::analysis::checkEdgeSetRealizability(machine, derived, opts,
                                                 diagnostics);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Options options;
    if (!parseArgs(argc, argv, options)) {
        std::fprintf(
            stderr,
            "usage: pep_verify [--json] [--werror] [--quiet]"
            " [--static-only] [--iters N] [--kiter N]"
            " <program.pepasm>...\n");
        return 2;
    }

    using pep::analysis::Diagnostic;
    using pep::analysis::Severity;

    bool io_error = false;
    std::size_t errors = 0, warnings = 0;
    std::vector<std::pair<std::string, Diagnostic>> findings;

    for (const std::string &path : options.files) {
        std::string source;
        if (!readFile(path, source)) {
            std::fprintf(stderr, "pep-verify: cannot read '%s'\n",
                         path.c_str());
            io_error = true;
            continue;
        }

        pep::analysis::DiagnosticList diagnostics;
        pep::bytecode::AssembleResult assembled =
            pep::bytecode::assemble(source);
        if (!assembled.ok) {
            diagnostics.report(Severity::Error, "assemble", "",
                               assembled.error);
        } else {
            const bool clean = pep::analysis::verifyProgram(
                assembled.program, diagnostics);
            if (clean && !options.staticOnly) {
                dynamicVerify(assembled.program, options.iters,
                              options.kiter, diagnostics);
            }
        }

        errors += diagnostics.errorCount();
        warnings += diagnostics.warningCount();
        std::vector<Diagnostic> sorted = diagnostics.all();
        pep::analysis::sortDiagnostics(sorted);
        for (Diagnostic &d : sorted)
            findings.emplace_back(path, std::move(d));
    }

    if (options.json) {
        // One top-level array; each entry gains a "file" key.
        std::printf("[");
        bool first = true;
        for (const auto &[path, d] : findings) {
            std::vector<Diagnostic> one{d};
            std::string body = pep::analysis::diagnosticsToJson(one);
            const std::size_t brace = body.find('{');
            const std::size_t end = body.rfind('}');
            std::printf("%s\n  {\"file\": \"%s\", %s}",
                        first ? "" : ",", path.c_str(),
                        body.substr(brace + 1, end - brace - 1)
                            .c_str());
            first = false;
        }
        std::printf("\n]\n");
    } else {
        for (const auto &[path, d] : findings) {
            if (options.quiet && d.severity != Severity::Error)
                continue;
            std::printf("%s: %s\n", path.c_str(),
                        pep::analysis::formatDiagnostic(d).c_str());
        }
        if (!options.quiet) {
            std::printf("pep-verify: %zu file(s), %zu error(s), "
                        "%zu warning(s)\n",
                        options.files.size(), errors, warnings);
        }
    }

    if (io_error)
        return 2;
    if (errors > 0 || (options.werror && warnings > 0))
        return 1;
    return 0;
}
