/**
 * @file
 * pep_runtime: command-line driver for the concurrent profiling
 * runtime (src/runtime/). Three modes:
 *
 *   coop        run a generated request stream under the cooperative
 *               scheduler with K virtual mutator threads and a PEP
 *               profiler; print cycles, switches, and sample counts.
 *               Runs twice and verifies the byte-determinism contract.
 *   throughput  shard the stream over N OS worker threads with all
 *               three aggregation strategies (sharded, mutex, SPSC
 *               ring transport); print requests/second, drop
 *               accounting and window staleness, and verify the
 *               merged profiles match count-for-count (ring must
 *               match whenever its drop count is zero, and its
 *               produced == consumed + dropped conservation law must
 *               hold always).
 *   differ      run one (or all) of the standard multi-threaded
 *               differential configurations from src/testing/differ.
 *
 * Usage:
 *   pep_runtime [--mode coop|throughput|differ] [--threads K]
 *               [--workers N] [--requests R] [--seed S] [--epoch E]
 *               [--config name|all] [--ring-capacity C] [--decay D]
 *               [--inject kind]   (differ mode: fault injection, e.g.
 *                                  ring-lost-sample — must FAIL)
 *
 * Exits nonzero when any invariant check fails.
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>
#include <string>

#include "core/pep_profiler.hh"
#include "core/sampling.hh"
#include "runtime/coop_scheduler.hh"
#include "runtime/request_stream.hh"
#include "runtime/throughput.hh"
#include "testing/differ.hh"
#include "vm/machine.hh"

using namespace pep;

namespace {

struct CliOptions
{
    std::string mode = "coop";
    std::uint32_t threads = 4;
    std::uint32_t workers = 4;
    std::uint32_t requests = 512;
    std::uint64_t seed = 1;
    std::uint32_t epoch = 64;
    std::string config = "all";
    std::uint32_t ringCapacity = 1u << 14;
    double decay = 0.5;
    std::string inject = "none";
};

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--mode coop|throughput|differ] "
                 "[--threads K] [--workers N] [--requests R] "
                 "[--seed S] [--epoch E] [--config name|all] "
                 "[--ring-capacity C] [--decay D] [--inject kind]\n",
                 argv0);
}

runtime::RequestStream
makeStream(const CliOptions &cli)
{
    runtime::RequestStreamSpec spec;
    spec.seed = cli.seed;
    spec.requests = cli.requests;
    return runtime::RequestStream(spec);
}

vm::SimParams
makeParams(const CliOptions &cli)
{
    vm::SimParams params;
    params.tickCycles = 10'000;
    params.rngSeed = cli.seed ^ 0x7ead5eedull;
    return params;
}

/** Profiles + counters of a cooperative run as one comparable blob. */
std::string
runBlob(const vm::Machine &machine, const core::PepProfiler &pep,
        const runtime::CoopStats &stats)
{
    std::ostringstream os;
    for (const auto &method : machine.truthEdges().perMethod)
        for (const auto &per_block : method.counts())
            for (std::uint64_t count : per_block)
                os << count << ' ';
    for (const auto &method : pep.edgeProfile().perMethod)
        for (const auto &per_block : method.counts())
            for (std::uint64_t count : per_block)
                os << count << ' ';
    for (const auto &[key, vp] : pep.versionProfiles()) {
        std::map<std::uint64_t, std::uint64_t> ordered;
        for (const auto &[number, record] : vp->paths.paths())
            ordered[number] = record.count;
        for (const auto &[number, count] : ordered)
            os << number << '=' << count << ' ';
    }
    os << stats.contextSwitches << ' ' << machine.now();
    return os.str();
}

int
runCoop(const CliOptions &cli)
{
    const runtime::RequestStream stream = makeStream(cli);
    const vm::SimParams params = makeParams(cli);

    std::string first;
    for (int run = 0; run < 2; ++run) {
        vm::Machine machine(stream.program(), params);
        core::SimplifiedArnoldGrove controller(64, 17);
        core::PepProfiler pep(machine, controller);
        machine.addHooks(&pep);
        machine.addCompileObserver(&pep);

        runtime::CoopOptions coop;
        coop.threads = cli.threads;
        coop.seed = cli.seed;
        runtime::CoopScheduler scheduler(machine, coop);
        scheduler.assignRoundRobin(stream);
        scheduler.run();

        const runtime::CoopStats &stats = scheduler.stats();
        if (stats.requestsCompleted != stream.requests().size()) {
            std::fprintf(stderr,
                         "pep_runtime: completed %llu of %zu "
                         "requests\n",
                         static_cast<unsigned long long>(
                             stats.requestsCompleted),
                         stream.requests().size());
            return 1;
        }
        if (run == 0) {
            std::printf(
                "coop: K=%u requests=%zu cycles=%llu switches=%llu "
                "resumes=%llu samples=%llu engine=%s decoded=%llu "
                "invalidations=%llu\n",
                cli.threads, stream.requests().size(),
                static_cast<unsigned long long>(machine.now()),
                static_cast<unsigned long long>(
                    stats.contextSwitches),
                static_cast<unsigned long long>(stats.resumes),
                static_cast<unsigned long long>(
                    pep.pepStats().samplesRecorded),
                vm::engineKindName(machine.params().engine),
                static_cast<unsigned long long>(
                    machine.stats().methodsDecoded),
                static_cast<unsigned long long>(
                    machine.stats().templateInvalidations));
            first = runBlob(machine, pep, stats);
        } else if (runBlob(machine, pep, stats) != first) {
            std::fprintf(stderr,
                         "pep_runtime: NON-DETERMINISTIC — repeat "
                         "run diverged from the first\n");
            return 1;
        }
    }
    std::printf("coop: repeat run byte-identical\n");
    return 0;
}

bool
profilesIdentical(const runtime::ThroughputResult &a,
                  const runtime::ThroughputResult &b)
{
    if (a.paths != b.paths ||
        a.edges.perMethod.size() != b.edges.perMethod.size())
        return false;
    for (std::size_t m = 0; m < a.edges.perMethod.size(); ++m)
        if (a.edges.perMethod[m].counts() !=
            b.edges.perMethod[m].counts())
            return false;
    return true;
}

int
runThroughputMode(const CliOptions &cli)
{
    const runtime::RequestStream stream = makeStream(cli);

    runtime::ThroughputOptions options;
    options.workers = cli.workers;
    options.epochRequests = cli.epoch;
    options.params = makeParams(cli);
    options.ring.capacity = cli.ringCapacity;
    options.ring.windowDecay = cli.decay;

    options.aggregation =
        runtime::ThroughputOptions::Aggregation::Sharded;
    const runtime::ThroughputResult sharded =
        runtime::runThroughput(stream, options);
    options.aggregation =
        runtime::ThroughputOptions::Aggregation::Mutex;
    const runtime::ThroughputResult mutex_global =
        runtime::runThroughput(stream, options);
    options.aggregation =
        runtime::ThroughputOptions::Aggregation::Ring;
    const runtime::ThroughputResult ring =
        runtime::runThroughput(stream, options);

    std::printf("throughput: workers=%u requests=%zu epoch=%u\n",
                cli.workers, stream.requests().size(), cli.epoch);
    std::printf("  sharded: %9.0f req/s (%llu path records, "
                "%llu flushes)\n",
                sharded.requestsPerSecond,
                static_cast<unsigned long long>(sharded.pathRecords),
                static_cast<unsigned long long>(sharded.shardFlushes));
    std::printf("  mutex:   %9.0f req/s (%llu path records)\n",
                mutex_global.requestsPerSecond,
                static_cast<unsigned long long>(
                    mutex_global.pathRecords));
    std::printf("  ring:    %9.0f req/s (capacity=%u produced=%llu "
                "consumed=%llu dropped=%llu drop-rate=%.4f%%)\n",
                ring.requestsPerSecond, cli.ringCapacity,
                static_cast<unsigned long long>(
                    ring.transport.produced),
                static_cast<unsigned long long>(
                    ring.transport.consumed),
                static_cast<unsigned long long>(
                    ring.transport.dropped),
                100.0 * ring.transport.dropRate());
    std::printf("  ring window: advances=%llu staleness=%.3f epochs "
                "(decay=%.2f)\n",
                static_cast<unsigned long long>(ring.windowAdvances),
                ring.windowStalenessEpochs, cli.decay);

    bool ok = true;
    if (!profilesIdentical(sharded, mutex_global)) {
        std::printf("  sharded vs mutex profiles DIVERGE\n");
        ok = false;
    }
    if (ring.transport.produced !=
        ring.transport.consumed + ring.transport.dropped) {
        std::printf("  ring conservation VIOLATED: produced != "
                    "consumed + dropped\n");
        ok = false;
    }
    if (ring.transport.dropped == 0) {
        if (!profilesIdentical(ring, mutex_global)) {
            std::printf("  ring (drop-free) vs mutex profiles "
                        "DIVERGE\n");
            ok = false;
        } else {
            std::printf("  merged profiles identical (ring "
                        "drop-free)\n");
        }
    } else {
        std::printf("  merged profiles identical (sharded vs mutex); "
                    "ring dropped %llu samples (not compared)\n",
                    static_cast<unsigned long long>(
                        ring.transport.dropped));
    }
    return ok ? 0 : 1;
}

int
runDifferMode(const CliOptions &cli)
{
    testing::InjectKind inject = testing::InjectKind::None;
    if (!testing::parseInjectKind(cli.inject, inject)) {
        std::fprintf(stderr, "pep_runtime: unknown --inject '%s'\n",
                     cli.inject.c_str());
        return 2;
    }
    int failures = 0;
    for (testing::ThreadedDiffOptions config :
         testing::standardThreadedConfigs()) {
        if (cli.config != "all" && cli.config != config.name)
            continue;
        config.inject = inject;
        const testing::DiffReport report =
            testing::runThreadedDiff(config);
        std::printf("differ: %-24s %s (segments=%llu samples=%llu)\n",
                    config.name.c_str(),
                    report.ok() ? "clean" : "VIOLATIONS",
                    static_cast<unsigned long long>(
                        report.oracleSegments),
                    static_cast<unsigned long long>(
                        report.pepSamplesRecorded));
        for (const std::string &violation : report.violations)
            std::printf("    %s\n", violation.c_str());
        failures += report.ok() ? 0 : 1;
    }
    return failures == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions cli;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--mode") {
            cli.mode = next();
        } else if (arg == "--threads") {
            cli.threads = std::strtoul(next(), nullptr, 10);
        } else if (arg == "--workers") {
            cli.workers = std::strtoul(next(), nullptr, 10);
        } else if (arg == "--requests") {
            cli.requests = std::strtoul(next(), nullptr, 10);
        } else if (arg == "--seed") {
            cli.seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--epoch") {
            cli.epoch = std::strtoul(next(), nullptr, 10);
        } else if (arg == "--config") {
            cli.config = next();
        } else if (arg == "--ring-capacity") {
            cli.ringCapacity = std::strtoul(next(), nullptr, 10);
        } else if (arg == "--decay") {
            cli.decay = std::atof(next());
        } else if (arg == "--inject") {
            cli.inject = next();
        } else {
            usage(argv[0]);
            return 2;
        }
    }

    if (cli.mode == "coop")
        return runCoop(cli);
    if (cli.mode == "throughput")
        return runThroughputMode(cli);
    if (cli.mode == "differ")
        return runDifferMode(cli);
    usage(argv[0]);
    return 2;
}
