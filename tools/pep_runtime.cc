/**
 * @file
 * pep_runtime: command-line driver for the concurrent profiling
 * runtime (src/runtime/). Three modes:
 *
 *   coop        run a generated request stream under the cooperative
 *               scheduler with K virtual mutator threads and a PEP
 *               profiler; print cycles, switches, and sample counts.
 *               Runs twice and verifies the byte-determinism contract.
 *   throughput  shard the stream over N OS worker threads with both
 *               aggregation strategies; print requests/second and
 *               verify the merged profiles match count-for-count.
 *   differ      run one (or all) of the standard multi-threaded
 *               differential configurations from src/testing/differ.
 *
 * Usage:
 *   pep_runtime [--mode coop|throughput|differ] [--threads K]
 *               [--workers N] [--requests R] [--seed S] [--epoch E]
 *               [--config name|all]
 *
 * Exits nonzero when any invariant check fails.
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>
#include <string>

#include "core/pep_profiler.hh"
#include "core/sampling.hh"
#include "runtime/coop_scheduler.hh"
#include "runtime/request_stream.hh"
#include "runtime/throughput.hh"
#include "testing/differ.hh"
#include "vm/machine.hh"

using namespace pep;

namespace {

struct CliOptions
{
    std::string mode = "coop";
    std::uint32_t threads = 4;
    std::uint32_t workers = 4;
    std::uint32_t requests = 512;
    std::uint64_t seed = 1;
    std::uint32_t epoch = 64;
    std::string config = "all";
};

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--mode coop|throughput|differ] "
                 "[--threads K] [--workers N] [--requests R] "
                 "[--seed S] [--epoch E] [--config name|all]\n",
                 argv0);
}

runtime::RequestStream
makeStream(const CliOptions &cli)
{
    runtime::RequestStreamSpec spec;
    spec.seed = cli.seed;
    spec.requests = cli.requests;
    return runtime::RequestStream(spec);
}

vm::SimParams
makeParams(const CliOptions &cli)
{
    vm::SimParams params;
    params.tickCycles = 10'000;
    params.rngSeed = cli.seed ^ 0x7ead5eedull;
    return params;
}

/** Profiles + counters of a cooperative run as one comparable blob. */
std::string
runBlob(const vm::Machine &machine, const core::PepProfiler &pep,
        const runtime::CoopStats &stats)
{
    std::ostringstream os;
    for (const auto &method : machine.truthEdges().perMethod)
        for (const auto &per_block : method.counts())
            for (std::uint64_t count : per_block)
                os << count << ' ';
    for (const auto &method : pep.edgeProfile().perMethod)
        for (const auto &per_block : method.counts())
            for (std::uint64_t count : per_block)
                os << count << ' ';
    for (const auto &[key, vp] : pep.versionProfiles()) {
        std::map<std::uint64_t, std::uint64_t> ordered;
        for (const auto &[number, record] : vp->paths.paths())
            ordered[number] = record.count;
        for (const auto &[number, count] : ordered)
            os << number << '=' << count << ' ';
    }
    os << stats.contextSwitches << ' ' << machine.now();
    return os.str();
}

int
runCoop(const CliOptions &cli)
{
    const runtime::RequestStream stream = makeStream(cli);
    const vm::SimParams params = makeParams(cli);

    std::string first;
    for (int run = 0; run < 2; ++run) {
        vm::Machine machine(stream.program(), params);
        core::SimplifiedArnoldGrove controller(64, 17);
        core::PepProfiler pep(machine, controller);
        machine.addHooks(&pep);
        machine.addCompileObserver(&pep);

        runtime::CoopOptions coop;
        coop.threads = cli.threads;
        coop.seed = cli.seed;
        runtime::CoopScheduler scheduler(machine, coop);
        scheduler.assignRoundRobin(stream);
        scheduler.run();

        const runtime::CoopStats &stats = scheduler.stats();
        if (stats.requestsCompleted != stream.requests().size()) {
            std::fprintf(stderr,
                         "pep_runtime: completed %llu of %zu "
                         "requests\n",
                         static_cast<unsigned long long>(
                             stats.requestsCompleted),
                         stream.requests().size());
            return 1;
        }
        if (run == 0) {
            std::printf(
                "coop: K=%u requests=%zu cycles=%llu switches=%llu "
                "resumes=%llu samples=%llu engine=%s decoded=%llu "
                "invalidations=%llu\n",
                cli.threads, stream.requests().size(),
                static_cast<unsigned long long>(machine.now()),
                static_cast<unsigned long long>(
                    stats.contextSwitches),
                static_cast<unsigned long long>(stats.resumes),
                static_cast<unsigned long long>(
                    pep.pepStats().samplesRecorded),
                vm::engineKindName(machine.params().engine),
                static_cast<unsigned long long>(
                    machine.stats().methodsDecoded),
                static_cast<unsigned long long>(
                    machine.stats().templateInvalidations));
            first = runBlob(machine, pep, stats);
        } else if (runBlob(machine, pep, stats) != first) {
            std::fprintf(stderr,
                         "pep_runtime: NON-DETERMINISTIC — repeat "
                         "run diverged from the first\n");
            return 1;
        }
    }
    std::printf("coop: repeat run byte-identical\n");
    return 0;
}

int
runThroughputMode(const CliOptions &cli)
{
    const runtime::RequestStream stream = makeStream(cli);

    runtime::ThroughputOptions options;
    options.workers = cli.workers;
    options.epochRequests = cli.epoch;
    options.params = makeParams(cli);

    options.aggregation =
        runtime::ThroughputOptions::Aggregation::Sharded;
    const runtime::ThroughputResult sharded =
        runtime::runThroughput(stream, options);
    options.aggregation =
        runtime::ThroughputOptions::Aggregation::Mutex;
    const runtime::ThroughputResult mutex_global =
        runtime::runThroughput(stream, options);

    std::printf("throughput: workers=%u requests=%zu epoch=%u\n",
                cli.workers, stream.requests().size(), cli.epoch);
    std::printf("  sharded: %9.0f req/s (%llu path records)\n",
                sharded.requestsPerSecond,
                static_cast<unsigned long long>(sharded.pathRecords));
    std::printf("  mutex:   %9.0f req/s (%llu path records)\n",
                mutex_global.requestsPerSecond,
                static_cast<unsigned long long>(
                    mutex_global.pathRecords));

    bool identical = sharded.paths == mutex_global.paths &&
                     sharded.edges.perMethod.size() ==
                         mutex_global.edges.perMethod.size();
    for (std::size_t m = 0;
         identical && m < sharded.edges.perMethod.size(); ++m) {
        identical = sharded.edges.perMethod[m].counts() ==
                    mutex_global.edges.perMethod[m].counts();
    }
    std::printf("  merged profiles %s\n",
                identical ? "identical" : "DIVERGE");
    return identical ? 0 : 1;
}

int
runDifferMode(const CliOptions &cli)
{
    int failures = 0;
    for (const testing::ThreadedDiffOptions &config :
         testing::standardThreadedConfigs()) {
        if (cli.config != "all" && cli.config != config.name)
            continue;
        const testing::DiffReport report =
            testing::runThreadedDiff(config);
        std::printf("differ: %-24s %s (segments=%llu samples=%llu)\n",
                    config.name.c_str(),
                    report.ok() ? "clean" : "VIOLATIONS",
                    static_cast<unsigned long long>(
                        report.oracleSegments),
                    static_cast<unsigned long long>(
                        report.pepSamplesRecorded));
        for (const std::string &violation : report.violations)
            std::printf("    %s\n", violation.c_str());
        failures += report.ok() ? 0 : 1;
    }
    return failures == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions cli;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--mode") {
            cli.mode = next();
        } else if (arg == "--threads") {
            cli.threads = std::strtoul(next(), nullptr, 10);
        } else if (arg == "--workers") {
            cli.workers = std::strtoul(next(), nullptr, 10);
        } else if (arg == "--requests") {
            cli.requests = std::strtoul(next(), nullptr, 10);
        } else if (arg == "--seed") {
            cli.seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--epoch") {
            cli.epoch = std::strtoul(next(), nullptr, 10);
        } else if (arg == "--config") {
            cli.config = next();
        } else {
            usage(argv[0]);
            return 2;
        }
    }

    if (cli.mode == "coop")
        return runCoop(cli);
    if (cli.mode == "throughput")
        return runThroughputMode(cli);
    if (cli.mode == "differ")
        return runDifferMode(cli);
    usage(argv[0]);
    return 2;
}
